"""Intra-procedural control-flow graphs.

Basic blocks are computed with the classic leader algorithm over the
flat instruction list of a :class:`~repro.ir.method.MethodBody`.  The
CFG is the unit the dataflow framework and the guard analysis iterate
over; an artificial ``ENTRY`` block index (-1) and ``EXIT`` (-2) keep
edge handling uniform.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.instructions import Instruction
from ..ir.method import Method, MethodBody

__all__ = ["BasicBlock", "ControlFlowGraph", "build_cfg"]

ENTRY = -1
EXIT = -2


@dataclass(frozen=True)
class BasicBlock:
    """A maximal straight-line instruction sequence.

    ``start`` and ``end`` delimit the half-open index range
    ``[start, end)`` into the owning body's instruction list.
    """

    index: int
    start: int
    end: int
    instructions: tuple[Instruction, ...]

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def last(self) -> Instruction | None:
        return self.instructions[-1] if self.instructions else None


@dataclass
class ControlFlowGraph:
    """Blocks plus successor/predecessor edge maps."""

    method: Method
    blocks: tuple[BasicBlock, ...]
    successors: dict[int, tuple[int, ...]]
    predecessors: dict[int, tuple[int, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.predecessors:
            preds: dict[int, list[int]] = {b.index: [] for b in self.blocks}
            preds[EXIT] = []
            for source, targets in self.successors.items():
                for target in targets:
                    preds.setdefault(target, []).append(source)
            self.predecessors = {
                key: tuple(value) for key, value in preds.items()
            }

    @property
    def entry_block(self) -> BasicBlock | None:
        return self.blocks[0] if self.blocks else None

    def block_of(self, instruction_index: int) -> BasicBlock:
        """The block containing the given instruction index."""
        for block in self.blocks:
            if block.start <= instruction_index < block.end:
                return block
        raise IndexError(
            f"instruction index {instruction_index} outside method body"
        )

    def reverse_postorder(self) -> tuple[int, ...]:
        """Block indices in reverse postorder from the entry block —
        the iteration order that makes forward dataflow converge fast."""
        if not self.blocks:
            return ()
        seen: set[int] = set()
        order: list[int] = []

        # Iterative DFS; bodies can be long, so no recursion.
        stack: list[tuple[int, int]] = [(self.blocks[0].index, 0)]
        seen.add(self.blocks[0].index)
        while stack:
            node, child = stack[-1]
            targets = [
                t for t in self.successors.get(node, ()) if t >= 0
            ]
            if child < len(targets):
                stack[-1] = (node, child + 1)
                target = targets[child]
                if target not in seen:
                    seen.add(target)
                    stack.append((target, 0))
            else:
                order.append(node)
                stack.pop()
        order.reverse()
        return tuple(order)

    @property
    def edge_count(self) -> int:
        return sum(len(t) for t in self.successors.values())


def _leaders(body: MethodBody) -> list[int]:
    """Indices starting a basic block."""
    if not body.instructions:
        return []
    leaders = {0}
    for index, instruction in enumerate(body.instructions):
        targets = instruction.branch_targets
        if targets:
            for label in targets:
                target = body.resolve(label)
                if target < len(body.instructions):
                    leaders.add(target)
            if index + 1 < len(body.instructions):
                leaders.add(index + 1)
        elif not instruction.falls_through:
            if index + 1 < len(body.instructions):
                leaders.add(index + 1)
    return sorted(leaders)


def build_cfg(method: Method) -> ControlFlowGraph:
    """Construct the CFG of ``method`` (empty graph for abstract)."""
    body = method.body
    if body is None or not body.instructions:
        return ControlFlowGraph(
            method=method, blocks=(), successors={}
        )

    leaders = _leaders(body)
    boundaries = leaders + [len(body.instructions)]
    blocks: list[BasicBlock] = []
    start_to_block: dict[int, int] = {}
    for block_index, start in enumerate(leaders):
        end = boundaries[block_index + 1]
        start_to_block[start] = block_index
        blocks.append(
            BasicBlock(
                index=block_index,
                start=start,
                end=end,
                instructions=body.instructions[start:end],
            )
        )

    successors: dict[int, tuple[int, ...]] = {}
    for block in blocks:
        last_index = block.end - 1
        instruction = body.instructions[last_index]
        targets: list[int] = []
        if instruction.falls_through:
            if block.end < len(body.instructions):
                targets.append(start_to_block[block.end])
            else:
                targets.append(EXIT)
        for label in instruction.branch_targets:
            resolved = body.resolve(label)
            if resolved >= len(body.instructions):
                targets.append(EXIT)
            else:
                targets.append(start_to_block[resolved])
        if not instruction.falls_through and not instruction.branch_targets:
            targets.append(EXIT)
        # Deduplicate while preserving order (e.g. branch to next).
        unique: list[int] = []
        for target in targets:
            if target not in unique:
                unique.append(target)
        successors[block.index] = tuple(unique)

    return ControlFlowGraph(
        method=method, blocks=tuple(blocks), successors=successors
    )
