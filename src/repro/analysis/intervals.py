"""API-level interval domain.

The abstract values of the guard analysis: closed integer intervals
over device API levels, with a distinguished empty interval for
unreachable configurations.  ``refine`` implements the effect of a
``SDK_INT <op> c`` comparison along the taken/fall-through edge, the
operation at the heart of Algorithm 2's ``GET_GUARD``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..apk.manifest import MAX_API_LEVEL, MIN_API_LEVEL
from ..ir.instructions import CmpOp

__all__ = [
    "ApiInterval",
    "FULL_RANGE",
    "EMPTY",
    "levels_mask",
    "interval_mask",
    "mask_to_interval",
]


@dataclass(frozen=True, slots=True)
class ApiInterval:
    """Closed interval ``[lo, hi]``; ``lo > hi`` encodes the empty set."""

    lo: int
    hi: int
    #: Cached hash — intervals key guard contexts and usage merges by
    #: the million; intervals are interned, so each distinct value
    #: hashes its ``(lo, hi)`` pair once per process.
    _hash: int | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __hash__(self) -> int:
        value = self._hash
        if value is None:
            value = hash((self.lo, self.hi))
            object.__setattr__(self, "_hash", value)
        return value

    # -- constructors -------------------------------------------------

    @staticmethod
    def full() -> "ApiInterval":
        return FULL_RANGE

    @staticmethod
    def of(lo: int, hi: int) -> "ApiInterval":
        return _intern(lo, hi)

    @staticmethod
    def at_least(level: int) -> "ApiInterval":
        return _intern(level, MAX_API_LEVEL)

    @staticmethod
    def at_most(level: int) -> "ApiInterval":
        return _intern(MIN_API_LEVEL, level)

    @staticmethod
    def single(level: int) -> "ApiInterval":
        return _intern(level, level)

    @staticmethod
    def empty() -> "ApiInterval":
        return EMPTY

    # -- predicates ----------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return self.lo > self.hi

    def __contains__(self, level: int) -> bool:
        return self.lo <= level <= self.hi

    def __iter__(self):
        return iter(range(self.lo, self.hi + 1))

    def __len__(self) -> int:
        return 0 if self.is_empty else self.hi - self.lo + 1

    def covers(self, other: "ApiInterval") -> bool:
        if other.is_empty:
            return True
        return self.lo <= other.lo and other.hi <= self.hi

    def overlaps(self, other: "ApiInterval") -> bool:
        return not self.meet(other).is_empty

    # -- lattice operations ---------------------------------------------

    def meet(self, other: "ApiInterval") -> "ApiInterval":
        """Intersection."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        return EMPTY if lo > hi else _intern(lo, hi)

    def join(self, other: "ApiInterval") -> "ApiInterval":
        """Convex hull (the sound over-approximation of union)."""
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        return _intern(min(self.lo, other.lo), max(self.hi, other.hi))

    # -- guard refinement -------------------------------------------------

    def refine(self, op: CmpOp, constant: int) -> "ApiInterval":
        """Constrain by ``SDK_INT <op> constant``.

        ``NE`` punches a hole an interval cannot represent, so it
        over-approximates to ``self`` unless the constant sits at an
        endpoint (then the endpoint is shaved off) — a sound choice.
        """
        if self.is_empty:
            return self
        if op is CmpOp.LT:
            return self.meet(ApiInterval.at_most(constant - 1))
        if op is CmpOp.LE:
            return self.meet(ApiInterval.at_most(constant))
        if op is CmpOp.GT:
            return self.meet(ApiInterval.at_least(constant + 1))
        if op is CmpOp.GE:
            return self.meet(ApiInterval.at_least(constant))
        if op is CmpOp.EQ:
            return self.meet(ApiInterval.single(constant))
        if op is CmpOp.NE:
            if constant == self.lo == self.hi:
                return EMPTY
            if constant == self.lo:
                return _intern(self.lo + 1, self.hi)
            if constant == self.hi:
                return _intern(self.lo, self.hi - 1)
            return self
        raise ValueError(f"unknown comparison {op!r}")

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        if self.is_empty:
            return "[]"
        return f"[{self.lo}, {self.hi}]"


#: Interning table: the guard analysis creates the same few dozen
#: intervals millions of times across a corpus, and context
#: memoization keys on ``(method, interval)`` tuples — shared instances
#: make those hashes/comparisons cheap and cut allocation churn.
#: Equality still holds for uninterned instances (``__eq__`` compares
#: ``lo``/``hi``), so interning is a pure optimization.
_INTERNED: dict[tuple[int, int], "ApiInterval"] = {}


def _intern(lo: int, hi: int) -> "ApiInterval":
    key = (lo, hi)
    cached = _INTERNED.get(key)
    if cached is None:
        cached = _INTERNED[key] = ApiInterval(lo, hi)
    return cached


#: The full modeled device-level range.
FULL_RANGE = _intern(MIN_API_LEVEL, MAX_API_LEVEL)

#: The canonical empty interval.
EMPTY = _intern(MAX_API_LEVEL + 1, MIN_API_LEVEL - 1)


# -- bitset level sets ---------------------------------------------------
#
# The guard analysis's hottest set operation is predicate refinement:
# "which levels in this path interval satisfy `helper_result <op> c`?"
# Materializing the interval as a Python list and testing each level
# against a frozenset allocates per branch edge, millions of times over
# a corpus.  A level set is instead packed into an int bitmask (bit 0 =
# ``MIN_API_LEVEL``), where intersection/union/complement are single
# C-speed integer ops and the convex hull falls out of ``bit_length``.
# Masks only represent levels at or above ``MIN_API_LEVEL``; callers
# with out-of-range intervals (possible via ``--devices``) must keep to
# the per-level fallback.

_LEVEL_MASKS: dict[frozenset, int] = {}
_INTERVAL_MASKS: dict[tuple[int, int], int] = {}


def levels_mask(levels: frozenset) -> int:
    """Bitmask of a version-helper level set, memoized per frozenset —
    the same few helper summaries recur across every branch edge of a
    corpus.  Levels below ``MIN_API_LEVEL`` are dropped (they cannot
    appear in any in-range path interval)."""
    cached = _LEVEL_MASKS.get(levels)
    if cached is None:
        cached = 0
        for level in levels:
            if level >= MIN_API_LEVEL:
                cached |= 1 << (level - MIN_API_LEVEL)
        _LEVEL_MASKS[levels] = cached
    return cached


def interval_mask(interval: ApiInterval) -> int:
    """Bitmask of every level in ``interval`` (which must start at or
    above ``MIN_API_LEVEL``)."""
    key = (interval.lo, interval.hi)
    cached = _INTERVAL_MASKS.get(key)
    if cached is None:
        if interval.is_empty:
            cached = 0
        else:
            width = interval.hi - interval.lo + 1
            cached = ((1 << width) - 1) << (interval.lo - MIN_API_LEVEL)
        _INTERVAL_MASKS[key] = cached
    return cached


def mask_to_interval(mask: int) -> ApiInterval:
    """Convex hull of a level bitmask (lowest to highest set bit)."""
    if not mask:
        return EMPTY
    lo = MIN_API_LEVEL + ((mask & -mask).bit_length() - 1)
    hi = MIN_API_LEVEL + (mask.bit_length() - 1)
    return _intern(lo, hi)
