"""API-level interval domain.

The abstract values of the guard analysis: closed integer intervals
over device API levels, with a distinguished empty interval for
unreachable configurations.  ``refine`` implements the effect of a
``SDK_INT <op> c`` comparison along the taken/fall-through edge, the
operation at the heart of Algorithm 2's ``GET_GUARD``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apk.manifest import MAX_API_LEVEL, MIN_API_LEVEL
from ..ir.instructions import CmpOp

__all__ = ["ApiInterval", "FULL_RANGE", "EMPTY"]


@dataclass(frozen=True, slots=True)
class ApiInterval:
    """Closed interval ``[lo, hi]``; ``lo > hi`` encodes the empty set."""

    lo: int
    hi: int

    # -- constructors -------------------------------------------------

    @staticmethod
    def full() -> "ApiInterval":
        return FULL_RANGE

    @staticmethod
    def of(lo: int, hi: int) -> "ApiInterval":
        return _intern(lo, hi)

    @staticmethod
    def at_least(level: int) -> "ApiInterval":
        return _intern(level, MAX_API_LEVEL)

    @staticmethod
    def at_most(level: int) -> "ApiInterval":
        return _intern(MIN_API_LEVEL, level)

    @staticmethod
    def single(level: int) -> "ApiInterval":
        return _intern(level, level)

    @staticmethod
    def empty() -> "ApiInterval":
        return EMPTY

    # -- predicates ----------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return self.lo > self.hi

    def __contains__(self, level: int) -> bool:
        return self.lo <= level <= self.hi

    def __iter__(self):
        return iter(range(self.lo, self.hi + 1))

    def __len__(self) -> int:
        return 0 if self.is_empty else self.hi - self.lo + 1

    def covers(self, other: "ApiInterval") -> bool:
        if other.is_empty:
            return True
        return self.lo <= other.lo and other.hi <= self.hi

    def overlaps(self, other: "ApiInterval") -> bool:
        return not self.meet(other).is_empty

    # -- lattice operations ---------------------------------------------

    def meet(self, other: "ApiInterval") -> "ApiInterval":
        """Intersection."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        return EMPTY if lo > hi else _intern(lo, hi)

    def join(self, other: "ApiInterval") -> "ApiInterval":
        """Convex hull (the sound over-approximation of union)."""
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        return _intern(min(self.lo, other.lo), max(self.hi, other.hi))

    # -- guard refinement -------------------------------------------------

    def refine(self, op: CmpOp, constant: int) -> "ApiInterval":
        """Constrain by ``SDK_INT <op> constant``.

        ``NE`` punches a hole an interval cannot represent, so it
        over-approximates to ``self`` unless the constant sits at an
        endpoint (then the endpoint is shaved off) — a sound choice.
        """
        if self.is_empty:
            return self
        if op is CmpOp.LT:
            return self.meet(ApiInterval.at_most(constant - 1))
        if op is CmpOp.LE:
            return self.meet(ApiInterval.at_most(constant))
        if op is CmpOp.GT:
            return self.meet(ApiInterval.at_least(constant + 1))
        if op is CmpOp.GE:
            return self.meet(ApiInterval.at_least(constant))
        if op is CmpOp.EQ:
            return self.meet(ApiInterval.single(constant))
        if op is CmpOp.NE:
            if constant == self.lo == self.hi:
                return EMPTY
            if constant == self.lo:
                return _intern(self.lo + 1, self.hi)
            if constant == self.hi:
                return _intern(self.lo, self.hi - 1)
            return self
        raise ValueError(f"unknown comparison {op!r}")

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        if self.is_empty:
            return "[]"
        return f"[{self.lo}, {self.hi}]"


#: Interning table: the guard analysis creates the same few dozen
#: intervals millions of times across a corpus, and context
#: memoization keys on ``(method, interval)`` tuples — shared instances
#: make those hashes/comparisons cheap and cut allocation churn.
#: Equality still holds for uninterned instances (``__eq__`` compares
#: ``lo``/``hi``), so interning is a pure optimization.
_INTERNED: dict[tuple[int, int], "ApiInterval"] = {}


def _intern(lo: int, hi: int) -> "ApiInterval":
    key = (lo, hi)
    cached = _INTERNED.get(key)
    if cached is None:
        cached = _INTERNED[key] = ApiInterval(lo, hi)
    return cached


#: The full modeled device-level range.
FULL_RANGE = _intern(MIN_API_LEVEL, MAX_API_LEVEL)

#: The canonical empty interval.
EMPTY = _intern(MAX_API_LEVEL + 1, MIN_API_LEVEL - 1)
