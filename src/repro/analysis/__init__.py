"""Static-analysis substrate: CFGs, dataflow, guard/interval analysis,
call graphs, the ICFG, and the lazy class-loading CLVM."""

from .cfg import BasicBlock, ControlFlowGraph, build_cfg, ENTRY, EXIT
from .intervals import ApiInterval, EMPTY, FULL_RANGE
from .dataflow import Analysis, BlockStates, solve_forward
from .guards import (
    GuardAnalysis,
    GuardState,
    RegValue,
    ValueKind,
    analyze_guards,
    guard_at_invocations,
)
from .reaching import (
    StringConstantAnalysis,
    analyze_string_constants,
    strings_at_invocations,
)
from .hierarchy import HierarchyResolver
from .callgraph import CallGraph, CallSite
from .icfg import Icfg, IcfgNode, build_icfg
from .clvm import (
    ClassLoaderVM,
    ExplorationResult,
    LOADCLASS_SIGNATURES,
    LoadStats,
)

__all__ = [
    "Analysis",
    "ApiInterval",
    "BasicBlock",
    "BlockStates",
    "CallGraph",
    "CallSite",
    "ClassLoaderVM",
    "ControlFlowGraph",
    "EMPTY",
    "ENTRY",
    "EXIT",
    "ExplorationResult",
    "FULL_RANGE",
    "GuardAnalysis",
    "GuardState",
    "HierarchyResolver",
    "Icfg",
    "IcfgNode",
    "LOADCLASS_SIGNATURES",
    "LoadStats",
    "RegValue",
    "StringConstantAnalysis",
    "ValueKind",
    "analyze_guards",
    "analyze_string_constants",
    "build_cfg",
    "build_icfg",
    "guard_at_invocations",
    "solve_forward",
    "strings_at_invocations",
]
