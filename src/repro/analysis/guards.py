"""SDK_INT guard analysis.

A path-sensitive forward analysis computing, for every instruction, the
interval of device API levels under which it can execute.  Register
facts track which registers hold ``Build.VERSION.SDK_INT`` and which
hold integer constants, so that ``if-cmp`` branches comparing the two
refine the interval along each out-edge — precisely the
``GET_GUARD`` step of the paper's Algorithm 2.

The analysis is the precision backbone of SAINTDroid: an API call
reachable only under ``[23, 29]`` is *not* a mismatch for an app with
``minSdkVersion 21``, whereas the same call unguarded is.  In the
pass pipeline it is consumed by the ``guard-propagation`` pass (the
inter-procedural worklist over the explored call graph) and, in
weakened intra-method form, by the first-level baseline scan passes
(``cid-scan``, ``lint-source-scan``) — see
:mod:`repro.pipeline.passes` and :mod:`repro.baselines.passes`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..ir.instructions import (
    BinOp,
    CmpOp,
    ConstInt,
    ConstNull,
    ConstString,
    FieldGet,
    IfCmp,
    IfCmpZero,
    Instruction,
    Invoke,
    Move,
    MoveResult,
    NewInstance,
    SdkIntLoad,
)
from ..ir.method import Method
from ..ir.types import SDK_INT_FIELD
from ..apk.manifest import MIN_API_LEVEL
from .cfg import build_cfg
from .dataflow import Analysis, BlockStates, solve_forward
from .intervals import (
    ApiInterval,
    interval_mask,
    levels_mask,
    mask_to_interval,
)

__all__ = ["ValueKind", "RegValue", "GuardState", "GuardAnalysis",
           "analyze_guards", "guard_at_invocations",
           "guard_at_allocations"]


class ValueKind(enum.Enum):
    SDK_INT = "sdk_int"
    CONST = "const"
    #: The boolean result of a summarized version-check helper: the
    #: register holds 1 exactly on the levels in ``levels``.
    PREDICATE = "predicate"
    UNKNOWN = "unknown"


@dataclass(frozen=True, slots=True)
class RegValue:
    kind: ValueKind
    constant: int | None = None
    levels: frozenset[int] | None = None

    @staticmethod
    def sdk_int() -> "RegValue":
        return _SDK

    @staticmethod
    def const(value: int) -> "RegValue":
        return RegValue(ValueKind.CONST, value)

    @staticmethod
    def predicate(levels: frozenset[int]) -> "RegValue":
        return RegValue(ValueKind.PREDICATE, levels=levels)

    @staticmethod
    def unknown() -> "RegValue":
        return _UNKNOWN


_SDK = RegValue(ValueKind.SDK_INT)
_UNKNOWN = RegValue(ValueKind.UNKNOWN)


@dataclass(frozen=True)
class GuardState:
    """Register valuation plus the path condition on SDK_INT.

    ``registers`` maps register number → :class:`RegValue`; absent
    registers are unknown.  ``interval`` is the set of device levels
    under which control can reach the current program point.
    """

    registers: tuple[tuple[int, RegValue], ...]
    interval: ApiInterval
    #: Set after an invoke of a summarized version helper; the next
    #: move-result captures it (any other instruction discards it).
    pending_predicate: frozenset[int] | None = None

    def reg(self, register: int) -> RegValue:
        for number, value in self.registers:
            if number == register:
                return value
        return _UNKNOWN

    def with_reg(self, register: int, value: RegValue) -> "GuardState":
        table = dict(self.registers)
        if value.kind is ValueKind.UNKNOWN:
            table.pop(register, None)
        else:
            table[register] = value
        return GuardState(tuple(sorted(table.items())), self.interval)

    def with_interval(self, interval: ApiInterval) -> "GuardState":
        return GuardState(
            self.registers, interval, self.pending_predicate
        )

    def with_pending(
        self, levels: frozenset[int] | None
    ) -> "GuardState":
        return GuardState(self.registers, self.interval, levels)


class GuardAnalysis(Analysis[GuardState | None]):
    """The dataflow instantiation; ``None`` is the unreachable bottom."""

    def __init__(
        self,
        entry_interval: ApiInterval,
        predicate_summaries: dict[tuple, frozenset[int]] | None = None,
    ) -> None:
        """``predicate_summaries`` maps
        ``(class_name, method_name, descriptor)`` of version-check
        helpers to the device levels at which they return true (see
        :mod:`repro.analysis.summaries`)."""
        self._entry_interval = entry_interval
        self._summaries = predicate_summaries or {}

    def initial_state(self) -> GuardState:
        return GuardState((), self._entry_interval)

    def bottom(self) -> None:
        return None

    def join(
        self, left: GuardState | None, right: GuardState | None
    ) -> GuardState | None:
        if left is None:
            return right
        if right is None:
            return left
        table: dict[int, RegValue] = {}
        right_regs = dict(right.registers)
        for number, value in left.registers:
            if right_regs.get(number) == value:
                table[number] = value
        pending = (
            left.pending_predicate
            if left.pending_predicate == right.pending_predicate
            else None
        )
        return GuardState(
            tuple(sorted(table.items())),
            left.interval.join(right.interval),
            pending,
        )

    def equal(
        self, left: GuardState | None, right: GuardState | None
    ) -> bool:
        return left == right

    def transfer(
        self, state: GuardState | None, instruction: Instruction
    ) -> GuardState | None:
        if state is None:
            return None
        if isinstance(instruction, Invoke):
            key = (
                instruction.method.class_name,
                instruction.method.name,
                instruction.method.descriptor,
            )
            return state.with_pending(self._summaries.get(key))
        if isinstance(instruction, MoveResult):
            pending = state.pending_predicate
            state = state.with_pending(None)
            if pending is not None:
                return state.with_reg(
                    instruction.dest, RegValue.predicate(pending)
                )
            return state.with_reg(instruction.dest, RegValue.unknown())
        # Any other instruction discards a pending helper result.
        if state.pending_predicate is not None:
            state = state.with_pending(None)
        if isinstance(instruction, SdkIntLoad):
            return state.with_reg(instruction.dest, RegValue.sdk_int())
        if isinstance(instruction, ConstInt):
            return state.with_reg(
                instruction.dest, RegValue.const(instruction.value)
            )
        if isinstance(instruction, Move):
            return state.with_reg(
                instruction.dest, state.reg(instruction.src)
            )
        if isinstance(instruction, FieldGet):
            if instruction.fieldref == SDK_INT_FIELD:
                return state.with_reg(instruction.dest, RegValue.sdk_int())
            return state.with_reg(instruction.dest, RegValue.unknown())
        if isinstance(
            instruction,
            (ConstString, ConstNull, NewInstance),
        ):
            return state.with_reg(instruction.dest, RegValue.unknown())
        if isinstance(instruction, BinOp):
            return state.with_reg(instruction.dest, RegValue.unknown())
        return state

    def transfer_edge(
        self,
        state: GuardState | None,
        instruction: Instruction,
        taken: bool,
    ) -> GuardState | None:
        if state is None:
            return None
        comparison = self._sdk_comparison(state, instruction)
        if comparison is not None:
            op, constant = comparison
            effective = op if taken else op.negate()
            refined = state.interval.refine(effective, constant)
            if refined.is_empty:
                return None  # unreachable for every device level
            return state.with_interval(refined)

        predicate = self._predicate_comparison(state, instruction)
        if predicate is None:
            return state
        op, constant, levels = predicate
        effective = op if taken else op.negate()
        # The register holds 1 exactly on ``levels``; keep the device
        # levels whose concrete value satisfies the comparison, over-
        # approximated to the convex hull (intervals cannot hold gaps).
        # The comparison only sees 0 or 1, so two evaluations decide
        # every level; the per-level work collapses to bitmask ops.
        interval = state.interval
        true_ok = effective.evaluate(1, constant)
        false_ok = effective.evaluate(0, constant)
        if interval.lo >= MIN_API_LEVEL:
            window = interval_mask(interval)
            inside = levels_mask(levels)
            satisfying_mask = (window & inside if true_ok else 0) | (
                window & ~inside if false_ok else 0
            )
            if not satisfying_mask:
                return None
            return state.with_interval(mask_to_interval(satisfying_mask))
        # Out-of-range entry interval (custom --devices): per-level
        # fallback with identical semantics.
        satisfying = [
            level
            for level in interval
            if (true_ok if level in levels else false_ok)
        ]
        if not satisfying:
            return None
        refined = interval.meet(
            ApiInterval.of(min(satisfying), max(satisfying))
        )
        if refined.is_empty:
            return None
        return state.with_interval(refined)

    @staticmethod
    def _sdk_comparison(
        state: GuardState, instruction: Instruction
    ) -> tuple[CmpOp, int] | None:
        """Decode ``SDK_INT <op> const`` from a branch, if present."""
        if isinstance(instruction, IfCmp):
            lhs = state.reg(instruction.lhs)
            rhs = state.reg(instruction.rhs)
            if (
                lhs.kind is ValueKind.SDK_INT
                and rhs.kind is ValueKind.CONST
            ):
                return instruction.op, rhs.constant
            if (
                lhs.kind is ValueKind.CONST
                and rhs.kind is ValueKind.SDK_INT
            ):
                return instruction.op.swap(), lhs.constant
            return None
        if isinstance(instruction, IfCmpZero):
            lhs = state.reg(instruction.lhs)
            if lhs.kind is ValueKind.SDK_INT:
                return instruction.op, 0
        return None

    @staticmethod
    def _predicate_comparison(
        state: GuardState, instruction: Instruction
    ) -> tuple[CmpOp, int, frozenset[int]] | None:
        """Decode ``helper_result <op> const`` from a branch."""
        if isinstance(instruction, IfCmpZero):
            lhs = state.reg(instruction.lhs)
            if lhs.kind is ValueKind.PREDICATE:
                return instruction.op, 0, lhs.levels
            return None
        if isinstance(instruction, IfCmp):
            lhs = state.reg(instruction.lhs)
            rhs = state.reg(instruction.rhs)
            if (
                lhs.kind is ValueKind.PREDICATE
                and rhs.kind is ValueKind.CONST
            ):
                return instruction.op, rhs.constant, lhs.levels
            if (
                lhs.kind is ValueKind.CONST
                and rhs.kind is ValueKind.PREDICATE
            ):
                return instruction.op.swap(), lhs.constant, rhs.levels
        return None


def analyze_guards(
    method: Method,
    entry_interval: ApiInterval,
    predicate_summaries: dict[tuple, frozenset[int]] | None = None,
) -> BlockStates[GuardState | None]:
    """Solve the guard analysis for one method."""
    cfg = build_cfg(method)
    return solve_forward(
        GuardAnalysis(entry_interval, predicate_summaries), cfg
    )


def guard_at_invocations(
    method: Method,
    entry_interval: ApiInterval,
    predicate_summaries: dict[tuple, frozenset[int]] | None = None,
):
    """Yield ``(invoke_instruction, interval)`` for every invocation in
    ``method``, where ``interval`` is the guard-refined set of device
    levels under which the call can execute.  Unreachable calls
    (empty interval / dead blocks) are skipped.
    """
    states = analyze_guards(method, entry_interval, predicate_summaries)
    for block in states.cfg.blocks:
        if states.entry_states.get(block.index) is None:
            continue
        for _, state, instruction in states.instruction_states(block.index):
            if state is None:
                break
            if isinstance(instruction, Invoke):
                yield instruction, state.interval


def guard_at_allocations(
    method: Method,
    entry_interval: ApiInterval,
    predicate_summaries: dict[tuple, frozenset[int]] | None = None,
):
    """Yield ``(new_instance_instruction, interval)`` for every
    allocation in ``method`` with its guard-refined interval.  Used to
    attribute guard context to anonymous inner classes created under a
    version check."""
    states = analyze_guards(method, entry_interval, predicate_summaries)
    for block in states.cfg.blocks:
        if states.entry_states.get(block.index) is None:
            continue
        for _, state, instruction in states.instruction_states(block.index):
            if state is None:
                break
            if isinstance(instruction, NewInstance):
                yield instruction, state.interval
