"""Whole-framework pre-summaries: stop the CLVM at the boundary.

The lazy CLVM follows app→framework calls into framework method bodies
(to ``DEFAULT_FRAMEWORK_DEPTH``) because that is where virtual
dispatchers reach app callbacks and permission enforcement lives.  But
framework code is immutable per (spec, level): everything exploration
can learn from a framework class is a pure function of the framework,
not of the app.  This module precomputes it once per framework —
CID-style whole-framework pre-analysis, amortized over the corpus:

* a :class:`ClassSummary` per framework class records the *worklist
  effects* of analyzing that class — allocations, resolved call
  targets, and virtual/interface dispatch sites — in the exact order
  the lazy per-instruction analysis would produce them, so a
  summarized exploration enqueues the same app methods in the same
  order as a lazy one (findings parity, enforced by test);
* a :class:`MethodSummary` per framework method records the
  depth-bounded *reachable API interval* (the hull of API-level
  lifetimes over the method's framework-internal call region) and the
  *permission set* enforced within that region — the table artifact
  the paper's pre-analysis framing calls for;
* tables are built lazily per API level, memoized in-process (and
  shared with pool workers over fork, like the API database), and
  persisted content-addressed on the framework spec digest under a
  cache directory (``<cache>/summaries/``), checksummed like framework
  snapshots: a corrupt file is a miss, never an error.

The consumer is :class:`~repro.analysis.clvm.ClassLoaderVM` in
summarized mode (``summaries=``): a framework method popped from the
worklist costs one table lookup instead of a class materialization
plus a per-instruction scan.
"""

from __future__ import annotations

import hashlib
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..core.apidb import ApiDatabase
from ..framework.generator import materialize_image
from ..framework.repository import FrameworkRepository
from ..ir.clazz import Clazz
from ..ir.instructions import Invoke, InvokeKind, NewInstance
from ..ir.types import ClassName, MethodRef
from .clvm import DEFAULT_FRAMEWORK_DEPTH, LOADCLASS_SIGNATURES
from .intervals import ApiInterval
from .reaching import strings_at_invocations

__all__ = [
    "SUMMARY_SCHEMA_VERSION",
    "MethodSummary",
    "ClassSummary",
    "SummaryTableStats",
    "FrameworkSummaryTable",
    "summary_table",
    "register_table",
    "cached_table",
]

SUMMARY_SCHEMA_VERSION = 1

_CHECKSUM_BYTES = 32


@dataclass(frozen=True)
class MethodSummary:
    """Pre-analysis record for one framework method.

    ``interval`` is the hull of API-level lifetimes over every
    framework method reachable from this one within the exploration's
    framework-depth budget (the method itself included);
    ``permissions`` is the union of permissions required anywhere in
    that region.  Both answer "what could executing this API touch?"
    without loading a single framework body at analysis time.
    """

    ref: MethodRef
    interval: tuple[int, int]
    permissions: frozenset[str]
    instructions: int


@dataclass(frozen=True)
class ClassSummary:
    """Worklist effects + method table for one framework class.

    ``effects`` replays, in order, every enqueue the lazy CLVM would
    perform while analyzing this class: ``("loadclass", names, m)``
    for statically-resolved dynamic loads, ``("new", class_name, m)``
    for allocations, ``("call", target, m)`` for resolved invocations,
    and ``("dispatch", callee, m)`` for virtual/interface sites that
    may dispatch into app overrides (``m`` is the containing method,
    kept so dispatch edges carry their true caller).
    """

    name: ClassName
    instruction_count: int
    method_count: int
    effects: tuple[tuple, ...]
    methods: dict[str, MethodSummary] = field(default_factory=dict)

    def method(self, signature: str) -> MethodSummary | None:
        return self.methods.get(signature)


@dataclass
class SummaryTableStats:
    """Where each level's table came from, and what it cost."""

    levels_built: int = 0
    levels_loaded: int = 0
    lookups: int = 0
    build_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "levels_built": self.levels_built,
            "levels_loaded": self.levels_loaded,
            "lookups": self.lookups,
            "build_seconds": self.build_seconds,
        }


# -- image-local hierarchy walks -------------------------------------------
#
# Summary construction replays the lazy CLVM's dispatch resolution, but
# against the full image dict instead of the lazy resolver (same
# classes, same materialization) — no app is involved, so the walks are
# a pure function of (spec, level).

def _all_supertypes(
    image: dict[ClassName, Clazz],
    cache: dict[ClassName, tuple[Clazz, ...]],
    name: ClassName,
) -> tuple[Clazz, ...]:
    """Mirror of ``HierarchyResolver.all_supertypes`` over the image:
    breadth-first over supers + interfaces, absent names skipped."""
    cached = cache.get(name)
    if cached is not None:
        return cached
    out: list[Clazz] = []
    seen: set[ClassName] = {name}
    queue: list[ClassName] = []
    first = image.get(name)
    if first is not None:
        queue.extend(first.supertypes)
    while queue:
        super_name = queue.pop(0)
        if super_name in seen:
            continue
        seen.add(super_name)
        clazz = image.get(super_name)
        if clazz is None:
            continue
        out.append(clazz)
        queue.extend(clazz.supertypes)
    result = tuple(out)
    cache[name] = result
    return result


def _resolve_dispatch(
    image: dict[ClassName, Clazz],
    supers_cache: dict[ClassName, tuple[Clazz, ...]],
    instruction: Invoke,
) -> MethodRef | None:
    """Mirror of ``ClassLoaderVM._resolve_dispatch`` for call sites
    inside framework bodies (whose callees are framework refs, so the
    app never participates in the walk)."""
    callee = instruction.method
    clazz = image.get(callee.class_name)
    if instruction.kind in (InvokeKind.STATIC, InvokeKind.DIRECT):
        if clazz is not None and clazz.declares(callee.signature):
            return callee
        return None
    if clazz is None:
        return None
    if clazz.declares(callee.signature):
        declaring = clazz
    else:
        declaring = None
        for ancestor in _all_supertypes(
            image, supers_cache, callee.class_name
        ):
            if ancestor.declares(callee.signature):
                declaring = ancestor
                break
        if declaring is None:
            return None
    return MethodRef(declaring.name, callee.name, callee.descriptor)


# -- table construction ----------------------------------------------------

def _class_effects(
    clazz: Clazz,
    image: dict[ClassName, Clazz],
    supers_cache: dict[ClassName, tuple[Clazz, ...]],
) -> tuple[tuple, ...]:
    """The ordered worklist effects of analyzing ``clazz`` lazily."""
    effects: list[tuple] = []
    for method in clazz.methods:
        if method.body is None:
            continue
        has_dynamic_site = any(
            (invoke.method.class_name, invoke.method.name)
            in LOADCLASS_SIGNATURES
            for invoke in method.invocations
        )
        if has_dynamic_site:
            for invoke, resolved in strings_at_invocations(method):
                key = (invoke.method.class_name, invoke.method.name)
                if key in LOADCLASS_SIGNATURES:
                    effects.append(
                        (
                            "loadclass",
                            frozenset(resolved.get(0, frozenset())),
                            method.ref,
                        )
                    )
        for instruction in method.body.instructions:
            if isinstance(instruction, NewInstance):
                effects.append(
                    ("new", instruction.class_name, method.ref)
                )
            if not isinstance(instruction, Invoke):
                continue
            resolved = _resolve_dispatch(image, supers_cache, instruction)
            target = resolved or instruction.method
            effects.append(("call", target, method.ref))
            if instruction.kind in (
                InvokeKind.VIRTUAL, InvokeKind.INTERFACE
            ):
                effects.append(
                    ("dispatch", instruction.method, method.ref)
                )
    return tuple(effects)


def _method_region(
    start: MethodRef,
    direct: dict[MethodRef, tuple[MethodRef, ...]],
    max_depth: int | None,
) -> set[MethodRef]:
    """Framework refs reachable from ``start`` within the depth
    budget, ``start`` included (depth 0)."""
    region: set[MethodRef] = {start}
    frontier = [start]
    depth = 0
    while frontier and (max_depth is None or depth < max_depth):
        depth += 1
        next_frontier: list[MethodRef] = []
        for ref in frontier:
            for callee in direct.get(ref, ()):
                if callee not in region:
                    region.add(callee)
                    next_frontier.append(callee)
        frontier = next_frontier
    return region


class FrameworkSummaryTable:
    """Per-level framework summaries, built lazily and cached.

    One table serves every app analyzed against the same framework
    spec; pool workers inherit the parent's table over fork exactly
    like the API database, and a ``store_dir`` persists each level's
    summaries content-addressed on the spec digest so later processes
    load instead of rebuilding.
    """

    def __init__(
        self,
        framework: FrameworkRepository,
        apidb: ApiDatabase,
        *,
        max_depth: int | None = DEFAULT_FRAMEWORK_DEPTH,
        store_dir: str | Path | None = None,
    ) -> None:
        self._framework = framework
        self._apidb = apidb
        self._max_depth = max_depth
        self._store_dir = (
            Path(store_dir) if store_dir is not None else None
        )
        self._levels: dict[int, dict[ClassName, ClassSummary]] = {}
        self.stats = SummaryTableStats()

    @property
    def framework(self) -> FrameworkRepository:
        return self._framework

    @property
    def max_depth(self) -> int | None:
        return self._max_depth

    @property
    def store_dir(self) -> Path | None:
        return self._store_dir

    def set_store_dir(self, store_dir: str | Path | None) -> None:
        """Late-bind the persistence directory (the corpus layer knows
        the cache dir, the detector that constructs the table does
        not)."""
        if store_dir is not None and self._store_dir is None:
            self._store_dir = Path(store_dir)

    # -- lookups ------------------------------------------------------

    def level_summaries(
        self, level: int
    ) -> dict[ClassName, ClassSummary]:
        """Every class summary at ``level`` (built on first use)."""
        table = self._levels.get(level)
        if table is None:
            table = self._load(level)
            if table is None:
                table = self._build(level)
                self._store(level, table)
            self._levels[level] = table
        return table

    def class_summary(
        self, name: ClassName, level: int
    ) -> ClassSummary | None:
        self.stats.lookups += 1
        return self.level_summaries(level).get(name)

    def method_summary(
        self, ref: MethodRef, level: int
    ) -> MethodSummary | None:
        summary = self.level_summaries(level).get(ref.class_name)
        if summary is None:
            return None
        return summary.method(ref.name + ref.descriptor)

    # -- construction -------------------------------------------------

    def _build(self, level: int) -> dict[ClassName, ClassSummary]:
        started = time.perf_counter()
        spec = self._framework.spec
        image = materialize_image(spec, level)
        supers_cache: dict[ClassName, tuple[Clazz, ...]] = {}

        # First pass: per-class effects + the framework-internal
        # direct-call graph the method regions are computed over.
        effects_by_class: dict[ClassName, tuple[tuple, ...]] = {}
        direct: dict[MethodRef, tuple[MethodRef, ...]] = {}
        for name, clazz in image.items():
            effects = _class_effects(clazz, image, supers_cache)
            effects_by_class[name] = effects
            calls: dict[MethodRef, list[MethodRef]] = {}
            for kind, target, container in effects:
                if kind == "call" and target.is_framework:
                    calls.setdefault(container, []).append(target)
            for container, targets in calls.items():
                direct[container] = tuple(targets)

        # Second pass: per-method reachable interval + permission set.
        table: dict[ClassName, ClassSummary] = {}
        for name, clazz in image.items():
            methods: dict[str, MethodSummary] = {}
            for method in clazz.methods:
                region = _method_region(
                    method.ref, direct, self._max_depth
                )
                hull = ApiInterval.empty()
                permissions: set[str] = set()
                for ref in region:
                    entry = self._apidb.resolve(
                        ref.class_name, ref.name + ref.descriptor
                    )
                    if entry is not None:
                        lo, hi = entry.lifetime
                        hull = hull.join(ApiInterval.of(lo, hi))
                    permissions.update(
                        self._apidb.permissions_for(ref, deep=False)
                    )
                lo_hi = (
                    (hull.lo, hull.hi) if not hull.is_empty else (0, 0)
                )
                methods[method.signature] = MethodSummary(
                    ref=method.ref,
                    interval=lo_hi,
                    permissions=frozenset(permissions),
                    instructions=(
                        len(method.body) if method.body is not None else 0
                    ),
                )
            table[name] = ClassSummary(
                name=name,
                instruction_count=clazz.instruction_count,
                method_count=len(clazz.methods),
                effects=effects_by_class[name],
                methods=methods,
            )
        self.stats.levels_built += 1
        self.stats.build_seconds += time.perf_counter() - started
        return table

    # -- persistence --------------------------------------------------

    def _path(self, level: int) -> Path | None:
        if self._store_dir is None:
            return None
        from ..cache.fingerprint import fingerprint_spec

        key = fingerprint_spec(self._framework.spec)
        depth = (
            "all" if self._max_depth is None else str(self._max_depth)
        )
        return (
            self._store_dir
            / "summaries"
            / f"{key}-L{level}-d{depth}.summ"
        )

    def _store(self, level: int, table: dict) -> None:
        path = self._path(level)
        if path is None or path.exists():
            return
        from ..cache.manifest import atomic_write_bytes

        payload = pickle.dumps(
            {
                "version": SUMMARY_SCHEMA_VERSION,
                "level": level,
                "max_depth": self._max_depth,
                "classes": table,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        blob = hashlib.sha256(payload).digest() + payload
        atomic_write_bytes(path, blob)
        # Size the entry into the directory's shared manifest so the
        # summary store participates in the LRU byte budget alongside
        # result and class-artifact entries.
        from ..cache.manifest import shared_manifest

        manifest = shared_manifest(self._store_dir)
        manifest.record(
            str(path.relative_to(self._store_dir)), len(blob)
        )
        manifest.prune()
        manifest.save()

    def _load(self, level: int) -> dict[ClassName, ClassSummary] | None:
        """Load one level from the store; ``None`` on any defect
        (missing, truncated, checksum/version mismatch) — a miss,
        never an error."""
        path = self._path(level)
        if path is None:
            return None
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        if len(blob) <= _CHECKSUM_BYTES:
            return None
        digest, payload = blob[:_CHECKSUM_BYTES], blob[_CHECKSUM_BYTES:]
        if hashlib.sha256(payload).digest() != digest:
            return None
        try:
            doc = pickle.loads(payload)
        except Exception:  # pragma: no cover — checksum gates this
            return None
        if (
            not isinstance(doc, dict)
            or doc.get("version") != SUMMARY_SCHEMA_VERSION
            or doc.get("level") != level
            or doc.get("max_depth") != self._max_depth
            or not isinstance(doc.get("classes"), dict)
        ):
            return None
        self.stats.levels_loaded += 1
        from ..cache.manifest import shared_manifest

        manifest = shared_manifest(self._store_dir)
        relative = str(path.relative_to(self._store_dir))
        if relative in manifest.entries:
            manifest.touch(relative)
        else:
            # A table written before manifest sizing existed (or by a
            # concurrent worker whose manifest save lost the race):
            # adopt it so eviction accounting stays complete.
            manifest.record(relative, len(blob))
        return doc["classes"]


# -- in-process registry (fork-shared, like the API database) --------------

_TABLES: dict[tuple[int, int | None], FrameworkSummaryTable] = {}


def summary_table(
    framework: FrameworkRepository,
    apidb: ApiDatabase,
    *,
    max_depth: int | None = DEFAULT_FRAMEWORK_DEPTH,
    store_dir: str | Path | None = None,
) -> FrameworkSummaryTable:
    """The shared summary table for ``framework``'s spec, creating it
    on first request.  Keyed by spec identity so forked pool workers
    inherit the parent's built levels for free."""
    key = (id(framework.spec), max_depth)
    table = _TABLES.get(key)
    if table is None:
        table = FrameworkSummaryTable(
            framework, apidb, max_depth=max_depth, store_dir=store_dir
        )
        _TABLES[key] = table
    elif store_dir is not None:
        table.set_store_dir(store_dir)
    return table


def register_table(table: FrameworkSummaryTable) -> None:
    """Adopt an externally built table into the registry (parent
    prebuild before forking a pool)."""
    _TABLES[(id(table.framework.spec), table.max_depth)] = table


def cached_table(
    spec, max_depth: int | None = DEFAULT_FRAMEWORK_DEPTH
) -> FrameworkSummaryTable | None:
    """The registered table for ``spec``, if any (no build)."""
    return _TABLES.get((id(spec), max_depth))
