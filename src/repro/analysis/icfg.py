"""Inter-procedural control-flow graph (ICFG).

Stitches the per-method CFGs of an exploration together with call and
return edges.  Nodes are ``(method, block)`` pairs; call edges connect
a call-site block to the callee's entry block, return edges connect
callee exit blocks back to the site's fall-through block.

Inter-process communication is *not* stitched: per the paper
(section III-A), intents are separate invocations, each message
handler being its own entry point — so exported components simply
contribute additional roots rather than edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.instructions import Invoke
from ..ir.method import Method
from ..ir.types import MethodRef
from .callgraph import CallGraph
from .cfg import ControlFlowGraph, build_cfg

__all__ = ["IcfgNode", "Icfg", "build_icfg"]


@dataclass(frozen=True, slots=True)
class IcfgNode:
    method: MethodRef
    block: int


@dataclass
class Icfg:
    """Node/edge view over an explored call graph."""

    cfgs: dict[MethodRef, ControlFlowGraph]
    edges: dict[IcfgNode, tuple[IcfgNode, ...]]
    roots: tuple[IcfgNode, ...]

    @property
    def node_count(self) -> int:
        return sum(len(cfg.blocks) for cfg in self.cfgs.values())

    @property
    def edge_count(self) -> int:
        return sum(len(targets) for targets in self.edges.values())

    def successors(self, node: IcfgNode) -> tuple[IcfgNode, ...]:
        return self.edges.get(node, ())

    def reachable_nodes(self) -> frozenset[IcfgNode]:
        seen: set[IcfgNode] = set(self.roots)
        stack = list(self.roots)
        while stack:
            node = stack.pop()
            for successor in self.edges.get(node, ()):
                if successor not in seen:
                    seen.add(successor)
                    stack.append(successor)
        return frozenset(seen)


def build_icfg(callgraph: CallGraph) -> Icfg:
    """Construct the ICFG for every method in an explored call graph."""
    cfgs: dict[MethodRef, ControlFlowGraph] = {}
    for ref, method in callgraph.methods.items():
        cfgs[ref] = build_cfg(method)

    edges: dict[IcfgNode, list[IcfgNode]] = {}

    def add_edge(source: IcfgNode, target: IcfgNode) -> None:
        edges.setdefault(source, []).append(target)

    # Intra-procedural edges.
    for ref, cfg in cfgs.items():
        for block_index, targets in cfg.successors.items():
            for target in targets:
                if target >= 0:
                    add_edge(
                        IcfgNode(ref, block_index), IcfgNode(ref, target)
                    )

    # Call and return edges: resolve each invoke instruction to its
    # block, then wire to the callee entry and from callee exits.
    for ref, cfg in cfgs.items():
        sites = {
            (site.callee, site.resolved)
            for site in callgraph.callees(ref)
        }
        if not sites:
            continue
        resolved_by_callee: dict[MethodRef, list[MethodRef]] = {}
        for callee, resolved in sites:
            if resolved is not None and resolved in cfgs:
                resolved_by_callee.setdefault(callee, []).append(resolved)
        for block in cfg.blocks:
            for instruction in block.instructions:
                if not isinstance(instruction, Invoke):
                    continue
                for target_ref in resolved_by_callee.get(
                    instruction.method, ()
                ):
                    target_cfg = cfgs[target_ref]
                    if not target_cfg.blocks:
                        continue
                    entry = target_cfg.entry_block
                    add_edge(
                        IcfgNode(ref, block.index),
                        IcfgNode(target_ref, entry.index),
                    )
                    # Return edges from callee blocks that exit.
                    for callee_block, callee_targets in (
                        target_cfg.successors.items()
                    ):
                        if any(t < 0 for t in callee_targets):
                            add_edge(
                                IcfgNode(target_ref, callee_block),
                                IcfgNode(ref, block.index),
                            )

    roots = tuple(
        IcfgNode(entry, cfgs[entry].entry_block.index)
        for entry in callgraph.entry_points
        if entry in cfgs and cfgs[entry].blocks
    )
    return Icfg(
        cfgs=cfgs,
        edges={key: tuple(value) for key, value in edges.items()},
        roots=roots,
    )
