"""Repair synthesis: guard insertion, permission-protocol synthesis,
manifest fixes, and advisories (the paper's section VIII proposal,
implemented)."""

from .rewriter import GuardSpec, find_invoke_indices, wrap_invoke_in_guard
from .engine import (
    RepairAction,
    RepairActionKind,
    RepairEngine,
    RepairResult,
    repair_and_verify,
)

__all__ = [
    "GuardSpec",
    "RepairAction",
    "RepairActionKind",
    "RepairEngine",
    "RepairResult",
    "find_invoke_indices",
    "repair_and_verify",
    "wrap_invoke_in_guard",
]
