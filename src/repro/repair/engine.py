"""The repair synthesizer (paper section VIII future work).

Given an app and its static findings, the engine synthesizes a
repaired package:

* **API invocation mismatches** — every matching call site in the
  reported method is wrapped in the appropriate ``SDK_INT`` guard
  (``>= introduced`` for backward issues, ``<= last`` for forward
  issues, both for windowed APIs);
* **permission request mismatches** — a runtime-permission support
  activity (guarded ``requestPermissions`` + the
  ``onRequestPermissionsResult`` hook) is synthesized into the app;
* **permission revocation mismatches** — the manifest's
  ``targetSdkVersion`` is raised into the runtime-permission era and
  the protocol is synthesized (the paper's suggested fix for AdAway);
* **callback mismatches** — no code transformation can make an older
  framework call a newer hook, so the engine emits an *advisory*
  (raise ``minSdkVersion`` to the callback's introduction level, or
  backport the behaviour), mirroring the paper's per-app guidance.

``repair`` returns the transformed package plus an action log; the
repaired app is expected to re-analyze clean of every repairable
mismatch (asserted by the test suite and by ``repair_and_verify``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..apk.dexfile import DexFile
from ..apk.manifest import RUNTIME_PERMISSIONS_LEVEL
from ..apk.package import Apk
from ..core.apidb import ApiDatabase
from ..core.mismatch import Mismatch, MismatchKind
from ..ir.builder import ClassBuilder
from ..ir.clazz import Clazz
from ..ir.method import Method
from ..ir.types import MethodRef
from .rewriter import GuardSpec, find_invoke_indices, wrap_invoke_in_guard

__all__ = ["RepairActionKind", "RepairAction", "RepairResult",
           "RepairEngine", "repair_and_verify"]

import enum


class RepairActionKind(enum.Enum):
    GUARD_INSERTED = "guard-inserted"
    PROTOCOL_SYNTHESIZED = "protocol-synthesized"
    TARGET_SDK_RAISED = "target-sdk-raised"
    ADVISORY = "advisory"


@dataclass(frozen=True)
class RepairAction:
    kind: RepairActionKind
    mismatch: Mismatch
    description: str


@dataclass
class RepairResult:
    original: Apk
    repaired: Apk
    actions: list[RepairAction] = field(default_factory=list)

    @property
    def code_changes(self) -> tuple[RepairAction, ...]:
        return tuple(
            a for a in self.actions
            if a.kind is not RepairActionKind.ADVISORY
        )

    @property
    def advisories(self) -> tuple[RepairAction, ...]:
        return tuple(
            a for a in self.actions
            if a.kind is RepairActionKind.ADVISORY
        )


class RepairEngine:
    """Synthesizes repairs for one app's mismatches."""

    def __init__(self, apidb: ApiDatabase) -> None:
        self._apidb = apidb

    # -- public ----------------------------------------------------------

    def repair(self, apk: Apk, mismatches: list[Mismatch]) -> RepairResult:
        result = RepairResult(original=apk, repaired=apk)
        methods_patch: dict[MethodRef, Method] = {}
        needs_protocol = False
        raise_target = False

        for mismatch in mismatches:
            if mismatch.kind is MismatchKind.API_INVOCATION:
                self._plan_guard(apk, mismatch, methods_patch, result)
            elif mismatch.kind is MismatchKind.API_CALLBACK:
                intro = self._introduction_level(mismatch)
                result.actions.append(
                    RepairAction(
                        kind=RepairActionKind.ADVISORY,
                        mismatch=mismatch,
                        description=(
                            f"raise minSdkVersion to {intro} (or backport "
                            f"{mismatch.subject.signature}): the hook is "
                            f"never invoked on levels {mismatch.missing_levels}"
                        ),
                    )
                )
            elif mismatch.kind is MismatchKind.PERMISSION_REQUEST:
                needs_protocol = True
                result.actions.append(
                    RepairAction(
                        kind=RepairActionKind.PROTOCOL_SYNTHESIZED,
                        mismatch=mismatch,
                        description=(
                            f"synthesize the runtime request protocol for "
                            f"{mismatch.permission}"
                        ),
                    )
                )
            elif mismatch.kind is MismatchKind.PERMISSION_REVOCATION:
                needs_protocol = True
                raise_target = True
                result.actions.append(
                    RepairAction(
                        kind=RepairActionKind.TARGET_SDK_RAISED,
                        mismatch=mismatch,
                        description=(
                            f"raise targetSdkVersion to "
                            f"{RUNTIME_PERMISSIONS_LEVEL}+ and handle "
                            f"{mismatch.permission} through the runtime "
                            f"protocol"
                        ),
                    )
                )

        repaired = self._apply_method_patches(apk, methods_patch)
        if raise_target:
            repaired = self._raise_target_sdk(repaired)
        if needs_protocol:
            repaired = self._add_protocol_class(repaired)
        result.repaired = repaired
        return result

    # -- API invocation repair ---------------------------------------------

    def _introduction_level(self, mismatch: Mismatch) -> int:
        entry = self._apidb.resolve(
            mismatch.subject.class_name, mismatch.subject.signature
        )
        if entry is None:
            return mismatch.missing_levels.hi + 1
        return entry.lifetime[0]

    def _plan_guard(
        self,
        apk: Apk,
        mismatch: Mismatch,
        patches: dict[MethodRef, Method],
        result: RepairResult,
    ) -> None:
        location = mismatch.location
        clazz = apk.lookup(location.class_name)
        if clazz is None:
            result.actions.append(
                RepairAction(
                    kind=RepairActionKind.ADVISORY,
                    mismatch=mismatch,
                    description=(
                        f"cannot patch {location}: the code is outside "
                        f"the package (late-bound externally)"
                    ),
                )
            )
            return
        method = patches.get(location) or clazz.method(location.signature)
        if method is None or method.body is None:
            return

        entry = self._apidb.resolve(
            mismatch.subject.class_name, mismatch.subject.signature
        )
        lo, hi = apk.manifest.supported_range
        spec_min = None
        spec_max = None
        if entry is not None:
            introduced, last = entry.lifetime
            if introduced > lo:
                spec_min = introduced
            if last < hi:
                spec_max = last
        if spec_min is None and spec_max is None:
            spec_min = mismatch.missing_levels.hi + 1
        spec = GuardSpec(min_level=spec_min, max_level=spec_max)

        indices = find_invoke_indices(
            method, mismatch.subject.name, mismatch.subject.descriptor
        )
        # Wrap back-to-front so earlier indices stay valid.
        for index in reversed(indices):
            method = wrap_invoke_in_guard(method, index, spec)
        patches[location] = method
        result.actions.append(
            RepairAction(
                kind=RepairActionKind.GUARD_INSERTED,
                mismatch=mismatch,
                description=(
                    f"wrapped {len(indices)} call(s) to "
                    f"{mismatch.subject.signature} in {location} with "
                    f"'if ({spec.describe()})'"
                ),
            )
        )

    # -- package transformations ------------------------------------------------

    @staticmethod
    def _apply_method_patches(
        apk: Apk, patches: dict[MethodRef, Method]
    ) -> Apk:
        if not patches:
            return apk
        by_class: dict[str, dict[str, Method]] = {}
        for ref, method in patches.items():
            by_class.setdefault(ref.class_name, {})[ref.signature] = method

        new_dex_files = []
        for dex in apk.dex_files:
            new_classes = []
            for clazz in dex.classes:
                replacements = by_class.get(clazz.name)
                if not replacements:
                    new_classes.append(clazz)
                    continue
                new_methods = tuple(
                    replacements.get(method.signature, method)
                    for method in clazz.methods
                )
                new_classes.append(
                    dataclasses.replace(clazz, methods=new_methods)
                )
            new_dex_files.append(
                DexFile(dex.name, tuple(new_classes), secondary=dex.secondary)
            )
        return Apk(
            manifest=apk.manifest,
            dex_files=tuple(new_dex_files),
            label=apk.label,
        )

    @staticmethod
    def _raise_target_sdk(apk: Apk) -> Apk:
        manifest = apk.manifest
        if manifest.target_sdk >= RUNTIME_PERMISSIONS_LEVEL:
            return apk
        new_manifest = dataclasses.replace(
            manifest, target_sdk=RUNTIME_PERMISSIONS_LEVEL
        )
        return Apk(
            manifest=new_manifest,
            dex_files=apk.dex_files,
            label=apk.label,
        )

    @staticmethod
    def _add_protocol_class(apk: Apk) -> Apk:
        class_name = f"{apk.manifest.package}.RepairPermissionSupport"
        if apk.lookup(class_name) is not None:
            return apk
        builder = ClassBuilder(
            class_name, super_name="android.app.Activity"
        )
        ask = builder.method("requestDangerousPermissions")
        ask.guarded_call(
            RUNTIME_PERMISSIONS_LEVEL,
            "android.app.Activity",
            "requestPermissions",
            "(java.lang.String[],int)void",
        )
        ask.return_void()
        builder.finish(ask)
        builder.empty_method(
            "onRequestPermissionsResult",
            "(int,java.lang.String[],int[])void",
        )
        support = builder.build()

        primary = apk.dex_files[0]
        new_primary = DexFile(
            primary.name, primary.classes + (support,), secondary=False
        )
        return Apk(
            manifest=apk.manifest,
            dex_files=(new_primary,) + apk.dex_files[1:],
            label=apk.label,
        )


def repair_and_verify(detector, apk: Apk) -> tuple[RepairResult, list]:
    """Detect, repair, re-analyze.

    Returns the repair result and the residual mismatches of the
    repaired app (expected: only unrepairable advisories' subjects —
    callback mismatches — remain).
    """
    report = detector.analyze(apk)
    engine = RepairEngine(detector.apidb)
    result = engine.repair(apk, report.mismatches)
    residual = detector.analyze(result.repaired).mismatches
    return result, residual
