"""IR rewriting: wrap call sites in ``SDK_INT`` guards.

The core transformation of the repair synthesizer: given a method and
the index of an invoke instruction, produce a new method whose invoke
only executes when the device level satisfies a bound — exactly the
defensive idiom the paper's Listing 1 comments out.

Inserting instructions shifts indices, so every label is remapped; a
label that pointed *at* the call site is redirected to the start of
the inserted guard (otherwise a jump could still bypass it).  Rewritten
methods are re-validated before being returned.
"""

from __future__ import annotations

from ..ir.instructions import (
    CmpOp,
    ConstInt,
    IfCmp,
    Instruction,
    Invoke,
    SdkIntLoad,
)
from ..ir.method import Method, MethodBody
from ..ir.validate import validate_method

__all__ = ["GuardSpec", "wrap_invoke_in_guard", "find_invoke_indices"]

#: Scratch registers for the inserted guard; chosen at the top of the
#: frame so they cannot clobber live generator/app registers.
GUARD_SDK_REG = 250
GUARD_CONST_REG = 251


class GuardSpec:
    """What bound to enforce: ``min_level`` → execute only on
    ``SDK_INT >= min_level``; ``max_level`` → only on
    ``SDK_INT <= max_level``.  Both may be set (a window)."""

    def __init__(
        self, min_level: int | None = None, max_level: int | None = None
    ) -> None:
        if min_level is None and max_level is None:
            raise ValueError("a guard needs at least one bound")
        self.min_level = min_level
        self.max_level = max_level

    def comparisons(self) -> list[tuple[CmpOp, int]]:
        """Branch-away comparisons, i.e. skip the call when true."""
        out: list[tuple[CmpOp, int]] = []
        if self.min_level is not None:
            out.append((CmpOp.LT, self.min_level))
        if self.max_level is not None:
            out.append((CmpOp.GT, self.max_level))
        return out

    def describe(self) -> str:
        parts = []
        if self.min_level is not None:
            parts.append(f"SDK_INT >= {self.min_level}")
        if self.max_level is not None:
            parts.append(f"SDK_INT <= {self.max_level}")
        return " and ".join(parts)


def find_invoke_indices(method: Method, name: str, descriptor: str):
    """Indices of invoke instructions matching ``name(descriptor)``."""
    if method.body is None:
        return []
    return [
        index
        for index, instruction in enumerate(method.body.instructions)
        if isinstance(instruction, Invoke)
        and instruction.method.name == name
        and instruction.method.descriptor == descriptor
    ]


def _fresh_label(labels: dict[str, int], hint: str) -> str:
    counter = 0
    while f"{hint}{counter}" in labels:
        counter += 1
    return f"{hint}{counter}"


def wrap_invoke_in_guard(
    method: Method, invoke_index: int, spec: GuardSpec
) -> Method:
    """Return a copy of ``method`` with the invoke at ``invoke_index``
    protected by ``spec``."""
    body = method.body
    if body is None:
        raise ValueError(f"{method.ref}: cannot rewrite a bodyless method")
    instruction = body.instructions[invoke_index]
    if not isinstance(instruction, Invoke):
        raise ValueError(
            f"{method.ref}@{invoke_index}: not an invoke instruction"
        )

    new_labels = dict(body.labels)
    skip_label = _fresh_label(new_labels, "repair_skip_")

    guard: list[Instruction] = []
    for op, constant in spec.comparisons():
        guard.append(SdkIntLoad(GUARD_SDK_REG))
        guard.append(ConstInt(GUARD_CONST_REG, constant))
        guard.append(IfCmp(op, GUARD_SDK_REG, GUARD_CONST_REG, skip_label))
    inserted = len(guard)

    instructions = list(body.instructions)
    instructions[invoke_index:invoke_index] = guard

    # Remap existing labels: anything at or beyond the insertion point
    # shifts; a label aimed exactly at the call site must now aim at
    # the guard so jumps cannot bypass it.
    for label_name, target in body.labels.items():
        if target >= invoke_index:
            new_labels[label_name] = target + inserted
        if target == invoke_index:
            new_labels[label_name] = invoke_index
    new_labels[skip_label] = invoke_index + inserted + 1

    rewritten = Method(
        ref=method.ref,
        flags=method.flags,
        body=MethodBody(tuple(instructions), new_labels),
    )
    validate_method(rewritten)
    return rewritten
