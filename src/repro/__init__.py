"""SAINTDroid reproduction: scalable, automated incompatibility
detection for Android (Silva et al., DSN 2022).

Public API quick tour::

    from repro import SaintDroid, load_apk

    detector = SaintDroid()
    report = detector.analyze(load_apk("app.sapk"))
    for mismatch in report.mismatches:
        print(mismatch.describe())

Subpackages:

* :mod:`repro.ir` — register-based bytecode IR (dex analogue)
* :mod:`repro.apk` — app packages: manifest + dex files, JSON format
* :mod:`repro.framework` — versioned Android framework model (ADF)
* :mod:`repro.analysis` — CFG/dataflow/guard analyses and the CLVM
* :mod:`repro.core` — SAINTDroid itself (AUM, ARM, AMD)
* :mod:`repro.baselines` — CID, CIDER, and Lint reimplementations
* :mod:`repro.workload` — benchmark replicas and the synthetic corpus
* :mod:`repro.eval` — scoring, experiment runner, tables and figures
* :mod:`repro.dynamic` — IR interpreter + dynamic verifier (paper §VI)
* :mod:`repro.repair` — repair synthesizer (paper §VIII)
"""

from .apk import Apk, DexFile, Manifest, load_apk, save_apk
from .core import (
    AnalysisReport,
    Mismatch,
    MismatchKind,
    SaintDroid,
    build_api_database,
    render_report,
)
from .baselines import Cid, Cider, Lint
from .framework import FrameworkRepository
from .workload import AppForge, build_benchmark_suite, generate_corpus
from .eval import ToolSet, run_tools
from .dynamic import DeviceProfile, DynamicVerifier, Interpreter, Verdict
from .repair import RepairEngine, repair_and_verify

__version__ = "1.0.0"

__all__ = [
    "AnalysisReport",
    "Apk",
    "AppForge",
    "Cid",
    "Cider",
    "DeviceProfile",
    "DexFile",
    "DynamicVerifier",
    "FrameworkRepository",
    "Lint",
    "Manifest",
    "Interpreter",
    "Mismatch",
    "MismatchKind",
    "RepairEngine",
    "SaintDroid",
    "Verdict",
    "ToolSet",
    "__version__",
    "build_api_database",
    "build_benchmark_suite",
    "generate_corpus",
    "load_apk",
    "render_report",
    "repair_and_verify",
    "run_tools",
    "save_apk",
]
