"""Dynamic analysis: a concrete IR interpreter with crash observation
and the dynamic verifier for static findings (the paper's section VI
future-work proposal, implemented)."""

from .device import DeviceProfile
from .interpreter import (
    Crash,
    CrashKind,
    ExecutionBudgetExceeded,
    Interpreter,
)
from .verifier import (
    DynamicVerifier,
    VerificationResult,
    Verdict,
    VerifiedMismatch,
)

__all__ = [
    "Crash",
    "CrashKind",
    "DeviceProfile",
    "DynamicVerifier",
    "ExecutionBudgetExceeded",
    "Interpreter",
    "VerificationResult",
    "Verdict",
    "VerifiedMismatch",
]
