"""Device model for dynamic execution.

A :class:`DeviceProfile` fixes the run-time environment the paper's
static analysis reasons about: the installed API level and the state
of the (post-23) runtime permission system.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..apk.manifest import MAX_API_LEVEL, MIN_API_LEVEL, \
    RUNTIME_PERMISSIONS_LEVEL

__all__ = ["DeviceProfile"]


@dataclass(frozen=True)
class DeviceProfile:
    """One concrete device configuration.

    ``granted_permissions`` models the runtime permission state on
    API ≥ 23 devices.  Below 23 the install-time model applies: every
    manifest permission is granted and cannot be revoked, so the set
    is ignored there.
    """

    api_level: int
    granted_permissions: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if not MIN_API_LEVEL <= self.api_level <= MAX_API_LEVEL:
            raise ValueError(
                f"device API level {self.api_level} outside "
                f"[{MIN_API_LEVEL}, {MAX_API_LEVEL}]"
            )

    @property
    def runtime_permissions_active(self) -> bool:
        return self.api_level >= RUNTIME_PERMISSIONS_LEVEL

    def permits(self, permission: str) -> bool:
        """Whether executing code holding ``permission`` succeeds."""
        if not self.runtime_permissions_active:
            return True  # install-time grants, nothing revocable
        return permission in self.granted_permissions

    def granting(self, *permissions: str) -> "DeviceProfile":
        """A copy with additional permissions granted."""
        return DeviceProfile(
            api_level=self.api_level,
            granted_permissions=self.granted_permissions
            | frozenset(permissions),
        )

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return (
            f"Device(API {self.api_level}, "
            f"{len(self.granted_permissions)} grants)"
        )
