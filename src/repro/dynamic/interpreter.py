"""Concrete IR interpreter with crash observation.

Executes app code on a :class:`~repro.dynamic.device.DeviceProfile`
and records the crashes the static mismatches predict:

* invoking a framework method that does not exist at the device's API
  level → :data:`CrashKind.MISSING_METHOD` (the runtime's
  ``NoSuchMethodError``);
* invoking an API whose (transitive) dangerous permissions the device
  has not granted, on a runtime-permission device →
  :data:`CrashKind.PERMISSION_DENIED` (``SecurityException``);
* invoking an API with a semantic delta when the device sits on the
  other side of the delta level than the app's target SDK →
  :data:`CrashKind.BEHAVIOR_CHANGE` (the behavior-only failures of
  Pan et al., surfaced as an observable fault so the oracle can
  confirm SEM findings).

Unlike the static analysis, execution evaluates ``SDK_INT`` guards
*concretely* — a properly guarded call simply never runs on the
vulnerable levels — which is what makes the interpreter a verifier for
static findings (paper section VI's proposed dynamic complement).

Framework methods are not executed; they are effect-summarized (the
two crash checks plus *callback trampolining*: passing an app object
to a framework API executes the callbacks that object overrides, the
way ``Handler.post(runnable)`` eventually runs ``run()``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..apk.package import Apk
from ..core.apidb import ApiDatabase
from ..framework.permissions import is_dangerous
from ..ir.clazz import Clazz
from ..ir.instructions import (
    BinOp,
    ConstInt,
    ConstNull,
    ConstString,
    FieldGet,
    FieldPut,
    Goto,
    IfCmp,
    IfCmpZero,
    Invoke,
    Move,
    MoveResult,
    NewInstance,
    Nop,
    Return,
    ReturnVoid,
    SdkIntLoad,
    Throw,
)
from ..ir.method import Method
from ..ir.types import ClassName, MethodRef, SDK_INT_FIELD, \
    is_framework_class
from .device import DeviceProfile

__all__ = ["CrashKind", "Crash", "ExecutionBudgetExceeded", "Interpreter"]


class CrashKind(enum.Enum):
    MISSING_METHOD = "missing-method"
    PERMISSION_DENIED = "permission-denied"
    BEHAVIOR_CHANGE = "behavior-change"
    APP_THROW = "app-throw"


@dataclass(frozen=True)
class Crash:
    """One observed runtime failure."""

    kind: CrashKind
    api: MethodRef | None
    location: MethodRef
    api_level: int
    permission: str | None = None

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        detail = self.permission or (str(self.api) if self.api else "")
        return (
            f"{self.kind.value} in {self.location} on API "
            f"{self.api_level}: {detail}"
        )


class ExecutionBudgetExceeded(RuntimeError):
    """The step or depth budget ran out (loops / deep recursion)."""


class _SimulatedCrash(Exception):
    """Internal unwinding signal carrying the crash record."""

    def __init__(self, crash: Crash) -> None:
        super().__init__(str(crash))
        self.crash = crash


@dataclass(frozen=True)
class _AppObject:
    """A runtime instance of an app class."""

    class_name: ClassName


_OPAQUE = object()  # values of unknown provenance


@dataclass
class _Frame:
    registers: dict[int, object] = field(default_factory=dict)
    last_result: object = _OPAQUE


class Interpreter:
    """Executes one app's code against one device profile."""

    def __init__(
        self,
        apk: Apk,
        apidb: ApiDatabase,
        device: DeviceProfile,
        *,
        max_steps: int = 200_000,
        max_depth: int = 48,
    ) -> None:
        self._apk = apk
        self._apidb = apidb
        self._device = device
        self._max_steps = max_steps
        self._max_depth = max_depth
        self._steps = 0

    # -- public ----------------------------------------------------------

    def run(self, entry: MethodRef) -> Crash | None:
        """Execute ``entry``; return the first crash or None."""
        method = self._find_app_method(entry)
        if method is None or method.body is None:
            return None
        self._steps = 0
        try:
            self._execute(method, depth=0)
        except _SimulatedCrash as crash:
            return crash.crash
        return None

    # -- resolution --------------------------------------------------------

    def _find_app_method(self, ref: MethodRef) -> Method | None:
        clazz = self._apk.lookup(ref.class_name)
        seen: set[ClassName] = set()
        while clazz is not None and clazz.name not in seen:
            seen.add(clazz.name)
            found = clazz.method(ref.signature)
            if found is not None:
                return found
            if clazz.super_name is None:
                return None
            clazz = self._apk.lookup(clazz.super_name)
        return None

    def _app_receiver_framework_root(self, name: ClassName) -> ClassName | None:
        """First framework class up an app class's super chain."""
        current: ClassName | None = name
        seen: set[ClassName] = set()
        while current is not None and current not in seen:
            seen.add(current)
            clazz = self._apk.lookup(current)
            if clazz is None:
                return current if current in self._apidb else None
            current = clazz.super_name
        return None

    # -- the crash checks -----------------------------------------------------

    def _check_framework_call(
        self, callee: MethodRef, location: MethodRef
    ) -> None:
        entry = self._apidb.resolve(callee.class_name, callee.signature)
        if entry is None:
            return  # unknown namespace: no-op, like a stubbed library
        if not self._apidb.exists(
            callee.class_name, callee.signature, self._device.api_level
        ):
            raise _SimulatedCrash(
                Crash(
                    kind=CrashKind.MISSING_METHOD,
                    api=entry.ref,
                    location=location,
                    api_level=self._device.api_level,
                )
            )
        for permission in sorted(
            self._apidb.permissions_for(entry.ref, deep=True)
        ):
            if not is_dangerous(permission):
                continue
            if not self._device.permits(permission):
                raise _SimulatedCrash(
                    Crash(
                        kind=CrashKind.PERMISSION_DENIED,
                        api=entry.ref,
                        location=location,
                        api_level=self._device.api_level,
                        permission=permission,
                    )
                )
        # Behavior-only change: the device sits on the other side of a
        # semantic delta than the app's target SDK, so the call runs
        # behavior the app never anticipated.  Checked after the
        # permission loop so it can never mask a permission replay.
        target = self._apk.manifest.target_sdk
        for delta in entry.semantic_deltas:
            if (self._device.api_level >= delta.level) != (
                target >= delta.level
            ):
                raise _SimulatedCrash(
                    Crash(
                        kind=CrashKind.BEHAVIOR_CHANGE,
                        api=entry.ref,
                        location=location,
                        api_level=self._device.api_level,
                    )
                )

    # -- trampolining -------------------------------------------------------

    def _callback_overrides(self, clazz: Clazz) -> list[Method]:
        """Methods of ``clazz`` overriding framework callbacks.

        A callback only runs while it exists on the device: the
        framework cannot invoke ``onFoo`` before the level that
        introduced it, nor after the level that removed it, so
        selection is gated on the callback's lifetime at the current
        device level — not mere membership in the callback set.
        """
        out = []
        for method in clazz.methods:
            if not method.has_code:
                continue
            root = None
            for super_name in clazz.supertypes:
                root = super_name if is_framework_class(super_name) else (
                    self._app_receiver_framework_root(super_name)
                )
                if root is not None:
                    entry = self._apidb.callback_entry(
                        root, method.signature
                    )
                    if entry is not None and self._apidb.exists(
                        root, method.signature, self._device.api_level
                    ):
                        out.append(method)
                        break
        return out

    def _trampoline(self, target: _AppObject, depth: int) -> None:
        """The framework received an app object: its callback
        overrides will run (Handler.post → run(), listeners, …)."""
        clazz = self._apk.lookup(target.class_name)
        if clazz is None:
            return
        for method in self._callback_overrides(clazz):
            self._execute(method, depth + 1)

    # -- the machine ----------------------------------------------------------

    def _budget(self, depth: int) -> None:
        self._steps += 1
        if self._steps > self._max_steps:
            raise ExecutionBudgetExceeded(
                f"step budget exceeded in {self._apk.name}"
            )
        if depth > self._max_depth:
            raise ExecutionBudgetExceeded(
                f"call depth exceeded in {self._apk.name}"
            )

    def _execute(self, method: Method, depth: int) -> object:
        """Run ``method``; returns its return value (``_OPAQUE`` when
        unknown, ``None`` for void)."""
        if method.body is None or not method.body.instructions:
            return None
        frame = _Frame()
        body = method.body
        pc = 0
        while 0 <= pc < len(body.instructions):
            self._budget(depth)
            instruction = body.instructions[pc]

            if isinstance(instruction, ConstInt):
                frame.registers[instruction.dest] = instruction.value
            elif isinstance(instruction, ConstString):
                frame.registers[instruction.dest] = instruction.value
            elif isinstance(instruction, ConstNull):
                frame.registers[instruction.dest] = None
            elif isinstance(instruction, SdkIntLoad):
                frame.registers[instruction.dest] = self._device.api_level
            elif isinstance(instruction, FieldGet):
                if instruction.fieldref == SDK_INT_FIELD:
                    frame.registers[instruction.dest] = (
                        self._device.api_level
                    )
                else:
                    frame.registers[instruction.dest] = _OPAQUE
            elif isinstance(instruction, FieldPut):
                pass
            elif isinstance(instruction, Move):
                frame.registers[instruction.dest] = frame.registers.get(
                    instruction.src, _OPAQUE
                )
            elif isinstance(instruction, BinOp):
                lhs = frame.registers.get(instruction.lhs, _OPAQUE)
                rhs = frame.registers.get(instruction.rhs, _OPAQUE)
                frame.registers[instruction.dest] = self._binop(
                    instruction.op, lhs, rhs
                )
            elif isinstance(instruction, MoveResult):
                frame.registers[instruction.dest] = frame.last_result
            elif isinstance(instruction, NewInstance):
                if self._apk.lookup(instruction.class_name) is not None:
                    frame.registers[instruction.dest] = _AppObject(
                        instruction.class_name
                    )
                else:
                    frame.registers[instruction.dest] = _OPAQUE
            elif isinstance(instruction, IfCmp):
                lhs = frame.registers.get(instruction.lhs, _OPAQUE)
                rhs = frame.registers.get(instruction.rhs, _OPAQUE)
                if self._compare(instruction.op, lhs, rhs):
                    pc = body.resolve(instruction.target)
                    continue
            elif isinstance(instruction, IfCmpZero):
                lhs = frame.registers.get(instruction.lhs, _OPAQUE)
                if self._compare(instruction.op, lhs, 0):
                    pc = body.resolve(instruction.target)
                    continue
            elif isinstance(instruction, Goto):
                pc = body.resolve(instruction.target)
                continue
            elif isinstance(instruction, Invoke):
                self._invoke(instruction, method.ref, frame, depth)
            elif isinstance(instruction, ReturnVoid):
                return None
            elif isinstance(instruction, Return):
                return frame.registers.get(instruction.src, _OPAQUE)
            elif isinstance(instruction, Throw):
                raise _SimulatedCrash(
                    Crash(
                        kind=CrashKind.APP_THROW,
                        api=None,
                        location=method.ref,
                        api_level=self._device.api_level,
                    )
                )
            elif isinstance(instruction, Nop):
                pass
            pc += 1
        return None

    def _invoke(
        self,
        instruction: Invoke,
        location: MethodRef,
        frame: _Frame,
        depth: int,
    ) -> None:
        callee = instruction.method
        target_class = callee.class_name
        app_method = self._find_app_method(callee)

        if app_method is not None:
            result = self._execute(app_method, depth + 1)
            # Concrete results (e.g. a version-check helper's boolean)
            # flow back so guards behave like the real runtime.
            frame.last_result = _OPAQUE if result is None else result
            return

        # Not defined by app code: resolve against the framework —
        # either directly or through an app class's framework ancestry.
        if not is_framework_class(target_class):
            root = self._app_receiver_framework_root(target_class)
            if root is None:
                frame.last_result = _OPAQUE
                return
            callee = MethodRef(root, callee.name, callee.descriptor)

        self._check_framework_call(callee, location)

        # Callback trampolining for app objects handed to the ADF.
        for register in instruction.args:
            value = frame.registers.get(register, _OPAQUE)
            if isinstance(value, _AppObject):
                self._trampoline(value, depth)
        frame.last_result = _OPAQUE

    # -- value helpers ------------------------------------------------------------

    @staticmethod
    def _binop(op: str, lhs: object, rhs: object) -> object:
        if isinstance(lhs, int) and isinstance(rhs, int):
            if op == "+":
                return lhs + rhs
            if op == "-":
                return lhs - rhs
            if op == "*":
                return lhs * rhs
            if op == "/":
                return lhs // rhs if rhs else 0
        return _OPAQUE

    @staticmethod
    def _compare(op, lhs: object, rhs: object) -> bool:
        if isinstance(lhs, int) and isinstance(rhs, int):
            return op.evaluate(lhs, rhs)
        # Unknown operands: deterministic fall-through (a dynamic run
        # picks one path; the harness varies device levels, not data).
        return False
