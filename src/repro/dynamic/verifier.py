"""Dynamic verification of static findings (paper section VI).

The paper proposes complementing the conservative static analysis with
dynamic analysis "to automatically verify incompatibilities …, further
alleviating the burden of manual analysis".  This module implements
that proposal:

for every static mismatch, the verifier executes the app — every
non-anonymous concrete method, the way a test harness or UI monkey
drives an app — on device profiles drawn from the mismatch's missing
levels, and checks whether the predicted crash is actually observable.

How each kind is probed is not written here: every registered mismatch
kind carries a :class:`~repro.core.kinds.VerifyPolicy` (which crash to
look for, which permissions to grant or withhold, the minimum probe
level) and the verifier just executes it.  Kinds without a policy —
e.g. callback mismatches, whose failure mode is a hook silently never
invoked — are classified ``STATIC_ONLY`` rather than confirmed or
refuted.  Static false alarms whose guards live outside the analyzed
scope (the anonymous-inner-class blind spot) are *refuted* here:
concrete execution respects the guard, so the vulnerable code never
runs on the vulnerable levels.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..apk.package import Apk
from ..core.apidb import ApiDatabase
from ..core.detector import AnalysisReport
from ..core.mismatch import Mismatch
from ..ir.types import MethodRef, is_anonymous_class
from .device import DeviceProfile
from .interpreter import Crash, ExecutionBudgetExceeded, Interpreter

__all__ = ["Verdict", "VerifiedMismatch", "VerificationResult",
           "DynamicVerifier"]


class Verdict(enum.Enum):
    CONFIRMED = "confirmed"
    REFUTED = "refuted"
    STATIC_ONLY = "static-only"


@dataclass(frozen=True)
class VerifiedMismatch:
    mismatch: Mismatch
    verdict: Verdict
    evidence: Crash | None = None


@dataclass
class VerificationResult:
    app: str
    verified: list[VerifiedMismatch] = field(default_factory=list)

    @property
    def confirmed(self) -> tuple[VerifiedMismatch, ...]:
        return tuple(
            v for v in self.verified if v.verdict is Verdict.CONFIRMED
        )

    @property
    def refuted(self) -> tuple[VerifiedMismatch, ...]:
        return tuple(
            v for v in self.verified if v.verdict is Verdict.REFUTED
        )

    @property
    def static_only(self) -> tuple[VerifiedMismatch, ...]:
        return tuple(
            v for v in self.verified if v.verdict is Verdict.STATIC_ONLY
        )

    def surviving_mismatches(self) -> list[Mismatch]:
        """Static findings minus the dynamically refuted ones."""
        return [
            v.mismatch
            for v in self.verified
            if v.verdict is not Verdict.REFUTED
        ]


class DynamicVerifier:
    """Drives the interpreter to verify one app's static report."""

    def __init__(
        self,
        apk: Apk,
        apidb: ApiDatabase,
        *,
        max_levels_per_mismatch: int = 3,
    ) -> None:
        self._apk = apk
        self._apidb = apidb
        self._max_levels = max_levels_per_mismatch
        self._crash_cache: dict[tuple, tuple[Crash, ...]] = {}

    # -- harness ----------------------------------------------------------

    def entry_points(self) -> tuple[MethodRef, ...]:
        """Everything a harness can drive directly: concrete methods of
        non-anonymous app classes (anonymous instances only run when
        reached through real control flow — that asymmetry is what
        refutes the static blind-spot false alarms)."""
        out = []
        for clazz in self._apk.all_classes:
            if is_anonymous_class(clazz.name):
                continue
            for method in clazz.methods:
                if method.has_code and method.name != "<init>":
                    out.append(method.ref)
        return tuple(out)

    def observed_crashes(self, device: DeviceProfile) -> tuple[Crash, ...]:
        """All crashes any entry point produces on ``device``."""
        key = (device.api_level, device.granted_permissions)
        if key in self._crash_cache:
            return self._crash_cache[key]
        crashes: list[Crash] = []
        interpreter = Interpreter(self._apk, self._apidb, device)
        for entry in self.entry_points():
            try:
                crash = interpreter.run(entry)
            except ExecutionBudgetExceeded:
                continue
            if crash is not None:
                crashes.append(crash)
        result = tuple(crashes)
        self._crash_cache[key] = result
        return result

    # -- per-mismatch verification --------------------------------------------

    def _probe_levels(self, mismatch: Mismatch) -> list[int]:
        """Representative device levels within the missing range."""
        missing = mismatch.missing_levels
        lo, hi = self._apk.manifest.supported_range
        levels = [
            level for level in missing if lo <= level <= hi
        ]
        if len(levels) <= self._max_levels:
            return levels
        return sorted({levels[0], levels[len(levels) // 2], levels[-1]})

    def verify(self, mismatch: Mismatch) -> VerifiedMismatch:
        """Probe one finding per its kind's registered policy.

        Kinds without a policy have no observable crash (the failure
        mode is e.g. a hook silently never invoked) and stay
        ``STATIC_ONLY``.  Otherwise the device either grants every
        dangerous permission (so unrelated denials cannot mask the
        probe) or — for the permission kinds — withholds exactly the
        mismatch's own permission, the mirror of that rule.
        """
        policy = mismatch.kind.verify
        if policy is None:
            return VerifiedMismatch(mismatch, Verdict.STATIC_ONLY)

        if policy.withhold_permission:
            granted = self._all_dangerous_permissions() - {
                mismatch.permission
            }
        else:
            granted = frozenset(self._all_dangerous_permissions())
        for level in self._probe_levels(mismatch):
            if level < policy.min_level:
                continue
            device = DeviceProfile(
                api_level=level, granted_permissions=granted
            )
            for crash in self.observed_crashes(device):
                if crash.kind.value == policy.crash_kind and (
                    policy.matches(mismatch, crash)
                ):
                    return VerifiedMismatch(
                        mismatch, Verdict.CONFIRMED, crash
                    )
        return VerifiedMismatch(mismatch, Verdict.REFUTED)

    def verify_all(self, report: AnalysisReport) -> VerificationResult:
        result = VerificationResult(app=report.app)
        for mismatch in report.mismatches:
            result.verified.append(self.verify(mismatch))
        return result

    @staticmethod
    def _all_dangerous_permissions() -> frozenset[str]:
        from ..framework.permissions import DANGEROUS_PERMISSIONS
        return frozenset(DANGEROUS_PERMISSIONS)
