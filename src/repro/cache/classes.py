"""Corpus-wide content-addressed store of per-class analysis
artifacts — the engine behind ``--dedup``.

Apps overwhelmingly share code: common libraries and SDK scaffolding
dominate each APK, so two apps that differ by one class should not
each pay full per-class analysis.  This store caches, keyed by a
canonical digest of the class bytecode plus the framework-spec and
tool-config digests (:func:`repro.cache.fingerprint.class_key`), every
fact the per-app phases derive *from the class alone*:

* **explore effects** — the ordered per-method effect stream the lazy
  class-loader VM derives by scanning instructions and running the
  constant-string dataflow over ``Class.forName``-style sites: which
  classes a method instantiates, which targets it invokes (as *static*
  refs — virtual dispatch is re-resolved live against each app's
  hierarchy), and which dynamically-loaded names its strings resolve
  to;
* **version-helper summaries** — the per-level concrete evaluation of
  every candidate SDK-predicate helper
  (:func:`repro.analysis.summaries.summarize_version_helper`), the
  most expensive pure-per-class computation in the pipeline;
* **guard rows** — for each ``(method, entry interval, helper-set)``
  context the guard propagation has ever asked about, the refined
  interval at every reachable call site (the product of
  ``build_cfg`` + forward dataflow in :mod:`repro.analysis.guards`).

What is deliberately *not* cached: anything that depends on the whole
app — virtual/interface dispatch resolution, subtype overrides,
callback overrides, manifest-derived intervals.  Replay re-derives
those live, which is what makes a cached artifact valid across apps.

Chaos discipline: artifacts produced while analyzing an app are
**staged**, and only an explicit end-of-pipeline commit publishes
them.  A crash, timeout, or injected fault aborts the pipeline before
the commit pass runs, so a faulted app can never populate the store
(the same rule the result cache enforces with ``result.ok``).

Disk entries are checksummed pickles (corruption is a miss, never an
error) recorded in the directory's *shared* manifest, so per-class
artifacts, per-app results, and framework summary tables together
respect one LRU byte budget.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from .fingerprint import (
    canonical_json,
    class_key,
    fingerprint_clazz,
)
from .manifest import atomic_write_bytes, shared_manifest

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from ..ir.clazz import Clazz

__all__ = [
    "CLASS_ARTIFACT_VERSION",
    "ClassArtifact",
    "ClassStoreStats",
    "ClassStore",
    "class_store",
    "reset_class_stores",
]

#: Version of the artifact payload semantics (effect encoding, helper
#: map, guard-row keying).  Part of the checksum preamble: bumping it
#: orphans old entries without migration code.  v2: semantic-delta
#: (SEM) facts joined the analysis substrate — pre-SEM artifacts must
#: degrade to misses, never resurface as findings.
CLASS_ARTIFACT_VERSION = 2

_CHECKSUM_BYTES = 32  # sha256 digest length


@dataclass(eq=False)  # identity semantics: artifacts are cache
# entries, and downstream memos key them (weakly) by instance.
class ClassArtifact:
    """Everything derivable from one class in isolation.

    ``effects`` is aligned with ``clazz.methods``: one tuple of effect
    records per declared method, in declaration order, each record one
    of::

        ("loadclass", (name, ...))   # constant-resolved dynamic names
                                     # (empty tuple = unresolved site)
        ("new", class_name)          # NewInstance allocation
        ("invoke", kind, (class_name, name, descriptor))

    ``helpers`` maps ``(name, descriptor)`` of every summarizable
    version-predicate method to its true-level set.  ``guard_rows``
    maps ``(signature, entry_lo, entry_hi, helpers_digest)`` to the
    refined interval at each reachable call site:
    ``((class_name, name, descriptor), lo, hi)`` per row.  Guard rows
    accumulate as new contexts are observed; the rest is immutable.
    """

    effects: tuple[tuple, ...] = ()
    helpers: dict = field(default_factory=dict)
    guard_rows: dict = field(default_factory=dict)


@dataclass
class ClassStoreStats:
    """One process's traffic against the class-artifact store."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    evicted: int = 0
    discarded: int = 0
    guard_hits: int = 0
    guard_misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def guard_hit_rate(self) -> float:
        total = self.guard_hits + self.guard_misses
        return self.guard_hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "evicted": self.evicted,
            "discarded": self.discarded,
            "guard_hits": self.guard_hits,
            "guard_misses": self.guard_misses,
            "hit_rate": self.hit_rate,
            "guard_hit_rate": self.guard_hit_rate,
        }


def helpers_digest(helper_items) -> str:
    """Digest of the helper summaries visible to one guard context.

    ``helper_items`` is an iterable of ``((class, name, descriptor),
    levels)`` pairs; the digest is order-insensitive, so the same
    helper environment always keys the same guard rows.
    """
    doc = sorted(
        (list(key), sorted(levels)) for key, levels in helper_items
    )
    return hashlib.sha256(canonical_json(doc).encode()).hexdigest()


class ClassStore:
    """In-memory + on-disk store of :class:`ClassArtifact` entries.

    One instance is scoped to a (framework fingerprint, config
    fingerprint) pair; lookups take a :class:`Clazz` and are keyed by
    its content digest.  ``cache_dir=None`` keeps the store purely in
    memory — dedup still amortizes across the apps of one run (or the
    lifetime of a daemon worker), it just does not survive the
    process.
    """

    def __init__(
        self,
        cache_dir: str | Path | None,
        *,
        framework_fingerprint: str,
        config_fingerprint: str,
        max_bytes: int | None = None,
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.framework_fingerprint = framework_fingerprint
        self.config_fingerprint = config_fingerprint
        self.stats = ClassStoreStats()
        self._memory: dict[str, ClassArtifact] = {}
        self._dirty: set[str] = set()
        self._staged: dict[str, ClassArtifact] = {}
        self._staged_guards: dict[str, dict] = {}
        self._manifest = (
            shared_manifest(self.cache_dir, max_bytes=max_bytes)
            if self.cache_dir is not None
            else None
        )

    # -- keys and paths ------------------------------------------------

    def key_for(self, clazz: "Clazz") -> str:
        return class_key(
            fingerprint_clazz(clazz),
            self.framework_fingerprint,
            self.config_fingerprint,
        )

    def _entry_path(self, key: str) -> Path:
        return self.cache_dir / "classes" / key[:2] / f"{key}.cls"

    def _relative(self, path: Path) -> str:
        return str(path.relative_to(self.cache_dir))

    # -- lookup --------------------------------------------------------

    def get(self, clazz: "Clazz") -> "ClassArtifact | None":
        """The cached artifact for this exact class content, or
        ``None`` (corrupt disk entries are dropped and count as
        misses)."""
        key = self.key_for(clazz)
        artifact = self._memory.get(key)
        if artifact is not None:
            self.stats.hits += 1
            return artifact
        artifact = self._load(key)
        if artifact is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._memory[key] = artifact
        return artifact

    def _load(self, key: str) -> "ClassArtifact | None":
        if self.cache_dir is None:
            return None
        path = self._entry_path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        try:
            if len(blob) <= _CHECKSUM_BYTES:
                raise ValueError("truncated entry")
            checksum, payload = blob[:_CHECKSUM_BYTES], blob[_CHECKSUM_BYTES:]
            if hashlib.sha256(payload).digest() != checksum:
                raise ValueError("checksum mismatch")
            version, artifact = pickle.loads(payload)
            if version != CLASS_ARTIFACT_VERSION:
                raise ValueError("artifact version mismatch")
            if not isinstance(artifact, ClassArtifact):
                raise ValueError("unexpected payload type")
        except Exception:
            self.stats.corrupt += 1
            path.unlink(missing_ok=True)
            if self._manifest is not None:
                self._manifest.forget(self._relative(path))
            return None
        if self._manifest is not None:
            self._manifest.touch(self._relative(path))
        return artifact

    # -- staging (one app's pipeline) ----------------------------------

    def begin_app(self) -> None:
        """Discard any staging left by an aborted pipeline (fault,
        timeout, crash): a faulted app must never publish artifacts."""
        self.stats.discarded += len(self._staged)
        self._staged.clear()
        self._staged_guards.clear()

    def stage(self, key: str, artifact: ClassArtifact) -> None:
        """Stage a freshly-recorded artifact; published on commit."""
        self._staged[key] = artifact

    def record_guard_rows(self, key: str, row_key: tuple, rows) -> None:
        """Stage guard rows for an artifact (cached or staged)."""
        self._staged_guards.setdefault(key, {})[row_key] = tuple(rows)

    def commit_app(self) -> None:
        """Publish this app's staged artifacts and guard rows.  Runs
        only as the final pipeline pass — any earlier failure leaves
        the store untouched."""
        wrote = False
        for key, artifact in self._staged.items():
            self._memory[key] = artifact
            self._dirty.add(key)
        for key, row_map in self._staged_guards.items():
            artifact = self._memory.get(key)
            if artifact is None:
                continue  # artifact itself was evicted or never staged
            artifact.guard_rows.update(row_map)
            self._dirty.add(key)
        self._staged.clear()
        self._staged_guards.clear()
        if self.cache_dir is not None:
            for key in sorted(self._dirty):
                artifact = self._memory.get(key)
                if artifact is not None:
                    self._write(key, artifact)
                    wrote = True
        self._dirty.clear()
        if wrote and self._manifest is not None:
            self.stats.evicted += len(self._manifest.prune())
            self._manifest.save()

    def _write(self, key: str, artifact: ClassArtifact) -> None:
        payload = pickle.dumps(
            (CLASS_ARTIFACT_VERSION, artifact),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        blob = hashlib.sha256(payload).digest() + payload
        path = self._entry_path(key)
        fresh = not path.exists()
        atomic_write_bytes(path, blob)
        if fresh:
            self.stats.stores += 1
        if self._manifest is not None:
            self._manifest.record(self._relative(path), len(blob))

    # -- maintenance ---------------------------------------------------

    def adopt_untracked(self) -> int:
        """Re-enter on-disk entries missing from the manifest.

        Concurrent workers over one cache directory write entries
        atomically but save the manifest last-writer-wins; files the
        surviving manifest never saw would escape the byte budget.
        Returns how many entries were adopted.
        """
        if self.cache_dir is None or self._manifest is None:
            return 0
        root = self.cache_dir / "classes"
        adopted = 0
        if not root.is_dir():
            return 0
        for dirpath, _dirnames, filenames in os.walk(root):
            for name in filenames:
                if not name.endswith(".cls"):
                    continue
                path = Path(dirpath) / name
                relative = self._relative(path)
                if relative in self._manifest.entries:
                    continue
                try:
                    size = path.stat().st_size
                except OSError:
                    continue
                self._manifest.record(relative, size)
                adopted += 1
        return adopted

    def flush(self) -> None:
        """Adopt stray entries, enforce the byte budget, persist the
        manifest.  Called at end of run / daemon drain."""
        if self._manifest is None:
            return
        self.adopt_untracked()
        self.stats.evicted += len(self._manifest.prune())
        self._manifest.save()


# One store per (directory, framework, config) per process: the lazy
# VM, the guard propagation, and the pipeline passes of every app in a
# run — or every job through a daemon worker — must share the
# in-memory table for dedup to amortize.
_STORES: dict[tuple, ClassStore] = {}


def class_store(
    cache_dir: str | Path | None,
    *,
    framework_fingerprint: str,
    config_fingerprint: str,
    max_bytes: int | None = None,
) -> ClassStore:
    key = (
        os.path.abspath(os.fspath(cache_dir))
        if cache_dir is not None
        else None,
        framework_fingerprint,
        config_fingerprint,
    )
    store = _STORES.get(key)
    if store is None:
        store = ClassStore(
            cache_dir,
            framework_fingerprint=framework_fingerprint,
            config_fingerprint=config_fingerprint,
            max_bytes=max_bytes,
        )
        _STORES[key] = store
    return store


def registered_stores() -> tuple[ClassStore, ...]:
    """Every store opened by this process (observability)."""
    return tuple(_STORES.values())


def reset_class_stores() -> None:
    """Drop the registry (tests needing cold stores)."""
    _STORES.clear()
