"""Persistent, content-addressed cache layer for incremental runs.

Corpus-scale vetting re-analyzes the same corpora as tools and API
databases evolve; this package makes the *unchanged* part of every
re-run cost near zero.  Three tiers:

* **framework snapshots** (:mod:`.snapshot`) — the materialized
  repository + mined API database serialized once per framework
  fingerprint, loaded by corpus runs and pool-worker initializers
  instead of regenerated;
* **per-app results** (:mod:`.results`) — finalized
  :class:`~repro.eval.runner.AppResult` records keyed by (APK content,
  framework, detector configuration) fingerprints; warm runs are
  fingerprint-identical to cold ones while skipping the analysis;
* **bookkeeping** (:mod:`.manifest`) — versioned schema, atomic
  writes, corruption-as-miss, size-bounded LRU eviction.

Everything is keyed through :mod:`.fingerprint`; nothing in here
affects *what* a run computes, only whether it recomputes it.
"""

from .classes import (
    ClassArtifact,
    ClassStore,
    ClassStoreStats,
    class_store,
)
from .fingerprint import (
    CACHE_SCHEMA_VERSION,
    canonical_json,
    class_key,
    digest_json,
    fingerprint_apk,
    fingerprint_clazz,
    fingerprint_config,
    fingerprint_spec,
    result_key,
)
from .manifest import (
    CacheManifest,
    atomic_write_bytes,
    atomic_write_text,
    shared_manifest,
)
from .results import ResultCache, ResultCacheStats
from .shared import SharedSubstrate, SharedSubstrateHandle
from .snapshot import (
    ensure_snapshot,
    load_or_build_substrate,
    load_snapshot,
    restore_substrate,
    snapshot_path,
    substrate_payload,
    write_snapshot,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheManifest",
    "ClassArtifact",
    "ClassStore",
    "ClassStoreStats",
    "ResultCache",
    "ResultCacheStats",
    "SharedSubstrate",
    "SharedSubstrateHandle",
    "atomic_write_bytes",
    "atomic_write_text",
    "canonical_json",
    "class_key",
    "class_store",
    "digest_json",
    "ensure_snapshot",
    "fingerprint_apk",
    "fingerprint_clazz",
    "fingerprint_config",
    "fingerprint_spec",
    "load_or_build_substrate",
    "load_snapshot",
    "restore_substrate",
    "result_key",
    "shared_manifest",
    "snapshot_path",
    "substrate_payload",
    "write_snapshot",
]
