"""Content fingerprints for the persistent cache.

Every cache key in :mod:`repro.cache` is *content-addressed*: a
SHA-256 digest over a canonical JSON rendering of the thing being
keyed.  Three inputs determine whether a cached analysis result is
still valid, and each gets its own fingerprint:

* the **framework spec** (:func:`fingerprint_spec`) — every class and
  method history, including permissions and call chains, so adding a
  method or shifting an ``introduced`` level invalidates everything
  derived from the framework;
* the **APK content** (:func:`fingerprint_apk`) — the full serialized
  package, so any byte-level change to manifest or dex code is a new
  app as far as the cache is concerned;
* the **detector configuration** (:func:`fingerprint_config`) — which
  tools ran and with which options, so a run with a different tool
  set never sees another configuration's results.

Fingerprints also embed :data:`CACHE_SCHEMA_VERSION`: bumping it
orphans (never corrupts) every existing entry, which is how on-disk
format changes roll out without migration code.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from ..apk.package import Apk
from ..apk.serialization import apk_to_dict
from ..framework.spec import FrameworkSpec

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "canonical_json",
    "digest_json",
    "fingerprint_spec",
    "fingerprint_apk",
    "fingerprint_clazz",
    "fingerprint_config",
    "result_key",
    "class_key",
]

#: Version of every on-disk cache artifact (snapshot pickles, result
#: entries, manifest).  Part of every key: bump to orphan old entries.
CACHE_SCHEMA_VERSION = 1


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace variance."""
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def digest_json(value: Any) -> str:
    """SHA-256 hex digest of the canonical JSON rendering."""
    return hashlib.sha256(canonical_json(value).encode()).hexdigest()


def _method_history_doc(history) -> dict:
    return {
        "name": history.name,
        "descriptor": history.descriptor,
        "introduced": history.introduced,
        "removed": history.removed,
        "callback": history.callback,
        "permissions": sorted(history.permissions),
        "calls": sorted(
            [ref.class_name, ref.name, ref.descriptor]
            for ref in history.calls
        ),
        # Unconditional (not elided when empty): adding the field
        # deliberately rotated every pre-SEM spec digest, so caches
        # written before semantic deltas existed can never be read as
        # current.
        "semantics": [
            [delta.level, delta.change, delta.detail]
            for delta in history.semantics
        ],
    }


# fingerprint_spec walks every method history of the framework, which
# costs a substantial fraction of a warm run's wall time if repeated.
# A FrameworkSpec is immutable after construction, so the digest is
# memoized per instance (keyed by id, with the spec kept referenced so
# the id cannot be recycled).
_SPEC_FINGERPRINTS: dict[int, tuple[FrameworkSpec, str]] = {}


def fingerprint_spec(spec: FrameworkSpec) -> str:
    """Digest of the complete framework revision history."""
    memo = _SPEC_FINGERPRINTS.get(id(spec))
    if memo is not None and memo[0] is spec:
        return memo[1]
    classes = []
    for name in sorted(spec.class_names):
        history = spec.clazz(name)
        classes.append(
            {
                "name": history.name,
                "super": history.super_name,
                "introduced": history.introduced,
                "removed": history.removed,
                "interfaces": list(history.interfaces),
                "methods": [
                    _method_history_doc(m) for m in history.methods
                ],
            }
        )
    digest = digest_json(
        {"schema": CACHE_SCHEMA_VERSION, "classes": classes}
    )
    _SPEC_FINGERPRINTS[id(spec)] = (spec, digest)
    return digest


def fingerprint_apk(apk: Apk) -> str:
    """Digest of the package's full serialized content.

    This is the same document ``save_apk`` writes, so a `.sapk` file
    reloaded byte-identically fingerprints identically, and any edit —
    manifest attribute, instruction, dex layout — is a new key.
    """
    return digest_json(apk_to_dict(apk))


def fingerprint_clazz(clazz) -> str:
    """Digest of one class's full serialized content.

    This is the per-class analogue of :func:`fingerprint_apk`: the
    same document the ``.sapk`` codec writes for the class, so two
    byte-identical classes bundled by different apps share one digest
    (the corpus-dedup property), while any change to a method body,
    flag, or supertype is a new key.

    A :class:`~repro.ir.clazz.Clazz` is immutable after construction,
    and the overlapping-corpus generators share ``Clazz`` instances
    across apps, so the digest is memoized on the instance.
    """
    memo = getattr(clazz, "_content_fingerprint", None)
    if memo is not None:
        return memo
    from ..apk.serialization import _class_to_dict

    digest = digest_json(_class_to_dict(clazz))
    object.__setattr__(clazz, "_content_fingerprint", digest)
    return digest


def fingerprint_config(
    tools: tuple[str, ...], options: dict | None = None
) -> str:
    """Digest of the detector configuration for one run.

    ``tools`` is ordered (the tool set determines which reports an
    :class:`~repro.eval.runner.AppResult` carries and in what
    iteration order); ``options`` holds any detector knobs that change
    findings (ablations, device ranges).
    """
    return digest_json(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "tools": list(tools),
            "options": options or {},
        }
    )


def result_key(
    apk_fingerprint: str,
    framework_fingerprint: str,
    config_fingerprint: str,
) -> str:
    """The cache key of one app's analysis under one configuration."""
    return hashlib.sha256(
        f"{CACHE_SCHEMA_VERSION}:{framework_fingerprint}:"
        f"{config_fingerprint}:{apk_fingerprint}".encode()
    ).hexdigest()


def class_key(
    clazz_fingerprint: str,
    framework_fingerprint: str,
    config_fingerprint: str,
) -> str:
    """The cache key of one class's analysis artifacts.

    Keyed exactly like :func:`result_key` but on the *class* content
    digest: the artifacts record only class-local facts (static call
    targets, constant-resolved loadclass names, SDK-guard rows), so
    they are valid for every app that bundles a byte-identical class
    under the same framework revision and tool configuration.
    """
    return hashlib.sha256(
        f"{CACHE_SCHEMA_VERSION}:{framework_fingerprint}:"
        f"{config_fingerprint}:class:{clazz_fingerprint}".encode()
    ).hexdigest()
