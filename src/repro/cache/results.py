"""Per-app result cache: analyses keyed by what actually determines
them.

An :class:`~repro.eval.runner.AppResult` is a pure function of three
inputs — the APK bytes, the framework the database was mined from, and
the detector configuration — so a corpus re-run over unchanged inputs
can be served entirely from disk.  Entries are JSON documents encoded
with the checkpoint journal's codec, which round-trips every
fingerprint-relevant field: a warm run restored from this cache is
bit-identical (by :meth:`RunResults.fingerprint`) to the cold run that
populated it.

Discipline (shared with the checkpoint journal and snapshots):

* **only clean results are stored** — a failed, quarantined, or
  fault-injected app is never cached, so retries and chaos runs always
  re-analyze (a quarantine decision can never be masked by a stale
  hit);
* **corruption is a miss** — an unreadable, truncated, or
  key-mismatched entry is dropped and re-analyzed, never an error;
* **writes are atomic** and the store is size-bounded: the manifest
  evicts least-recently-used entries past the byte budget.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from .fingerprint import CACHE_SCHEMA_VERSION, result_key
from .manifest import DEFAULT_MAX_BYTES, atomic_write_text, shared_manifest

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from ..eval.runner import AppResult

__all__ = ["ResultCacheStats", "ResultCache"]


@dataclass
class ResultCacheStats:
    """Accounting for one run's traffic against the result store."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    evicted: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "evicted": self.evicted,
            "hit_rate": self.hit_rate,
        }


class ResultCache:
    """Disk store of finalized app results for one configuration.

    One instance is scoped to a (framework fingerprint, detector
    configuration fingerprint) pair; lookups take only the APK content
    fingerprint.  Changing any of the three produces different keys —
    invalidation is structural, not procedural.
    """

    def __init__(
        self,
        cache_dir: str | Path,
        *,
        framework_fingerprint: str,
        config_fingerprint: str,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ) -> None:
        self.cache_dir = Path(cache_dir)
        self.framework_fingerprint = framework_fingerprint
        self.config_fingerprint = config_fingerprint
        self.stats = ResultCacheStats()
        # The manifest is shared with every other store over this
        # directory (class artifacts, framework summaries), so the
        # byte budget bounds their *combined* footprint.
        self._manifest = shared_manifest(
            self.cache_dir,
            max_bytes=max_bytes if max_bytes != DEFAULT_MAX_BYTES else None,
        )

    def _entry_path(self, apk_fingerprint: str) -> Path:
        key = result_key(
            apk_fingerprint,
            self.framework_fingerprint,
            self.config_fingerprint,
        )
        return self.cache_dir / "results" / key[:2] / f"{key}.json"

    def _relative(self, path: Path) -> str:
        return str(path.relative_to(self.cache_dir))

    # -- traffic -------------------------------------------------------

    def get(self, apk_fingerprint: str) -> "AppResult | None":
        """The cached result for these exact inputs, or ``None``."""
        from ..eval.checkpoint import result_from_dict

        path = self._entry_path(apk_fingerprint)
        try:
            doc = json.loads(path.read_text())
        except OSError:
            self.stats.misses += 1
            return None
        except (json.JSONDecodeError, UnicodeDecodeError):
            # Torn or bit-rotted entry: drop it and re-analyze.
            self.stats.corrupt += 1
            self.stats.misses += 1
            path.unlink(missing_ok=True)
            self._manifest.forget(self._relative(path))
            return None
        try:
            if doc.get("version") != CACHE_SCHEMA_VERSION:
                raise ValueError("schema version mismatch")
            _, result = result_from_dict(doc["result"])
        except Exception:
            self.stats.corrupt += 1
            self.stats.misses += 1
            path.unlink(missing_ok=True)
            self._manifest.forget(self._relative(path))
            return None
        self.stats.hits += 1
        self._manifest.touch(self._relative(path))
        result.from_cache = True
        return result

    def put(self, apk_fingerprint: str, result: "AppResult") -> bool:
        """Store one *clean* result; failed results are refused (their
        absence is what forces re-analysis and keeps quarantine
        honest).  Returns whether the entry was written."""
        from ..eval.checkpoint import result_to_dict

        if not result.ok:
            return False
        path = self._entry_path(apk_fingerprint)
        text = json.dumps(
            {
                "version": CACHE_SCHEMA_VERSION,
                # Index 0 is a placeholder: entries are position-free
                # (the same app may sit anywhere in any corpus).
                "result": result_to_dict(0, result),
            }
        )
        atomic_write_text(path, text)
        self.stats.stores += 1
        self._manifest.record(self._relative(path), len(text))
        self.stats.evicted += len(self._manifest.prune())
        return True

    def flush(self) -> None:
        """Persist manifest bookkeeping (call once per run, not per
        entry — the entries themselves are already durable)."""
        self._manifest.save()
