"""Framework snapshots: the substrate serialized once, loaded forever.

Every corpus run (and every pool worker, and every retry round's
fresh pool) needs the same two artifacts before it can analyze its
first app: the :class:`~repro.framework.repository.FrameworkRepository`
and the :class:`~repro.core.apidb.ApiDatabase` mined from it.  Both
are pure functions of the framework spec, so a snapshot materializes
them exactly once and serves every later consumer from disk:

* the snapshot stores the spec, the database (with its prebuilt
  hierarchy/level indexes), and the *key set* of the repository's
  materialized-class cache — a snapshot written after a corpus run
  records every framework class that run touched, and loading
  re-materializes them from the spec (cheaper than unpickling the
  full class graphs), so the next run's CLVM starts warm;
* files are content-addressed by the caller's ``key`` (normally
  :func:`~repro.cache.fingerprint.fingerprint_spec`), embedded in the
  payload and re-checked on load, so a stale file for a different
  framework can never be served;
* a leading SHA-256 checksum guards the pickle: a truncated or
  bit-flipped snapshot fails the checksum and is treated as a miss
  (rebuilt and atomically rewritten), never unpickled, never an error.

Loading also registers the database in :mod:`repro.core.arm`'s
build cache, so a later ``build_api_database(repository)`` over the
loaded spec is a dictionary hit rather than a re-mine.
"""

from __future__ import annotations

import hashlib
import pickle
from pathlib import Path

from ..core.apidb import ApiDatabase
from ..core.arm import build_api_database, cached_database, register_database
from ..framework.generator import materialize_class
from ..framework.repository import FrameworkRepository
from ..framework.spec import FrameworkSpec
from .fingerprint import CACHE_SCHEMA_VERSION, fingerprint_spec
from .manifest import atomic_write_bytes

__all__ = [
    "snapshot_path",
    "substrate_payload",
    "restore_substrate",
    "write_snapshot",
    "ensure_snapshot",
    "load_snapshot",
    "load_or_build_substrate",
]

_CHECKSUM_BYTES = 32


def snapshot_path(cache_dir: str | Path, key: str) -> Path:
    return Path(cache_dir) / "framework" / f"{key}.snapshot"


def substrate_payload(
    framework: FrameworkRepository, apidb: ApiDatabase, key: str
) -> dict:
    """The substrate as one picklable document — the shared
    materialized form used by both disk snapshots and
    :class:`~repro.cache.shared.SharedSubstrate` segments."""
    return {
        "version": CACHE_SCHEMA_VERSION,
        "key": key,
        "spec": framework.spec,
        # Keys only: materialization is a pure function of the
        # spec, and re-running it on load is several times cheaper
        # than unpickling the full class graphs.
        "warm_classes": sorted(framework.export_class_cache()),
        "apidb": apidb,
    }


def restore_substrate(
    doc: object, *, key: str | None = None
) -> tuple[FrameworkRepository, ApiDatabase] | None:
    """Rebuild ``(framework, apidb)`` from a :func:`substrate_payload`
    document; ``None`` on any structural defect or key mismatch."""
    if (
        not isinstance(doc, dict)
        or doc.get("version") != CACHE_SCHEMA_VERSION
        or (key is not None and doc.get("key") != key)
        or not isinstance(doc.get("spec"), FrameworkSpec)
        or not isinstance(doc.get("apidb"), ApiDatabase)
    ):
        return None
    framework = FrameworkRepository(doc["spec"])
    framework.preload_class_cache(
        {
            (level, name): materialize_class(doc["spec"], name, level)
            for level, name in doc.get("warm_classes") or ()
        }
    )
    apidb = doc["apidb"]
    apidb.reset_cache_counters()
    register_database(framework.spec, apidb)
    return framework, apidb


def write_snapshot(
    cache_dir: str | Path,
    key: str,
    framework: FrameworkRepository,
    apidb: ApiDatabase,
) -> Path:
    """Serialize the substrate under ``key``; returns the file path."""
    payload = pickle.dumps(
        substrate_payload(framework, apidb, key),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    path = snapshot_path(cache_dir, key)
    atomic_write_bytes(
        path, hashlib.sha256(payload).digest() + payload
    )
    return path


def ensure_snapshot(
    cache_dir: str | Path,
    framework: FrameworkRepository,
    apidb: ApiDatabase,
    *,
    key: str | None = None,
) -> Path:
    """Write the snapshot for ``framework`` unless one already exists;
    returns its path either way."""
    key = key or fingerprint_spec(framework.spec)
    path = snapshot_path(cache_dir, key)
    if not path.exists():
        return write_snapshot(cache_dir, key, framework, apidb)
    return path


def load_snapshot(
    path: str | Path, *, key: str | None = None
) -> tuple[FrameworkRepository, ApiDatabase] | None:
    """Load a snapshot; ``None`` on any defect (missing, truncated,
    checksum mismatch, version/key mismatch) — a miss, never an error.
    """
    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError:
        return None
    if len(blob) <= _CHECKSUM_BYTES:
        return None
    digest, payload = blob[:_CHECKSUM_BYTES], blob[_CHECKSUM_BYTES:]
    if hashlib.sha256(payload).digest() != digest:
        return None
    try:
        doc = pickle.loads(payload)
    except Exception:  # pragma: no cover — checksum already gates this
        return None
    return restore_substrate(doc, key=key)


def load_or_build_substrate(
    cache_dir: str | Path | None,
    spec: FrameworkSpec,
    *,
    key: str | None = None,
) -> tuple[FrameworkRepository, ApiDatabase, str]:
    """The substrate for ``spec``, from the snapshot store when
    possible.

    Returns ``(framework, apidb, source)`` where ``source`` is
    ``"snapshot"`` (served from disk), ``"built"`` (mined now and — if
    a cache directory was given — snapshotted for the next caller), or
    ``"memory"`` (the in-process build cache already had it, so disk
    was not consulted).
    """
    cached = cached_database(spec)
    if cached is not None:
        # Already mined in this process (or inherited over fork):
        # cheaper than any disk read.
        return FrameworkRepository(spec), cached, "memory"
    if cache_dir is None:
        framework = FrameworkRepository(spec)
        return framework, build_api_database(framework), "built"
    key = key or fingerprint_spec(spec)
    loaded = load_snapshot(snapshot_path(cache_dir, key), key=key)
    if loaded is not None:
        return loaded[0], loaded[1], "snapshot"
    framework = FrameworkRepository(spec)
    apidb = build_api_database(framework)
    write_snapshot(cache_dir, key, framework, apidb)
    return framework, apidb, "built"
