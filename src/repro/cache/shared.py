"""Shared substrate segments: serialize once per machine, attach everywhere.

The parallel engine's workers all need the same immutable substrate
(framework spec + API database + warm-class key set).  Under the fork
start method they inherit the parent's built objects for free; on
spawn platforms — and for any process that cannot inherit — this
module publishes the substrate **once** into a
:mod:`multiprocessing.shared_memory` segment and lets every worker
(including the fresh pools of later retry rounds) *attach* instead of
re-reading and re-mining:

* the payload is pickled with **protocol 5** and out-of-band buffers
  (:class:`pickle.PickleBuffer`): any buffer-backed data in the
  substrate is written to the segment once and reconstructed in the
  attaching process as memoryviews over the shared pages — zero-copy.
  (Pure-Python object graphs — most of the spec and database — still
  materialize per process on attach; what the segment guarantees is
  one serialization and no per-worker disk or re-mining cost.  The
  honest accounting lives in docs/cost-model.md.)
* when shared memory is unavailable (or creation fails), the same
  bytes go to a read-only temp file attached via ``mmap`` — identical
  layout, identical handle API;
* the segment is **content-guarded**: a magic header plus the
  caller's substrate key are embedded and re-checked on attach, so a
  stale or foreign segment is a miss (``None``), never an error;
* cleanup is **guaranteed**: the publishing process unlinks the
  segment on ``close()``, on context-manager exit, and — covering
  SIGINT/exception paths — via an ``atexit`` guard.  Attaching
  processes never unlink; a worker dying mid-chunk therefore cannot
  take the segment away from its siblings, and an interrupted run
  cannot leak ``/dev/shm`` entries past interpreter exit.
"""

from __future__ import annotations

import atexit
import mmap
import os
import pickle
import signal
import struct
import tempfile
import threading
import weakref
from dataclasses import dataclass

__all__ = ["SharedSubstrateHandle", "SharedSubstrate"]

_MAGIC = b"RSUBSTR1"
_LEN = struct.Struct("<Q")

try:  # pragma: no cover — present on every supported platform
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover
    _shm = None


# -- signal-driven cleanup --------------------------------------------------
#
# atexit covers normal interpreter exit and KeyboardInterrupt, but a
# plain SIGTERM (the way schedulers and `kill` stop a run) terminates
# the process WITHOUT unwinding Python at all — no finally blocks, no
# atexit, and therefore a leaked /dev/shm segment.  The first owned
# segment installs a SIGTERM guard (only when nobody else claimed the
# signal) that unlinks every live owned segment and then re-raises the
# default SIGTERM so exit semantics stay unchanged.

_OWNED_SEGMENTS: "weakref.WeakSet[SharedSubstrate]" = weakref.WeakSet()
_SIGTERM_GUARD_INSTALLED = False


def _close_owned_segments() -> None:
    """Unlink every live segment *this process* owns.  Fork children
    inherit the registry but must never unlink the parent's segments —
    the owner pid check is what keeps a SIGTERM'd worker from taking
    the substrate away from its siblings."""
    for segment in list(_OWNED_SEGMENTS):
        if segment._owner_pid != os.getpid():
            continue
        try:
            segment.close(unlink=True)
        except Exception:  # noqa: BLE001 — best-effort from a handler
            pass


def _sigterm_guard(signum, frame):  # pragma: no cover — signal path
    _close_owned_segments()
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    os.kill(os.getpid(), signal.SIGTERM)


def _install_sigterm_guard() -> None:
    global _SIGTERM_GUARD_INSTALLED
    if _SIGTERM_GUARD_INSTALLED:
        return
    if threading.current_thread() is not threading.main_thread():
        # signal.signal is main-thread-only; a daemon publishing from
        # a worker thread installs its own drain handler instead.
        return
    try:
        existing = signal.getsignal(signal.SIGTERM)
        if existing not in (signal.SIG_DFL, None):
            # Someone (the serve daemon, a test harness) already owns
            # shutdown; their handler is responsible for cleanup.
            return
        signal.signal(signal.SIGTERM, _sigterm_guard)
        _SIGTERM_GUARD_INSTALLED = True
    except (ValueError, OSError):  # pragma: no cover — exotic hosts
        pass


@dataclass(frozen=True)
class SharedSubstrateHandle:
    """Everything a worker needs to attach: transport, address, key.

    Picklable by design — it rides in the pool initializer args.
    """

    kind: str  # "shm" | "file"
    name: str  # segment name (shm) or file path (file)
    key: str   # substrate fingerprint, re-checked on attach


def _encode(payload: dict, key: str) -> bytes:
    """Lay the payload out as one self-describing blob:
    ``magic | len(index) | index | pickle | buffer₀ | buffer₁ | …``
    where the index records the key and every section length."""
    buffers: list[pickle.PickleBuffer] = []
    obj = pickle.dumps(
        payload, protocol=5, buffer_callback=buffers.append
    )
    raws = [bytes(b.raw()) for b in buffers]
    index = pickle.dumps(
        {
            "key": key,
            "obj_len": len(obj),
            "buf_lens": [len(raw) for raw in raws],
        }
    )
    return b"".join(
        (_MAGIC, _LEN.pack(len(index)), index, obj, *raws)
    )


def _decode(view: memoryview, key: str | None) -> dict | None:
    """Reverse :func:`_encode` over a (possibly shared) buffer;
    ``None`` on any defect — a miss, never an error."""
    try:
        if bytes(view[: len(_MAGIC)]) != _MAGIC:
            return None
        offset = len(_MAGIC)
        (index_len,) = _LEN.unpack(
            bytes(view[offset:offset + _LEN.size])
        )
        offset += _LEN.size
        index = pickle.loads(bytes(view[offset:offset + index_len]))
        offset += index_len
        if key is not None and index.get("key") != key:
            return None
        obj_len = index["obj_len"]
        obj = bytes(view[offset:offset + obj_len])
        offset += obj_len
        buffers = []
        for buf_len in index["buf_lens"]:
            # Memoryviews straight into the shared mapping: the
            # attach-side zero-copy path.
            buffers.append(view[offset:offset + buf_len])
            offset += buf_len
        return pickle.loads(obj, buffers=buffers)
    except Exception:  # noqa: BLE001 — corrupt segment == miss
        return None


class SharedSubstrate:
    """One published (or attached) substrate segment.

    The *publisher* owns the segment's lifetime: ``close(unlink=True)``
    — also run by the context manager and an ``atexit`` guard —
    removes it from the system.  *Attachers* merely map it; their
    ``close()`` drops the mapping and never unlinks.
    """

    def __init__(
        self,
        handle: SharedSubstrateHandle,
        *,
        owner: bool,
        segment=None,
        mapping=None,
        fileobj=None,
    ) -> None:
        self.handle = handle
        self._owner = owner
        self._owner_pid = os.getpid() if owner else -1
        self._segment = segment
        self._mapping = mapping
        self._fileobj = fileobj
        self._closed = False
        if owner:
            atexit.register(self._atexit_close)
            _OWNED_SEGMENTS.add(self)
            _install_sigterm_guard()

    # -- publishing ----------------------------------------------------

    @classmethod
    def publish(
        cls, payload: dict, key: str, *, prefer_shm: bool = True
    ) -> "SharedSubstrate":
        """Serialize ``payload`` once for the whole machine; returns
        the owning segment (shared memory when available, a read-only
        mmap-backed temp file otherwise)."""
        blob = _encode(payload, key)
        if prefer_shm and _shm is not None:
            try:
                segment = _shm.SharedMemory(create=True, size=len(blob))
                segment.buf[: len(blob)] = blob
                handle = SharedSubstrateHandle(
                    kind="shm", name=segment.name, key=key
                )
                return cls(handle, owner=True, segment=segment)
            except (OSError, ValueError):
                pass  # /dev/shm full or unavailable: fall through
        fd, path = tempfile.mkstemp(
            prefix="repro-substrate-", suffix=".seg"
        )
        with os.fdopen(fd, "wb") as fh:
            fh.write(blob)
        handle = SharedSubstrateHandle(kind="file", name=path, key=key)
        return cls(handle, owner=True)

    # -- attaching -----------------------------------------------------

    @classmethod
    def attach(
        cls, handle: SharedSubstrateHandle
    ) -> "SharedSubstrate | None":
        """Map an existing segment; ``None`` when it is gone or does
        not carry ``handle.key`` (callers fall back to the snapshot
        file or a fresh build)."""
        try:
            if handle.kind == "shm":
                if _shm is None:
                    return None
                segment = _attach_untracked(handle.name)
                return cls(handle, owner=False, segment=segment)
            fileobj = open(handle.name, "rb")
            mapping = mmap.mmap(
                fileobj.fileno(), 0, access=mmap.ACCESS_READ
            )
            return cls(
                handle, owner=False, mapping=mapping, fileobj=fileobj
            )
        except (OSError, ValueError, FileNotFoundError):
            return None

    def payload(self) -> dict | None:
        """Decode the substrate payload (key re-checked); ``None`` on
        any corruption.  The returned object graph may reference the
        shared pages — keep this segment open for as long as the
        payload is in use."""
        if self._closed:
            return None
        if self._segment is not None:
            view = memoryview(self._segment.buf)
        elif self._mapping is not None:
            view = memoryview(self._mapping)
        else:  # pragma: no cover — constructor invariant
            return None
        return _decode(view, self.handle.key)

    # -- lifecycle -----------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, *, unlink: bool | None = None) -> None:
        """Drop the mapping; the owner also unlinks (removes) the
        segment.  Idempotent — safe from ``finally`` blocks, the
        context manager, and the ``atexit`` guard together."""
        if self._closed:
            return
        self._closed = True
        if unlink is None:
            unlink = self._owner
        if self._segment is not None:
            try:
                self._segment.close()
            except OSError:  # pragma: no cover
                pass
            if unlink:
                try:
                    self._segment.unlink()
                except (OSError, FileNotFoundError):
                    pass
        if self._mapping is not None:
            try:
                self._mapping.close()
            except OSError:  # pragma: no cover
                pass
        if self._fileobj is not None:
            try:
                self._fileobj.close()
            except OSError:  # pragma: no cover
                pass
        if self.handle.kind == "file" and unlink:
            try:
                os.unlink(self.handle.name)
            except OSError:
                pass

    def _atexit_close(self) -> None:
        # SIGINT raises KeyboardInterrupt, which still unwinds through
        # interpreter exit — this guard is what keeps an interrupted
        # corpus run from leaking /dev/shm segments.  (SIGTERM never
        # reaches atexit; that path is the module-level signal guard.)
        if self._owner_pid != os.getpid():
            # A fork child inherited the registration; the segment
            # belongs to the parent.
            return
        self.close(unlink=True)

    def __enter__(self) -> "SharedSubstrate":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _attach_untracked(name: str):
    """Open an existing segment WITHOUT registering it with the
    resource tracker: the publisher owns the unlink, and a second
    registration (the tracker keeps a set, not a refcount) would make
    it spuriously complain — and double-unlink — at exit."""
    try:
        # Python ≥ 3.13 supports opting out directly.
        return _shm.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def _skip_shm(res_name, rtype):
        if rtype != "shared_memory":
            original(res_name, rtype)

    resource_tracker.register = _skip_shm
    try:
        return _shm.SharedMemory(name=name)
    finally:
        resource_tracker.register = original
