"""Cache bookkeeping: the manifest and atomic on-disk writes.

The manifest is a small JSON document at ``<cache_dir>/manifest.json``
recording the schema version and one row per stored artifact (size,
last-touch timestamp).  It exists for two jobs:

* **invalidation by version** — a manifest written by a different
  schema version marks the whole directory stale; entries are simply
  ignored (re-created on demand), never migrated;
* **size-bounded eviction** — :meth:`CacheManifest.prune` drops the
  least-recently-touched entries until the cache fits its byte
  budget, so a long-lived cache directory cannot grow without bound.

Like the checkpoint journal, the manifest is corruption-tolerant: an
unreadable or truncated manifest is treated as empty and rebuilt by
scanning the directory, because losing bookkeeping must never lose a
run.  All writes go through :func:`atomic_write_bytes` (temp file +
``os.replace``), so a crash mid-write leaves either the old artifact
or the new one, never a torn file.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from .fingerprint import CACHE_SCHEMA_VERSION

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "CacheManifest",
    "shared_manifest",
]

#: Default byte budget for the result-entry store (framework
#: snapshots are few and excluded from eviction).
DEFAULT_MAX_BYTES = 512 * 1024 * 1024


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` so that ``path`` is never observed torn."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    tmp.write_bytes(data)
    os.replace(tmp, path)


def atomic_write_text(path: Path, text: str) -> None:
    atomic_write_bytes(path, text.encode())


class CacheManifest:
    """Versioned bookkeeping over one cache directory."""

    FILENAME = "manifest.json"

    def __init__(
        self, cache_dir: str | Path, *, max_bytes: int = DEFAULT_MAX_BYTES
    ) -> None:
        self.cache_dir = Path(cache_dir)
        self.path = self.cache_dir / self.FILENAME
        self.max_bytes = max_bytes
        #: relative path -> {"size": int, "touched": float}
        self.entries: dict[str, dict] = {}
        self._load()

    # -- persistence ---------------------------------------------------

    def _load(self) -> None:
        try:
            doc = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            # Missing, truncated, or corrupt: start empty.  Entries on
            # disk are still usable (they self-validate); they re-enter
            # the manifest as they are touched.
            self.entries = {}
            return
        if not isinstance(doc, dict) or (
            doc.get("version") != CACHE_SCHEMA_VERSION
        ):
            self.entries = {}
            return
        entries = doc.get("entries")
        self.entries = dict(entries) if isinstance(entries, dict) else {}

    def save(self) -> None:
        atomic_write_text(
            self.path,
            json.dumps(
                {
                    "version": CACHE_SCHEMA_VERSION,
                    "entries": self.entries,
                },
                sort_keys=True,
            ),
        )

    # -- bookkeeping ---------------------------------------------------

    def record(self, relative: str, size: int) -> None:
        """Note that ``relative`` was just written (or served)."""
        self.entries[relative] = {
            "size": int(size), "touched": time.time()
        }

    def touch(self, relative: str) -> None:
        entry = self.entries.get(relative)
        if entry is not None:
            entry["touched"] = time.time()

    def forget(self, relative: str) -> None:
        self.entries.pop(relative, None)

    @property
    def total_bytes(self) -> int:
        return sum(entry.get("size", 0) for entry in self.entries.values())

    def prune(self) -> list[str]:
        """Evict least-recently-touched entries until the byte budget
        holds; returns the relative paths removed."""
        evicted: list[str] = []
        if self.total_bytes <= self.max_bytes:
            return evicted
        by_age = sorted(
            self.entries.items(),
            key=lambda item: item[1].get("touched", 0.0),
        )
        for relative, entry in by_age:
            if self.total_bytes <= self.max_bytes:
                break
            target = self.cache_dir / relative
            try:
                target.unlink(missing_ok=True)
            except OSError:
                pass  # eviction is best-effort; bookkeeping still drops it
            self.entries.pop(relative, None)
            evicted.append(relative)
        return evicted

    def sizes_by_store(self) -> dict[str, dict]:
        """Entry counts and byte totals grouped by top-level store
        directory (``results``, ``classes``, ``summaries``, …) — the
        observability view behind the daemon's ``/statsz``."""
        stores: dict[str, dict] = {}
        for relative, entry in self.entries.items():
            prefix = relative.split("/", 1)[0]
            bucket = stores.setdefault(prefix, {"entries": 0, "bytes": 0})
            bucket["entries"] += 1
            bucket["bytes"] += entry.get("size", 0)
        return stores


# One cache directory holds several artifact stores (per-app results,
# per-class artifacts, framework summary tables) that must share one
# byte budget: two CacheManifest instances over the same directory
# would clobber each other's rows on save, and an unshared store's
# bytes would escape the LRU bound entirely.  The registry hands every
# store over one directory the same manifest object.
_SHARED_MANIFESTS: dict[str, CacheManifest] = {}


def shared_manifest(
    cache_dir: str | Path, *, max_bytes: int | None = None
) -> CacheManifest:
    """The process-wide :class:`CacheManifest` for ``cache_dir``.

    ``max_bytes`` tightens (or relaxes) the budget of an existing
    instance when given explicitly; ``None`` keeps whatever the first
    opener configured (the default 512MB bound).
    """
    key = os.path.abspath(os.fspath(cache_dir))
    manifest = _SHARED_MANIFESTS.get(key)
    if manifest is None:
        manifest = CacheManifest(
            cache_dir,
            max_bytes=(
                max_bytes if max_bytes is not None else DEFAULT_MAX_BYTES
            ),
        )
        _SHARED_MANIFESTS[key] = manifest
    elif max_bytes is not None:
        manifest.max_bytes = max_bytes
    return manifest


def _reset_shared_manifests() -> None:
    """Drop the registry (tests re-opening directories cold)."""
    _SHARED_MANIFESTS.clear()
