"""Ground-truth records for seeded workloads.

Every synthetic app carries a :class:`GroundTruth`: the set of *true*
compatibility issues planted in it (identified by the same stable keys
detectors emit) plus the set of *traps* — code patterns that are not
issues but are expected to draw false alarms from tools with specific
weaknesses.  Traits on each record name the mechanism, so evaluation
output can explain *why* a tool missed or over-reported.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from ..ir.types import MethodRef

__all__ = [
    "Trait",
    "SeededIssue",
    "SeededTrap",
    "GroundTruth",
    "key_to_json",
    "key_from_json",
]


class Trait(enum.Enum):
    """Mechanism tags for seeded issues and traps."""

    #: Unguarded call to a newer API, framework receiver, app package.
    DIRECT = "direct"
    #: API reached through an app subclass receiver (inheritance).
    INHERITED = "inherited"
    #: Issue lives in bundled third-party library namespace.
    LIBRARY = "library"
    #: Issue lives in a secondary (late-bound) dex file.
    SECONDARY_DEX = "secondary-dex"
    #: Issue lives in externally loaded code absent from the APK.
    EXTERNAL_DYNAMIC = "external-dynamic"
    #: Call to an API removed in a later level (forward compatibility).
    FORWARD_REMOVED = "forward-removed"
    #: Callback on one of CIDER's four modeled classes.
    CALLBACK_MODELED = "callback-modeled"
    #: Callback on any other framework class.
    CALLBACK_UNMODELED = "callback-unmodeled"
    #: Callback override declared inside an anonymous inner class.
    CALLBACK_ANONYMOUS = "callback-anonymous"
    #: Runtime-permission request protocol not implemented.
    PERMISSION_REQUEST = "permission-request"
    #: Install-time permissions revocable on ≥23 devices.
    PERMISSION_REVOCATION = "permission-revocation"
    #: Permission requirement only visible transitively (deep in ADF).
    PERMISSION_DEEP = "permission-deep"
    #: Unguarded call to an API with a behavior-only (semantic) delta.
    SEMANTIC = "semantic"
    # -- trap mechanisms ------------------------------------------------
    #: Guard in the caller protects an API call in a callee.
    TRAP_CALLER_GUARD = "trap-caller-guard"
    #: The SDK check lives in a boolean helper method
    #: (``VersionUtils.isAtLeastM()``); only summary-aware analyses
    #: see through it.
    TRAP_HELPER_GUARD = "trap-helper-guard"
    #: Guarded allocation of an anonymous class whose method calls the
    #: new API (safe by construction; invisible to SAINTDroid).
    TRAP_ANONYMOUS_GUARD = "trap-anonymous-guard"
    #: Correctly guarded direct call (baseline sanity pattern).
    TRAP_GUARDED_DIRECT = "trap-guarded-direct"
    #: API call behind a constant-false data branch: statically
    #: reachable (the interval analysis does not constant-fold data
    #: guards), dynamically dead.  A static false alarm *by design* —
    #: the differential oracle treats it as an expected disagreement.
    TRAP_DEAD_CODE = "trap-dead-code"
    #: Call to a delta-carrying API correctly SDK-guarded onto the
    #: target's side of the delta (no finding, no crash).
    TRAP_GUARDED_SEMANTIC = "trap-guarded-semantic"


@dataclass(frozen=True)
class SeededIssue:
    """A true compatibility issue planted in an app.

    ``key`` matches :attr:`repro.core.mismatch.Mismatch.key` exactly,
    so scoring is set arithmetic on keys.
    """

    key: tuple
    kind: str
    trait: Trait
    description: str = ""


@dataclass(frozen=True)
class SeededTrap:
    """A non-issue pattern expected to trigger false alarms.

    ``fp_keys`` lists the mismatch keys a confused tool would emit;
    anything a tool reports outside the true-issue set counts as a
    false positive regardless, but recording the expected keys lets
    tests assert the *mechanism*, not just the count.
    """

    fp_keys: tuple[tuple, ...]
    trait: Trait
    description: str = ""


@dataclass
class GroundTruth:
    """All seeded facts for one app."""

    app: str
    issues: list[SeededIssue] = field(default_factory=list)
    traps: list[SeededTrap] = field(default_factory=list)

    @property
    def issue_keys(self) -> frozenset:
        return frozenset(issue.key for issue in self.issues)

    def issues_of_kind(self, kind: str) -> tuple[SeededIssue, ...]:
        return tuple(i for i in self.issues if i.kind == kind)

    def issues_with_trait(self, trait: Trait) -> tuple[SeededIssue, ...]:
        return tuple(i for i in self.issues if i.trait is trait)

    def traps_with_trait(self, trait: Trait) -> tuple[SeededTrap, ...]:
        return tuple(t for t in self.traps if t.trait is trait)

    def merge(self, other: "GroundTruth") -> None:
        if other.app != self.app:
            raise ValueError(
                f"cannot merge ground truth of {other.app} into {self.app}"
            )
        self.issues.extend(other.issues)
        self.traps.extend(other.traps)

    # -- JSON round-trip (used by the CLI's gen-bench output) ----------

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "issues": [
                {
                    "key": key_to_json(issue.key),
                    "kind": issue.kind,
                    "trait": issue.trait.value,
                    "description": issue.description,
                }
                for issue in self.issues
            ],
            "traps": [
                {
                    "fpKeys": [key_to_json(k) for k in trap.fp_keys],
                    "trait": trap.trait.value,
                    "description": trap.description,
                }
                for trap in self.traps
            ],
        }

    @staticmethod
    def from_dict(doc: dict) -> "GroundTruth":
        truth = GroundTruth(app=doc["app"])
        for issue in doc.get("issues", ()):
            truth.issues.append(
                SeededIssue(
                    key=key_from_json(issue["key"]),
                    kind=issue["kind"],
                    trait=Trait(issue["trait"]),
                    description=issue.get("description", ""),
                )
            )
        for trap in doc.get("traps", ()):
            truth.traps.append(
                SeededTrap(
                    fp_keys=tuple(
                        key_from_json(k) for k in trap.get("fpKeys", ())
                    ),
                    trait=Trait(trap["trait"]),
                    description=trap.get("description", ""),
                )
            )
        return truth


def key_to_json(key: tuple) -> list[Any]:
    """Encode a mismatch key as JSON-safe data."""
    out: list[Any] = []
    for part in key:
        if isinstance(part, MethodRef):
            out.append({"m": [part.class_name, part.name, part.descriptor]})
        elif isinstance(part, tuple):
            out.append({"t": list(part)})
        else:
            out.append(part)
    return out


def key_from_json(data: list[Any]) -> tuple:
    """Decode :func:`key_to_json` output."""
    out: list[Any] = []
    for part in data:
        if isinstance(part, dict) and "m" in part:
            out.append(MethodRef(*part["m"]))
        elif isinstance(part, dict) and "t" in part:
            out.append(tuple(part["t"]))
        else:
            out.append(part)
    return tuple(out)
