"""Synthetic real-world corpus (RQ2 substitute for F-Droid + AndroZoo).

The paper analyzes 3,571 real-world apps and reports population
statistics; we generate a stochastic population whose *rates* are
calibrated to those numbers, with per-app ground truth retained:

* 41.19% of apps harbor ≥1 (potential) API invocation mismatch, with
  68,268 total reports over 3,571 apps — flagged apps typically carry
  dozens of sites (an outdated bundled library is one bad class away
  from fifty findings);
* ≈15% of API reports are false alarms (sampled precision 85%),
  modeled by mixing anonymous-guard traps in proportion;
* 20.05% of apps carry API callback mismatches, ≈3 per flagged app;
* 1,815 apps target API ≥23 and 12.34% of them have a permission
  *request* mismatch; 1,756 target ≤22 and 68.68% of them are open to
  permission *revocation*;
* sizes follow a log-normal-ish distribution up to ~80 KDex-LOC, plus
  rare "library-heavy" outliers: small apps that drag in a huge
  framework surface (the top-left outlier in the paper's Figure 3).

Apps are produced lazily (generator) so arbitrarily large corpora can
stream through an analysis without holding every APK in memory.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator

from ..core.apidb import ApiDatabase
from ..core.arm import build_api_database
from .appgen import ApiPicker, AppForge, ForgedApp

__all__ = ["CorpusConfig", "CorpusApp", "generate_corpus",
           "OverlapConfig", "generate_overlapping_corpus",
           "PAPER_CORPUS_SIZE"]

#: The paper's corpus size after exclusions (section IV-A).
PAPER_CORPUS_SIZE = 3571


@dataclass(frozen=True)
class CorpusConfig:
    """Calibration knobs; defaults reproduce the paper's RQ2 rates."""

    count: int = PAPER_CORPUS_SIZE
    #: Default seed chosen so the default 150-app *sample* also lands
    #: near the paper's population rates (any seed converges at scale).
    seed: int = 1234567
    #: Fraction of apps targeting API >= 23 (1,815 / 3,571).
    modern_target_fraction: float = 1815 / 3571
    #: P(app has >= 1 API invocation issue).  Slightly above the
    #: paper's observed 41.19% because a few percent of draws find no
    #: API fitting the app's SDK window and seed nothing.
    api_flagged_fraction: float = 0.435
    #: Mean seeded API sites per flagged app (68,268 / (0.4119*3,571)).
    api_sites_mean: float = 46.4
    #: Anonymous-trap sites per true site (≈15% FP share in reports).
    api_trap_ratio: float = 0.18
    #: P(app has >= 1 callback issue), compensated as above
    #: (paper observed: 20.05%).
    apc_flagged_fraction: float = 0.23
    #: Mean callback issues per flagged app (2,115 / (0.2005*3,571)).
    apc_sites_mean: float = 2.95
    #: P(permission request mismatch | target >= 23).
    prm_request_fraction: float = 0.1234
    #: P(permission revocation mismatch | target <= 22).
    prm_revocation_fraction: float = 0.6868
    #: P(protocol implemented | modern target, no request mismatch).
    protocol_adoption: float = 0.45
    #: P(an app is a library-heavy outlier).
    outlier_fraction: float = 0.004
    #: Median / sigma of the log-normal size distribution (KLOC).
    kloc_median: float = 10.0
    kloc_sigma: float = 0.85
    kloc_max: float = 80.0


@dataclass
class CorpusApp:
    """One corpus member plus its sampling metadata."""

    forged: ForgedApp
    index: int
    modern_target: bool
    outlier: bool

    @property
    def apk(self):
        return self.forged.apk

    @property
    def truth(self):
        return self.forged.truth


def _poisson_like(rng: random.Random, mean: float) -> int:
    """Geometric-ish positive count with the requested mean (>=1)."""
    if mean <= 1.0:
        return 1
    # Exponential rounding keeps the tail long, like real libraries.
    value = int(rng.expovariate(1.0 / (mean - 1.0))) + 1
    return max(1, value)


def generate_corpus(
    config: CorpusConfig | None = None,
    apidb: ApiDatabase | None = None,
) -> Iterator[CorpusApp]:
    """Yield ``config.count`` calibrated apps, deterministically."""
    config = config or CorpusConfig()
    apidb = apidb or build_api_database()
    picker = ApiPicker(apidb)
    rng = random.Random(config.seed)

    for index in range(config.count):
        modern = rng.random() < config.modern_target_fraction
        if modern:
            target = rng.randint(23, 29)
        else:
            target = rng.randint(15, 22)
        min_sdk = max(5, target - rng.randint(3, 14))

        outlier = rng.random() < config.outlier_fraction
        kloc = min(
            config.kloc_max,
            config.kloc_median
            * math.exp(rng.gauss(0.0, config.kloc_sigma)),
        )
        if outlier:
            kloc = min(kloc, 4.0)  # tiny app, huge library surface

        forge = AppForge(
            f"app.generated.a{index}",
            f"corpus-{index:05d}",
            min_sdk=min_sdk,
            target_sdk=target,
            seed=config.seed * 1_000_003 + index,
            apidb=apidb,
            picker=picker,
        )
        if outlier:
            # A game-engine style app: little own code, a very wide
            # framework vocabulary (drags many classes into analysis).
            forge._safe_pool = [
                picker.safe_api(forge._rng) for _ in range(400)
            ]

        # -- API invocation issues -------------------------------------
        if rng.random() < config.api_flagged_fraction:
            sites = _poisson_like(rng, config.api_sites_mean)
            for _ in range(sites):
                roll = rng.random()
                try:
                    if roll < 0.42:
                        forge.add_direct_issue()
                    elif roll < 0.78:
                        forge.add_library_issue()
                    elif roll < 0.94:
                        forge.add_inherited_issue()
                    else:
                        forge.add_forward_removed_issue()
                except LookupError:
                    # No API matches this app's narrow SDK window for
                    # the drawn mechanism; skip the site.
                    continue
            # Late-bound and external code is an app-level property —
            # only some apps ship plugins — not a per-site lottery
            # (it also crashes CID's loader, which should stay rare).
            if rng.random() < 0.08:
                for _ in range(rng.randint(1, 2)):
                    try:
                        forge.add_secondary_dex_issue()
                    except LookupError:
                        break
            if rng.random() < 0.05:
                try:
                    forge.add_external_dynamic_issue()
                except LookupError:
                    pass
            traps = int(round(sites * config.api_trap_ratio))
            for _ in range(traps):
                try:
                    forge.add_anonymous_guard_trap()
                except LookupError:
                    continue
        # Benign guard patterns appear everywhere, flagged or not.
        for _ in range(rng.randint(0, 2)):
            try:
                forge.add_guarded_direct()
            except LookupError:
                break
        if rng.random() < 0.25:
            try:
                forge.add_helper_guard_trap()
            except LookupError:
                pass

        # -- callback issues ---------------------------------------------
        if rng.random() < config.apc_flagged_fraction:
            for _ in range(_poisson_like(rng, config.apc_sites_mean)):
                roll = rng.random()
                try:
                    forge.add_callback_issue(
                        modeled=roll < 0.25,
                        anonymous=roll > 0.95,
                    )
                except LookupError:
                    try:
                        forge.add_callback_issue(modeled=False)
                    except LookupError:
                        continue

        # -- permission issues ----------------------------------------------
        if modern:
            if rng.random() < config.prm_request_fraction:
                deep = rng.random() < 0.2
                forge.add_permission_request_issue(deep=deep)
            elif rng.random() < config.protocol_adoption:
                forge.implement_permission_protocol()
        else:
            if rng.random() < config.prm_revocation_fraction:
                deep = rng.random() < 0.2
                forge.add_permission_revocation_issue(deep=deep)

        forge.add_filler(kloc=kloc)
        yield CorpusApp(
            forged=forge.build(),
            index=index,
            modern_target=modern,
            outlier=outlier,
        )


# -- overlapping corpora (class-level dedup workloads) -------------------
#
# Real corpora overwhelmingly share code: common libraries and SDK
# scaffolding dominate each APK, so two apps usually differ by a thin
# app-specific layer over an identical bundled-library bulk.  The
# calibrated corpus above deliberately makes every app unique (its
# filler lives under the app's own package); this generator instead
# models the library-dominated shape so the ``--dedup`` class-artifact
# store has something real to deduplicate: one shared library embedded
# in every member plus a small per-app unique layer.  Crucially the
# library is *re-forged per member* from the same seed — byte-identical
# content, hence identical class digests, but distinct
# :class:`~repro.ir.clazz.Clazz` objects per app, exactly as parsing
# the same bundled dex out of N different APKs would produce.  Sharing
# the objects instead would let object-keyed memos inside a single
# process smuggle work across apps and flatter the non-dedup baseline.


@dataclass(frozen=True)
class OverlapConfig:
    """Shape knobs for a library-dominated corpus."""

    count: int = 8
    seed: int = 424243
    #: Shared-library size (thousand instructions) — the deduplicated
    #: bulk every member embeds verbatim.
    library_kloc: float = 12.0
    #: Per-app unique code size (thousand instructions).
    unique_kloc: float = 2.0
    #: Straight-line instructions per filler method — realistic dex is
    #: call-sparse, and the ratio matters here: delta analysis replays
    #: recorded call effects without rescanning method bodies, so the
    #: interior instruction count is exactly the work a warm hit skips.
    filler_interior: int = 24
    #: Version-guarded library scenarios, so the store's guard-row
    #: cache is exercised, not just explore-effect replay.
    library_guards: int = 3
    #: Per-app seeded API issues (unique-layer findings).
    app_issues: int = 2
    #: One SDK window for every member: identical entry intervals keep
    #: guard-row contexts shareable across the corpus.
    min_sdk: int = 16
    target_sdk: int = 26


def _build_shared_library(
    config: OverlapConfig, apidb: ApiDatabase, picker: ApiPicker
) -> tuple:
    """The bundled library: re-forged per member from a fixed seed, so
    every copy is content-identical but object-distinct."""
    forge = AppForge(
        "lib.shared",
        "shared-library",
        min_sdk=config.min_sdk,
        target_sdk=config.target_sdk,
        seed=config.seed,
        apidb=apidb,
        picker=picker,
    )
    for _ in range(config.library_guards):
        try:
            forge.add_guarded_direct()
        except LookupError:  # pragma: no cover — exhausted window
            break
        try:
            forge.add_helper_guard_trap()
        except LookupError:  # pragma: no cover
            pass
    forge.add_filler(
        kloc=config.library_kloc, interior=config.filler_interior
    )
    return tuple(forge._classes)


def generate_overlapping_corpus(
    config: OverlapConfig | None = None,
    apidb: ApiDatabase | None = None,
) -> Iterator[CorpusApp]:
    """Yield ``config.count`` apps sharing one bundled library.

    Every member embeds a content-identical copy of the library (same
    names, same bytecode, hence the same class digests) alongside its
    own manifest and unique code layer; corpus-wide, the unique-class
    ratio is roughly ``unique / (unique + library)`` per app after the
    first.  Copies are distinct objects per member — the realistic
    shape: each APK parses its bundled dex independently."""
    config = config or OverlapConfig()
    apidb = apidb or build_api_database()
    picker = ApiPicker(apidb)

    for index in range(config.count):
        library = _build_shared_library(config, apidb, picker)
        forge = AppForge(
            f"app.overlap.a{index}",
            f"overlap-{index:03d}",
            min_sdk=config.min_sdk,
            target_sdk=config.target_sdk,
            seed=config.seed * 7_368_787 + index,
            apidb=apidb,
            picker=picker,
        )
        for _ in range(config.app_issues):
            try:
                forge.add_direct_issue()
            except LookupError:  # pragma: no cover — narrow window
                break
        forge.add_filler(
            kloc=config.unique_kloc, interior=config.filler_interior
        )
        # Embedding in the primary dex is enough to analyze the
        # library: every primary-dex method is an exploration root
        # (see :func:`repro.core.aum.entry_points`).
        forge._classes.extend(library)
        yield CorpusApp(
            forged=forge.build(),
            index=index,
            modern_target=config.target_sdk >= 23,
            outlier=False,
        )
