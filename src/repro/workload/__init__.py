"""Workloads: the app forge, benchmark-suite replicas, the calibrated
real-world corpus, and ground-truth records."""

from .groundtruth import GroundTruth, SeededIssue, SeededTrap, Trait
from .appgen import ApiPicker, AppForge, ForgedApp
from .benchsuite import (
    BENCHMARK_SPECS,
    BenchmarkSpec,
    CIDER_BENCH,
    CID_BENCH,
    build_benchmark_app,
    build_benchmark_suite,
)
from .corpus import (
    CorpusApp,
    CorpusConfig,
    OverlapConfig,
    PAPER_CORPUS_SIZE,
    generate_corpus,
    generate_overlapping_corpus,
)

__all__ = [
    "ApiPicker",
    "AppForge",
    "BENCHMARK_SPECS",
    "BenchmarkSpec",
    "CIDER_BENCH",
    "CID_BENCH",
    "CorpusApp",
    "CorpusConfig",
    "ForgedApp",
    "GroundTruth",
    "OverlapConfig",
    "PAPER_CORPUS_SIZE",
    "SeededIssue",
    "SeededTrap",
    "Trait",
    "build_benchmark_app",
    "build_benchmark_suite",
    "generate_corpus",
    "generate_overlapping_corpus",
]
