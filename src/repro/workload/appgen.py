"""AppForge: programmatic construction of apps with seeded issues.

Every benchmark replica and every corpus app is assembled from the
*scenario* methods below.  Each scenario emits real IR — classes,
methods, guards, call chains — plus the matching ground-truth record,
so detector accuracy is always measured against code, never against a
spreadsheet of expected outcomes.

Scenario catalog (traits in :mod:`repro.workload.groundtruth`):

====================================  =====================================
scenario                              who is expected to handle it
====================================  =====================================
``add_direct_issue``                  true API issue; all API tools detect
``add_guarded_direct``                non-issue; nobody should report
``add_caller_guard_trap``             non-issue; CID + Lint false-alarm
``add_anonymous_guard_trap``          non-issue; SAINTDroid (and CID/Lint)
                                      false-alarm — the paper's §VI blind
                                      spot
``add_inherited_issue``               true issue; CID/Lint miss (no
                                      framework hierarchy)
``add_library_issue``                 true issue; Lint misses (source
                                      scope)
``add_secondary_dex_issue``           true issue; only SAINTDroid reaches
                                      late-bound dex (CID crashes on
                                      multidex)
``add_external_dynamic_issue``        true issue nobody can see (code is
                                      outside the APK) — SAINTDroid's FNs
``add_forward_removed_issue``         true issue on a removed API
``add_callback_issue``                true APC issue (modeled/unmodeled/
                                      anonymous variants)
``add_permission_request_issue``      true PRM issue (target ≥23)
``add_permission_revocation_issue``   true PRM issue (target ≤22)
``add_semantic_issue``                true SEM issue (behavior-only
                                      delta); only SAINTDroid detects
``add_guarded_semantic``              non-issue; delta correctly
                                      SDK-guarded onto the target's side
``implement_permission_protocol``     makes the app permission-safe
``add_filler``                        plain safe code to reach a size
====================================  =====================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..apk.dexfile import DexFile
from ..apk.manifest import (
    Component,
    ComponentKind,
    Manifest,
    MAX_API_LEVEL,
    RUNTIME_PERMISSIONS_LEVEL,
)
from ..apk.package import Apk
from ..core.apidb import ApiDatabase, ApiEntry
from ..core.arm import build_api_database
from ..framework.permissions import is_dangerous
from ..ir.builder import ClassBuilder, MethodBuilder
from ..ir.clazz import Clazz
from ..ir.instructions import CmpOp
from ..ir.types import MethodRef
from .groundtruth import GroundTruth, SeededIssue, SeededTrap, Trait

__all__ = ["ApiPicker", "AppForge", "ForgedApp"]

#: CIDER's modeled classes (kept literal here to avoid importing the
#: baseline from the workload generator).
_MODELED_CLASSES = frozenset(
    {
        "android.app.Activity",
        "android.app.Fragment",
        "android.app.Service",
        "android.webkit.WebView",
    }
)

_PERMISSION_HOOK = (
    "onRequestPermissionsResult",
    "(int,java.lang.String[],int[])void",
)


@dataclass(frozen=True)
class _ApiFact:
    """Pre-digested view of an ApiEntry for picker filtering."""

    entry: ApiEntry
    introduced: int
    last: int
    contiguous: bool
    dangerous_permissions: frozenset[str]
    class_introduced: int


class ApiPicker:
    """Deterministic selection of framework APIs by characteristics.

    Built once per API database; scenario methods draw from it with the
    forge's seeded RNG so every generated app is reproducible.
    """

    def __init__(self, apidb: ApiDatabase) -> None:
        self._apidb = apidb
        self._facts: list[_ApiFact] = []
        for class_name in apidb.class_names:
            class_entry = apidb.clazz(class_name)
            if not class_entry.levels:
                continue
            class_introduced = min(class_entry.levels)
            for method in class_entry.methods.values():
                if not method.levels:
                    continue
                introduced, last = method.lifetime
                self._facts.append(
                    _ApiFact(
                        entry=method,
                        introduced=introduced,
                        last=last,
                        contiguous=(
                            len(method.levels) == last - introduced + 1
                        ),
                        dangerous_permissions=frozenset(
                            p
                            for p in apidb.permission_map.permissions_for(
                                method.ref
                            )
                            if is_dangerous(p)
                        ),
                        class_introduced=class_introduced,
                    )
                )
        self._facts.sort(
            key=lambda f: (f.entry.class_name, f.entry.signature)
        )

    # -- selection helpers -------------------------------------------------

    def _choose(self, rng: random.Random, candidates: list[_ApiFact]) -> _ApiFact:
        if not candidates:
            raise LookupError("no API matches the requested characteristics")
        return rng.choice(candidates)

    def safe_api(self, rng: random.Random) -> ApiEntry:
        """A method present at every level with no dangerous
        permissions — harmless filler material."""
        candidates = [
            f
            for f in self._facts
            if f.introduced == 2
            and f.last == MAX_API_LEVEL
            and not f.entry.callback
            and not f.dangerous_permissions
            and not f.entry.semantic_deltas
            and not f.entry.name.startswith("<")
        ]
        return self._choose(rng, candidates).entry

    def new_api(
        self,
        rng: random.Random,
        min_introduced: int,
        max_introduced: int,
    ) -> ApiEntry:
        """A non-callback, permission-free API introduced within
        ``[min_introduced, max_introduced]`` and alive through the
        newest level."""
        candidates = [
            f
            for f in self._facts
            if min_introduced <= f.introduced <= max_introduced
            and f.last == MAX_API_LEVEL
            and f.contiguous
            and not f.entry.callback
            and not f.dangerous_permissions
            and not f.entry.semantic_deltas
            and not f.entry.name.startswith("<")
        ]
        return self._choose(rng, candidates).entry

    def removed_api(
        self, rng: random.Random, alive_at: int
    ) -> ApiEntry:
        """An API alive at ``alive_at`` but removed before the newest
        level (forward-compatibility material)."""
        candidates = [
            f
            for f in self._facts
            if f.introduced <= alive_at <= f.last
            and f.last < MAX_API_LEVEL
            and f.contiguous
            and not f.entry.callback
            and not f.dangerous_permissions
            and not f.entry.semantic_deltas
            and not f.entry.name.startswith("<")
        ]
        return self._choose(rng, candidates).entry

    def subclassable_new_api(
        self,
        rng: random.Random,
        class_alive_at: int,
        min_introduced: int,
        max_introduced: int,
    ) -> ApiEntry:
        """A new API on a class that already exists at
        ``class_alive_at`` — so an app subclass is legal across the
        app's whole range while the method itself is newer."""
        candidates = [
            f
            for f in self._facts
            if f.class_introduced <= class_alive_at
            and min_introduced <= f.introduced <= max_introduced
            and f.last == MAX_API_LEVEL
            and f.contiguous
            and not f.entry.callback
            and not f.dangerous_permissions
            and not f.entry.semantic_deltas
            and not f.entry.name.startswith("<")
        ]
        return self._choose(rng, candidates).entry

    def new_callback(
        self,
        rng: random.Random,
        min_introduced: int,
        max_introduced: int,
        *,
        modeled: bool | None = None,
    ) -> ApiEntry:
        """A callback introduced in the window.  ``modeled`` filters to
        (True) / away from (False) CIDER's four modeled classes."""
        candidates = []
        for f in self._facts:
            if not f.entry.callback:
                continue
            if not (min_introduced <= f.introduced <= max_introduced):
                continue
            if f.last != MAX_API_LEVEL or not f.contiguous:
                continue
            if f.class_introduced > 2:
                continue  # the subclass must be legal at every level
            if (f.entry.name, f.entry.descriptor) == _PERMISSION_HOOK:
                continue
            if f.entry.semantic_deltas:
                continue
            in_modeled = f.entry.class_name in _MODELED_CLASSES
            if modeled is True and not in_modeled:
                continue
            if modeled is False and in_modeled:
                continue
            candidates.append(f)
        return self._choose(rng, candidates).entry

    def permission_api(
        self, rng: random.Random, *, deep: bool | None = None
    ) -> tuple[ApiEntry, frozenset[str]]:
        """An API requiring dangerous permissions, present at every
        level.  ``deep=True`` restricts to APIs whose *direct*
        permission set is empty (enforcement buried in the framework);
        ``deep=False`` to directly-enforcing APIs."""
        candidates = []
        for f in self._facts:
            # Realistic APIs require one or two dangerous permissions;
            # bulk framework methods sitting atop huge transitive
            # enforcement cones are not representative call targets.
            if not 1 <= len(f.dangerous_permissions) <= 2:
                continue
            if f.introduced != 2 or f.last != MAX_API_LEVEL:
                continue
            if f.entry.callback or f.entry.name.startswith("<"):
                continue
            if f.entry.semantic_deltas:
                continue
            direct = frozenset(
                p
                for p in self._apidb.permission_map.permissions_for(
                    f.entry.ref, deep=False
                )
                if is_dangerous(p)
            )
            if deep is True and direct:
                continue
            if deep is False and not direct:
                continue
            candidates.append(f)
        fact = self._choose(rng, candidates)
        return fact.entry, fact.dangerous_permissions

    def semantic_api(
        self,
        rng: random.Random,
        *,
        min_sdk: int,
        target_sdk: int,
        max_level: int,
        single_delta: bool = False,
    ) -> ApiEntry:
        """A permission-free, always-callable API carrying at least one
        behavior delta that *matters* for an app with the given SDK
        triple: some supported device level sits on the other side of
        the delta from ``target_sdk``.  ``single_delta=True`` restricts
        to one-delta APIs, so a single SDK guard can neutralize the
        whole method (the guarded-trap scenario needs that)."""
        def active(level: int) -> bool:
            if level <= target_sdk:
                return level > min_sdk
            return level <= max_level

        candidates = [
            f
            for f in self._facts
            if f.entry.semantic_deltas
            and f.introduced <= min_sdk
            and f.last == MAX_API_LEVEL
            and f.contiguous
            and not f.entry.callback
            and not f.dangerous_permissions
            and not f.entry.name.startswith("<")
            and any(active(d.level) for d in f.entry.semantic_deltas)
            and (not single_delta or len(f.entry.semantic_deltas) == 1)
        ]
        return self._choose(rng, candidates).entry


@dataclass
class ForgedApp:
    """A generated app plus its ground truth."""

    apk: Apk
    truth: GroundTruth


class AppForge:
    """Assembles one app from scenarios.

    Typical use::

        forge = AppForge("com.example.demo", "Demo", min_sdk=21,
                         target_sdk=26, seed=7)
        forge.add_direct_issue()
        forge.add_callback_issue(modeled=False)
        forge.add_filler(kloc=4.0)
        forged = forge.build()
    """

    def __init__(
        self,
        package: str,
        label: str,
        *,
        min_sdk: int,
        target_sdk: int,
        max_sdk: int | None = None,
        buildable: bool = True,
        seed: int = 0,
        apidb: ApiDatabase | None = None,
        picker: ApiPicker | None = None,
    ) -> None:
        self.package = package
        self.label = label
        self.min_sdk = min_sdk
        self.target_sdk = target_sdk
        self.max_sdk = max_sdk
        self.buildable = buildable
        self._rng = random.Random(seed)
        self._apidb = apidb or build_api_database()
        self._picker = picker or ApiPicker(self._apidb)
        self._classes: list[Clazz] = []
        self._secondary: list[Clazz] = []
        self._permissions: set[str] = set()
        self._components: list[Component] = []
        self._counter = 0
        self._protocol_implemented = False
        self._loader_sites: list[str] = []
        #: Per-app API vocabulary: real apps exercise a bounded slice
        #: of the framework, which is precisely what makes lazy class
        #: loading pay off.  Filler code draws from this pool.
        self._safe_pool: list[ApiEntry] = []
        self._issue_pool: list[ApiEntry] = []
        self.truth = GroundTruth(app=label)
        self._effective_max = (
            max_sdk if max_sdk is not None else MAX_API_LEVEL
        )
        self._add_main_activity()

    # -- naming -----------------------------------------------------------

    def _next(self, stem: str) -> str:
        self._counter += 1
        return f"{self.package}.gen.{stem}{self._counter}"

    def _next_library(self, stem: str) -> str:
        self._counter += 1
        return f"com.thirdparty.{stem.lower()}.{stem}{self._counter}"

    def _next_plugin(self, stem: str) -> str:
        self._counter += 1
        return f"{self.package}.plugin.{stem}{self._counter}"

    # -- shared pieces -------------------------------------------------------

    @property
    def main_activity(self) -> str:
        return f"{self.package}.MainActivity"

    def _add_main_activity(self) -> None:
        builder = ClassBuilder(
            self.main_activity, super_name="android.app.Activity"
        )
        method = builder.method("onCreate", "(android.os.Bundle)void")
        method.invoke_super(
            "android.app.Activity", "onCreate", "(android.os.Bundle)void"
        )
        safe = self._pooled_safe_api()
        method.invoke_virtual(safe.class_name, safe.name, safe.descriptor)
        method.return_void()
        builder.finish(method)
        self._classes.append(builder.build())
        self._components.append(
            Component(self.main_activity, ComponentKind.ACTIVITY)
        )

    def _pooled_safe_api(self) -> ApiEntry:
        """A safe API from the app's bounded vocabulary."""
        if not self._safe_pool:
            pool_size = self._rng.randint(8, 18)
            self._safe_pool = [
                self._picker.safe_api(self._rng) for _ in range(pool_size)
            ]
        return self._rng.choice(self._safe_pool)

    def _pooled_new_api(self) -> ApiEntry:
        """A newer-than-minSdk API from the app's bounded vocabulary.

        An app with many mismatch sites typically owes them to a
        handful of newer APIs used repeatedly (one outdated library),
        not to dozens of unrelated platform corners.
        """
        if not self._issue_pool:
            low, high = self._issue_window()
            pool_size = self._rng.randint(3, 8)
            self._issue_pool = [
                self._picker.new_api(self._rng, low, high)
                for _ in range(pool_size)
            ]
        return self._rng.choice(self._issue_pool)

    def _issue_window(self) -> tuple[int, int]:
        """Introduction-level window producing a real backward issue:
        strictly above minSdk, at most the newest modeled level."""
        low = self.min_sdk + 1
        high = MAX_API_LEVEL
        return low, high

    def _emit_call(
        self, method: MethodBuilder, entry: ApiEntry
    ) -> None:
        method.invoke_virtual(entry.class_name, entry.name, entry.descriptor)

    # ------------------------------------------------------------------
    # Extension hooks (external strategy layers, e.g. difftest)
    # ------------------------------------------------------------------

    @property
    def rng(self) -> random.Random:
        """The forge's RNG — reseedable by deterministic planners."""
        return self._rng

    @property
    def picker(self) -> ApiPicker:
        return self._picker

    @property
    def apidb(self) -> ApiDatabase:
        return self._apidb

    def next_name(self, stem: str) -> str:
        """A fresh app-package class name (public `_next`)."""
        return self._next(stem)

    def add_class(self, clazz: Clazz, *, secondary: bool = False) -> None:
        """Register an externally built class with the app."""
        (self._secondary if secondary else self._classes).append(clazz)

    def preseed_pools(self) -> None:
        """Materialize the safe and issue API pools immediately.

        The pools are normally built lazily by the first scenario that
        needs them, so later scenarios' API picks depend on which
        scenario ran first.  Deterministic strategy layers (the
        differential-testing planner) call this right after
        construction so deleting one scenario never shifts another
        scenario's API choices.
        """
        self._pooled_safe_api()
        self._pooled_new_api()

    # ------------------------------------------------------------------
    # API invocation scenarios
    # ------------------------------------------------------------------

    def add_direct_issue(self) -> SeededIssue:
        """Unguarded call to a newer API from an app-package class."""
        api = self._pooled_new_api()
        class_name = self._next("Screen")
        builder = ClassBuilder(class_name)
        method = builder.method("render")
        self._emit_call(method, api)
        method.return_void()
        builder.finish(method)
        self._classes.append(builder.build())

        caller = MethodRef(class_name, "render", "()void")
        issue = SeededIssue(
            key=(
                "API",
                self.label,
                caller,
                (api.class_name, api.name, api.descriptor),
            ),
            kind="API",
            trait=Trait.DIRECT,
            description=(
                f"{class_name}.render calls {api.ref} (API "
                f"{api.lifetime[0]}+) with minSdk {self.min_sdk}"
            ),
        )
        self.truth.issues.append(issue)
        return issue

    def add_guarded_direct(self) -> SeededTrap:
        """Correctly guarded call — nobody should report it."""
        api = self._pooled_new_api()
        class_name = self._next("SafeScreen")
        builder = ClassBuilder(class_name)
        method = builder.method("render")
        method.guarded_call(
            api.lifetime[0], api.class_name, api.name, api.descriptor
        )
        method.return_void()
        builder.finish(method)
        self._classes.append(builder.build())

        caller = MethodRef(class_name, "render", "()void")
        trap = SeededTrap(
            fp_keys=(
                (
                    "API",
                    self.label,
                    caller,
                    (api.class_name, api.name, api.descriptor),
                ),
            ),
            trait=Trait.TRAP_GUARDED_DIRECT,
            description=f"{class_name}.render guards {api.ref} correctly",
        )
        self.truth.traps.append(trap)
        return trap

    def add_caller_guard_trap(self) -> SeededTrap:
        """Guard in the caller, API call in the callee — safe, but
        context-insensitive tools flag the callee."""
        api = self._pooled_new_api()
        helper_name = self._next("Helper")
        helper = ClassBuilder(helper_name)
        apply_method = helper.method("applyFeature")
        self._emit_call(apply_method, api)
        apply_method.return_void()
        helper.finish(apply_method)
        self._classes.append(helper.build())

        caller_name = self._next("Coordinator")
        caller = ClassBuilder(caller_name)
        update = caller.method("update")
        skip = update.fresh_label("skip_")
        update.sdk_int(0)
        update.const_int(1, api.lifetime[0])
        update.if_cmp(CmpOp.LT, 0, 1, skip)
        update.invoke_virtual(helper_name, "applyFeature")
        update.label(skip)
        update.return_void()
        caller.finish(update)
        self._classes.append(caller.build())

        helper_ref = MethodRef(helper_name, "applyFeature", "()void")
        trap = SeededTrap(
            fp_keys=(
                (
                    "API",
                    self.label,
                    helper_ref,
                    (api.class_name, api.name, api.descriptor),
                ),
            ),
            trait=Trait.TRAP_CALLER_GUARD,
            description=(
                f"{caller_name}.update guards the call into "
                f"{helper_name}.applyFeature ({api.ref})"
            ),
        )
        self.truth.traps.append(trap)
        return trap

    def add_helper_guard_trap(self) -> SeededTrap:
        """The SDK check is wrapped in a boolean helper method — the
        ubiquitous ``VersionUtils.isAtLeastM()`` idiom.  Safe;
        summary-aware interprocedural analysis (SAINTDroid) sees
        through it, per-method tools false-alarm."""
        api = self._pooled_new_api()
        level = api.lifetime[0]
        utils_name = self._next("VersionUtils")
        utils = ClassBuilder(utils_name)
        helper = utils.method("isSupported", "()boolean")
        skip = helper.fresh_label("no_")
        helper.sdk_int(0)
        helper.const_int(1, level)
        helper.if_cmp(CmpOp.LT, 0, 1, skip)
        helper.const_int(2, 1)
        helper.return_value(2)
        helper.label(skip)
        helper.const_int(2, 0)
        helper.return_value(2)
        utils.finish(helper)
        self._classes.append(utils.build())

        user_name = self._next("FeatureGate")
        user = ClassBuilder(user_name)
        apply_method = user.method("applyFeature")
        out = apply_method.fresh_label("skip_")
        apply_method.invoke_virtual(utils_name, "isSupported", "()boolean")
        apply_method.move_result(0)
        apply_method.if_cmpz(CmpOp.EQ, 0, out)
        apply_method.invoke_virtual(
            api.class_name, api.name, api.descriptor
        )
        apply_method.label(out)
        apply_method.return_void()
        user.finish(apply_method)
        self._classes.append(user.build())

        user_ref = MethodRef(user_name, "applyFeature", "()void")
        trap = SeededTrap(
            fp_keys=(
                (
                    "API",
                    self.label,
                    user_ref,
                    (api.class_name, api.name, api.descriptor),
                ),
            ),
            trait=Trait.TRAP_HELPER_GUARD,
            description=(
                f"{user_name}.applyFeature guards {api.ref} through "
                f"{utils_name}.isSupported()"
            ),
        )
        self.truth.traps.append(trap)
        return trap

    def add_anonymous_guard_trap(self) -> SeededTrap:
        """Guarded allocation of an anonymous listener whose body calls
        the new API — safe by construction, but the guard does not
        survive the anonymous-class boundary in any of the tools."""
        api = self._pooled_new_api()
        host_name = self._next("Panel")
        listener_name = f"{host_name}$1"

        listener = ClassBuilder(
            listener_name, interfaces=("java.lang.Runnable",)
        )
        run = listener.method("run")
        self._emit_call(run, api)
        run.return_void()
        listener.finish(run)
        self._classes.append(listener.build())

        host = ClassBuilder(host_name)
        setup = host.method("setup")
        skip = setup.fresh_label("skip_")
        setup.sdk_int(0)
        setup.const_int(1, api.lifetime[0])
        setup.if_cmp(CmpOp.LT, 0, 1, skip)
        setup.new_instance(2, listener_name)
        setup.invoke_virtual(
            "android.os.Handler", "post", "(java.lang.Runnable)boolean",
            args=(2,),
        )
        setup.label(skip)
        setup.return_void()
        host.finish(setup)
        self._classes.append(host.build())

        run_ref = MethodRef(listener_name, "run", "()void")
        trap = SeededTrap(
            fp_keys=(
                (
                    "API",
                    self.label,
                    run_ref,
                    (api.class_name, api.name, api.descriptor),
                ),
            ),
            trait=Trait.TRAP_ANONYMOUS_GUARD,
            description=(
                f"{host_name}.setup posts {listener_name} only on "
                f"API {api.lifetime[0]}+; the listener calls {api.ref}"
            ),
        )
        self.truth.traps.append(trap)
        return trap

    def add_inherited_issue(self) -> SeededIssue:
        """API reached through an app subclass receiver."""
        low, high = self._issue_window()
        api = self._picker.subclassable_new_api(
            self._rng, self.min_sdk, low, high
        )
        class_name = self._next("Custom")
        builder = ClassBuilder(class_name, super_name=api.class_name)
        # The caller name must not collide with any generatable API
        # name: a subclass method named like the picked API (e.g. a
        # caller "refresh" when the API is refresh()void) would shadow
        # the inherited framework method and the call would resolve to
        # the app's own definition instead of the seeded API.
        method = builder.method("exerciseInherited")
        # Receiver is the app subclass: first-level tools do not treat
        # this as an API call.
        method.invoke_virtual(class_name, api.name, api.descriptor)
        method.return_void()
        builder.finish(method)
        self._classes.append(builder.build())

        caller = MethodRef(class_name, "exerciseInherited", "()void")
        issue = SeededIssue(
            key=(
                "API",
                self.label,
                caller,
                (api.class_name, api.name, api.descriptor),
            ),
            kind="API",
            trait=Trait.INHERITED,
            description=(
                f"{class_name} extends {api.class_name} and calls the "
                f"inherited {api.signature} (API {api.lifetime[0]}+)"
            ),
        )
        self.truth.issues.append(issue)
        return issue

    def add_library_issue(self) -> SeededIssue:
        """Unguarded newer-API call inside a bundled library class."""
        api = self._pooled_new_api()
        class_name = self._next_library("Widget")
        builder = ClassBuilder(class_name, origin="library")
        method = builder.method("decorate")
        self._emit_call(method, api)
        method.return_void()
        builder.finish(method)
        self._classes.append(builder.build())

        caller = MethodRef(class_name, "decorate", "()void")
        issue = SeededIssue(
            key=(
                "API",
                self.label,
                caller,
                (api.class_name, api.name, api.descriptor),
            ),
            kind="API",
            trait=Trait.LIBRARY,
            description=(
                f"bundled library {class_name} calls {api.ref} "
                f"(API {api.lifetime[0]}+)"
            ),
        )
        self.truth.issues.append(issue)
        return issue

    def add_secondary_dex_issue(self) -> SeededIssue:
        """Unguarded newer-API call in a late-bound secondary dex,
        reached through a statically resolvable ``loadClass``."""
        low, high = self._issue_window()
        api = self._picker.new_api(self._rng, low, high)
        plugin_name = self._next_plugin("Plugin")

        plugin = ClassBuilder(plugin_name)
        boot = plugin.method("boot")
        self._emit_call(boot, api)
        boot.return_void()
        plugin.finish(boot)
        self._secondary.append(plugin.build())

        loader_name = self._next("Loader")
        loader = ClassBuilder(loader_name)
        load = loader.method("loadPlugin")
        load.const_string(0, plugin_name)
        load.invoke_virtual(
            "dalvik.system.DexClassLoader",
            "loadClass",
            "(java.lang.String)java.lang.Class",
            args=(0,),
        )
        load.return_void()
        loader.finish(load)
        self._classes.append(loader.build())
        self._loader_sites.append(plugin_name)

        caller = MethodRef(plugin_name, "boot", "()void")
        issue = SeededIssue(
            key=(
                "API",
                self.label,
                caller,
                (api.class_name, api.name, api.descriptor),
            ),
            kind="API",
            trait=Trait.SECONDARY_DEX,
            description=(
                f"late-bound {plugin_name}.boot calls {api.ref} "
                f"(API {api.lifetime[0]}+)"
            ),
        )
        self.truth.issues.append(issue)
        return issue

    def add_external_dynamic_issue(self) -> SeededIssue:
        """A known issue in code loaded from outside the APK — not
        statically analyzable by any tool (SAINTDroid's residual FNs)."""
        low, high = self._issue_window()
        api = self._picker.new_api(self._rng, low, high)
        external_name = f"com.external.remote.Module{self._counter + 1}"
        self._counter += 1

        loader_name = self._next("RemoteLoader")
        loader = ClassBuilder(loader_name)
        load = loader.method("loadRemote")
        load.const_string(0, external_name)
        load.invoke_virtual(
            "dalvik.system.DexClassLoader",
            "loadClass",
            "(java.lang.String)java.lang.Class",
            args=(0,),
        )
        load.return_void()
        loader.finish(load)
        self._classes.append(loader.build())

        caller = MethodRef(external_name, "boot", "()void")
        issue = SeededIssue(
            key=(
                "API",
                self.label,
                caller,
                (api.class_name, api.name, api.descriptor),
            ),
            kind="API",
            trait=Trait.EXTERNAL_DYNAMIC,
            description=(
                f"{external_name} (downloaded at runtime) calls "
                f"{api.ref}; outside the APK, invisible to static tools"
            ),
        )
        self.truth.issues.append(issue)
        return issue

    def add_forward_removed_issue(self) -> SeededIssue:
        """Unguarded call to an API removed at a later level."""
        api = self._picker.removed_api(self._rng, self.min_sdk)
        class_name = self._next("LegacyNet")
        builder = ClassBuilder(class_name)
        method = builder.method("fetch")
        self._emit_call(method, api)
        method.return_void()
        builder.finish(method)
        self._classes.append(builder.build())

        caller = MethodRef(class_name, "fetch", "()void")
        issue = SeededIssue(
            key=(
                "API",
                self.label,
                caller,
                (api.class_name, api.name, api.descriptor),
            ),
            kind="API",
            trait=Trait.FORWARD_REMOVED,
            description=(
                f"{class_name}.fetch calls {api.ref}, removed after "
                f"API {api.lifetime[1]}"
            ),
        )
        self.truth.issues.append(issue)
        return issue

    # ------------------------------------------------------------------
    # API callback scenarios
    # ------------------------------------------------------------------

    def add_callback_issue(
        self, *, modeled: bool, anonymous: bool = False
    ) -> SeededIssue:
        """Override a framework callback newer than minSdk.

        ``modeled=True`` places it on one of CIDER's four classes;
        ``anonymous=True`` hosts the override in an anonymous inner
        class (invisible to SAINTDroid and CIDER alike)."""
        low, high = self._issue_window()
        callback = self._picker.new_callback(
            self._rng, low, high, modeled=modeled
        )
        stem = "Hook" if not anonymous else "HookHost"
        base_name = self._next(stem)
        class_name = f"{base_name}$1" if anonymous else base_name

        builder = ClassBuilder(class_name, super_name=callback.class_name)
        method = builder.method(callback.name, callback.descriptor)
        safe = self._pooled_safe_api()
        method.invoke_virtual(safe.class_name, safe.name, safe.descriptor)
        method.return_void()
        builder.finish(method)
        self._classes.append(builder.build())

        if anonymous:
            # The enclosing class allocates the anonymous subclass.
            host = ClassBuilder(base_name)
            attach = host.method("attach")
            attach.new_instance(0, class_name)
            attach.return_void()
            host.finish(attach)
            self._classes.append(host.build())

        trait = (
            Trait.CALLBACK_ANONYMOUS
            if anonymous
            else (
                Trait.CALLBACK_MODELED
                if modeled
                else Trait.CALLBACK_UNMODELED
            )
        )
        issue = SeededIssue(
            key=(
                "APC",
                self.label,
                class_name,
                f"{callback.name}{callback.descriptor}",
            ),
            kind="APC",
            trait=trait,
            description=(
                f"{class_name} overrides {callback.ref} "
                f"(API {callback.lifetime[0]}+) with minSdk {self.min_sdk}"
            ),
        )
        self.truth.issues.append(issue)
        return issue

    # ------------------------------------------------------------------
    # Permission scenarios
    # ------------------------------------------------------------------

    def add_permission_request_issue(
        self, *, deep: bool = False
    ) -> tuple[SeededIssue, ...]:
        """Use a dangerous-permission API without implementing the
        runtime request protocol (requires ``target_sdk >= 23``)."""
        if self.target_sdk < RUNTIME_PERMISSIONS_LEVEL:
            raise ValueError(
                "permission request mismatches require targetSdk >= 23"
            )
        if self._protocol_implemented:
            raise ValueError(
                "app already implements the runtime permission protocol"
            )
        api, permissions = self._picker.permission_api(
            self._rng, deep=deep if deep else None
        )
        class_name = self._next("Capture")
        builder = ClassBuilder(class_name)
        method = builder.method("acquire")
        self._emit_call(method, api)
        method.return_void()
        builder.finish(method)
        self._classes.append(builder.build())
        self._permissions.update(permissions)

        trait = Trait.PERMISSION_DEEP if deep else Trait.PERMISSION_REQUEST
        issues = []
        for permission in sorted(permissions):
            issue = SeededIssue(
                key=("PRM-request", self.label, permission),
                kind="PRM-request",
                trait=trait,
                description=(
                    f"{class_name}.acquire uses {api.ref} requiring "
                    f"{permission}; no runtime request protocol"
                ),
            )
            self.truth.issues.append(issue)
            issues.append(issue)
        return tuple(issues)

    def add_permission_revocation_issue(
        self, *, deep: bool = False
    ) -> tuple[SeededIssue, ...]:
        """Use a requested dangerous permission under the install-time
        model (requires ``target_sdk <= 22``)."""
        if self.target_sdk >= RUNTIME_PERMISSIONS_LEVEL:
            raise ValueError(
                "permission revocation mismatches require targetSdk <= 22"
            )
        api, permissions = self._picker.permission_api(
            self._rng, deep=deep if deep else None
        )
        class_name = self._next("Exporter")
        builder = ClassBuilder(class_name)
        method = builder.method("export")
        self._emit_call(method, api)
        method.return_void()
        builder.finish(method)
        self._classes.append(builder.build())
        self._permissions.update(permissions)

        trait = (
            Trait.PERMISSION_DEEP if deep else Trait.PERMISSION_REVOCATION
        )
        issues = []
        for permission in sorted(permissions):
            issue = SeededIssue(
                key=("PRM-revocation", self.label, permission),
                kind="PRM-revocation",
                trait=trait,
                description=(
                    f"{class_name}.export uses {api.ref} requiring "
                    f"{permission}; revocable on API 23+ devices"
                ),
            )
            self.truth.issues.append(issue)
            issues.append(issue)
        return tuple(issues)

    def implement_permission_protocol(self) -> None:
        """Add the runtime permission request/result protocol to the
        main activity; the app then has no request mismatches."""
        if self._protocol_implemented:
            return
        self._protocol_implemented = True
        class_name = self._next("PermissionAware")
        builder = ClassBuilder(class_name, super_name="android.app.Activity")
        ask = builder.method("ask")
        # The canonical pattern guards the runtime request on SDK_INT.
        ask.guarded_call(
            RUNTIME_PERMISSIONS_LEVEL,
            "android.app.Activity",
            "requestPermissions",
            "(java.lang.String[],int)void",
        )
        ask.return_void()
        builder.finish(ask)
        hook = builder.method(_PERMISSION_HOOK[0], _PERMISSION_HOOK[1])
        hook.return_void()
        builder.finish(hook)
        self._classes.append(builder.build())

    def request_permission(self, permission: str) -> None:
        """Add a manifest ``uses-permission`` entry directly."""
        self._permissions.add(permission)

    # ------------------------------------------------------------------
    # Semantic (behavior-only) scenarios
    # ------------------------------------------------------------------

    def add_semantic_issue(self) -> SeededIssue:
        """Unguarded call to an API whose *behavior* (not availability)
        changes at a level on the other side of the target SDK."""
        api = self._picker.semantic_api(
            self._rng,
            min_sdk=self.min_sdk,
            target_sdk=self.target_sdk,
            max_level=self._effective_max,
        )
        class_name = self._next("Tuner")
        builder = ClassBuilder(class_name)
        method = builder.method("adjust")
        self._emit_call(method, api)
        method.return_void()
        builder.finish(method)
        self._classes.append(builder.build())

        caller = MethodRef(class_name, "adjust", "()void")
        deltas = ", ".join(
            f"{d.change}@{d.level}" for d in api.semantic_deltas
        )
        issue = SeededIssue(
            key=(
                "SEM",
                self.label,
                caller,
                (api.class_name, api.name, api.descriptor),
            ),
            kind="SEM",
            trait=Trait.SEMANTIC,
            description=(
                f"{class_name}.adjust calls {api.ref}, whose behavior "
                f"changes ({deltas}) inside the supported range with "
                f"targetSdk {self.target_sdk}"
            ),
        )
        self.truth.issues.append(issue)
        return issue

    def add_guarded_semantic(self) -> SeededTrap:
        """Delta-carrying call correctly SDK-guarded onto the target's
        side of the delta — no finding, no behavior difference."""
        api = self._picker.semantic_api(
            self._rng,
            min_sdk=self.min_sdk,
            target_sdk=self.target_sdk,
            max_level=self._effective_max,
            single_delta=True,
        )
        delta = api.semantic_deltas[0]
        class_name = self._next("SafeTuner")
        builder = ClassBuilder(class_name)
        method = builder.method("adjust")
        if self.target_sdk >= delta.level:
            # Target sees the new behavior: run only where it holds.
            method.guarded_call(
                delta.level, api.class_name, api.name, api.descriptor
            )
        else:
            # Target sees the old behavior: stay below the delta.
            method.guarded_call_max(
                delta.level - 1, api.class_name, api.name, api.descriptor
            )
        method.return_void()
        builder.finish(method)
        self._classes.append(builder.build())

        caller = MethodRef(class_name, "adjust", "()void")
        trap = SeededTrap(
            fp_keys=(
                (
                    "SEM",
                    self.label,
                    caller,
                    (api.class_name, api.name, api.descriptor),
                ),
            ),
            trait=Trait.TRAP_GUARDED_SEMANTIC,
            description=(
                f"{class_name}.adjust keeps {api.ref} on the target's "
                f"side of its {delta.change}@{delta.level} delta"
            ),
        )
        self.truth.traps.append(trap)
        return trap

    # ------------------------------------------------------------------
    # filler
    # ------------------------------------------------------------------

    def add_filler(self, kloc: float, *, interior: int = 4) -> None:
        """Plain, safe code: classes calling always-available APIs and
        each other, sized to roughly ``kloc`` thousand instructions.

        ``interior`` sets the straight-line (non-invoke) instructions
        per method.  The default keeps the historical call-dense shape;
        corpus generators model realistic dex — where most instructions
        are arithmetic and moves between sparse call sites — by raising
        it (real apps average well over ten interior instructions per
        call site)."""
        target = int(kloc * 1000)
        emitted = 0
        previous_class: str | None = None
        while emitted < target:
            class_name = self._next("Util")
            builder = ClassBuilder(class_name)
            methods = self._rng.randint(4, 9)
            for index in range(methods):
                method = builder.method(f"op{index}")
                body_calls = self._rng.randint(1, 3)
                for position in range(interior):
                    method.const_int(position % 4, position)
                    emitted += 1
                for _ in range(body_calls):
                    safe = self._pooled_safe_api()
                    method.invoke_virtual(
                        safe.class_name, safe.name, safe.descriptor
                    )
                    emitted += 1
                if previous_class is not None and index == 0:
                    method.invoke_virtual(previous_class, "op0")
                    emitted += 1
                method.return_void()
                emitted += 1
                builder.finish(method)
            self._classes.append(builder.build())
            previous_class = class_name

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------

    def build(self) -> ForgedApp:
        manifest = Manifest(
            package=self.package,
            min_sdk=self.min_sdk,
            target_sdk=self.target_sdk,
            max_sdk=self.max_sdk,
            permissions=tuple(sorted(self._permissions)),
            components=tuple(self._components),
            buildable=self.buildable,
        )
        dex_files = [DexFile("classes.dex", tuple(self._classes))]
        if self._secondary:
            dex_files.append(
                DexFile(
                    "classes2.dex",
                    tuple(self._secondary),
                    secondary=True,
                )
            )
        apk = Apk(
            manifest=manifest,
            dex_files=tuple(dex_files),
            label=self.label,
        )
        return ForgedApp(apk=apk, truth=self.truth)
