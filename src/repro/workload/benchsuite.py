"""Benchmark-suite replicas: CID-Bench and CIDER-Bench.

The paper evaluates on 19 buildable benchmark apps: 12 from CIDER-Bench
(Huang et al.) and 7 from CID-Bench (Li et al.).  We rebuild each as a
synthetic app with the paper's app names, plausible SDK ranges and
sizes, and a seeded scenario mix chosen so the suite-level ground truth
matches the paper's anchors:

* 42 callback (APC) issues in total, 2 of them hosted in anonymous
  inner classes (the two SAINTDroid misses; it detects 40/42 with no
  APC false positives);
* ~62 API invocation issues spread over the mechanisms of
  :mod:`repro.workload.appgen` (direct / inherited / library /
  secondary-dex / external-dynamic / forward-removed), with the four
  external-dynamic issues undetectable by any static tool — SAINTDroid
  recall lands at ≈93%;
* 25 anonymous-guard traps (SAINTDroid's ≈21% false-alarm rate, the
  paper's §VI discussion) and ~32 caller-guard traps that only
  context-insensitive tools trip over;
* the three apps whose Table III CID column is a dash — AFWall+,
  NetworkMonitor, PassAndroid — carry secondary dex files, which crash
  CID's loader;
* NyaaPantsu does not build, so Lint produces no result for it.

Scenario counts per app are fixed (not sampled) so the suite is fully
deterministic; only API *selection* within a scenario uses the per-app
seeded RNG.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.apidb import ApiDatabase
from ..core.arm import build_api_database
from .appgen import ApiPicker, AppForge, ForgedApp

__all__ = ["BenchmarkSpec", "CIDER_BENCH", "CID_BENCH", "BENCHMARK_SPECS",
           "build_benchmark_app", "build_benchmark_suite"]


@dataclass(frozen=True)
class BenchmarkSpec:
    """Declarative description of one benchmark replica."""

    label: str
    package: str
    min_sdk: int
    target_sdk: int
    kloc: float
    suite: str  # "CIDER-Bench" | "CID-Bench"
    buildable: bool = True
    seed: int = 0
    # scenario counts
    direct: int = 0
    inherited: int = 0
    library: int = 0
    secondary_dex: int = 0
    external_dynamic: int = 0
    forward_removed: int = 0
    cb_modeled: int = 0
    cb_unmodeled: int = 0
    cb_anonymous: int = 0
    prm_request: int = 0
    prm_request_deep: int = 0
    prm_revocation: int = 0
    trap_anonymous: int = 0
    trap_caller_guard: int = 0
    trap_guarded: int = 0


CIDER_BENCH: tuple[BenchmarkSpec, ...] = (
    BenchmarkSpec(
        "AFWall+", "dev.ukanth.ufirewall", 15, 25, 45.0, "CIDER-Bench",
        seed=101, direct=1, inherited=1, library=2, secondary_dex=3,
        cb_modeled=1, cb_unmodeled=3,
        trap_anonymous=2, trap_caller_guard=3, trap_guarded=1,
    ),
    BenchmarkSpec(
        "DuckDuckGo", "com.duckduckgo.mobile.android", 21, 27, 30.0,
        "CIDER-Bench", seed=102, direct=1, inherited=1, library=1,
        external_dynamic=1, cb_modeled=1, cb_unmodeled=3,
        trap_anonymous=2, trap_caller_guard=2, trap_guarded=1,
    ),
    BenchmarkSpec(
        "FOSS Browser", "de.baumann.browser", 21, 27, 12.0, "CIDER-Bench",
        seed=103, direct=1, library=1, cb_modeled=1, cb_unmodeled=2,
        trap_anonymous=1, trap_caller_guard=1, trap_guarded=1,
    ),
    BenchmarkSpec(
        "Kolab notes", "org.kore.kolabnotes.android", 16, 26, 25.0,
        "CIDER-Bench", seed=104, direct=1, inherited=1, library=1,
        cb_modeled=1, cb_unmodeled=2, prm_request=1,
        trap_anonymous=2, trap_caller_guard=2, trap_guarded=1,
    ),
    BenchmarkSpec(
        "MaterialFBook", "me.zeeroooo.materialfb", 17, 25, 18.0,
        "CIDER-Bench", seed=105, direct=1, inherited=1, library=1,
        cb_modeled=1, cb_unmodeled=2,
        trap_anonymous=1, trap_caller_guard=2, trap_guarded=1,
    ),
    BenchmarkSpec(
        "NetworkMonitor", "ca.rmen.android.networkmonitor", 14, 25, 35.0,
        "CIDER-Bench", seed=106, direct=1, inherited=1, library=2,
        secondary_dex=2, external_dynamic=1, cb_modeled=1, cb_unmodeled=3,
        trap_anonymous=2, trap_caller_guard=2, trap_guarded=1,
    ),
    BenchmarkSpec(
        "NyaaPantsu", "eu.kanade.nyaa", 16, 25, 40.0, "CIDER-Bench",
        buildable=False, seed=107, direct=1, inherited=1, library=1,
        cb_modeled=1, cb_unmodeled=2,
        trap_anonymous=2, trap_caller_guard=2, trap_guarded=1,
    ),
    BenchmarkSpec(
        "Padland", "com.mikifus.padland", 16, 23, 10.4, "CIDER-Bench",
        seed=108, direct=1, library=1, cb_unmodeled=1,
        trap_anonymous=1, trap_caller_guard=1, trap_guarded=1,
    ),
    BenchmarkSpec(
        "PassAndroid", "org.ligi.passandroid", 14, 27, 120.0,
        "CIDER-Bench", seed=109, direct=2, inherited=2, library=2,
        secondary_dex=3, external_dynamic=1, cb_modeled=2, cb_unmodeled=4,
        cb_anonymous=1,
        trap_anonymous=3, trap_caller_guard=4, trap_guarded=2,
    ),
    BenchmarkSpec(
        "SimpleSolitaire", "de.tobiasbielefeld.solitaire", 14, 22, 21.0,
        "CIDER-Bench", seed=110, direct=1, inherited=1, library=1,
        forward_removed=1, cb_unmodeled=2, cb_anonymous=1,
        prm_revocation=1,
        trap_anonymous=2, trap_caller_guard=2, trap_guarded=2,
    ),
    BenchmarkSpec(
        "SurvivalManual", "org.ligi.survivalmanual", 19, 26, 14.0,
        "CIDER-Bench", seed=111, direct=1, library=1, cb_modeled=1,
        cb_unmodeled=1,
        trap_anonymous=1, trap_caller_guard=1, trap_guarded=1,
    ),
    BenchmarkSpec(
        "Uber ride", "com.example.uberride", 21, 24, 60.0, "CIDER-Bench",
        seed=112, direct=1, inherited=1, library=1, external_dynamic=1,
        cb_modeled=2, cb_unmodeled=3, prm_request_deep=1,
        trap_anonymous=3, trap_caller_guard=3, trap_guarded=2,
    ),
)

CID_BENCH: tuple[BenchmarkSpec, ...] = (
    BenchmarkSpec(
        "Basic", "com.cidbench.basic", 10, 23, 10.4, "CID-Bench",
        seed=201, direct=1, trap_caller_guard=1, trap_guarded=1,
    ),
    BenchmarkSpec(
        "Forward", "com.cidbench.forward", 14, 23, 11.0, "CID-Bench",
        seed=202, forward_removed=2, trap_guarded=1,
    ),
    BenchmarkSpec(
        "GenericType", "com.cidbench.generictype", 15, 24, 12.0,
        "CID-Bench", seed=203, direct=1, library=1,
        trap_caller_guard=2, trap_anonymous=1,
    ),
    BenchmarkSpec(
        "Inheritance", "com.cidbench.inheritance", 15, 24, 12.0,
        "CID-Bench", seed=204, inherited=2, trap_caller_guard=1,
    ),
    BenchmarkSpec(
        "Protection", "com.cidbench.protection", 16, 25, 11.0,
        "CID-Bench", seed=205,
        trap_guarded=2, trap_caller_guard=2, trap_anonymous=1,
    ),
    BenchmarkSpec(
        "Protection2", "com.cidbench.protection2", 16, 25, 11.0,
        "CID-Bench", seed=206, direct=1,
        trap_guarded=2, trap_caller_guard=2, trap_anonymous=1,
    ),
    BenchmarkSpec(
        "Varargs", "com.cidbench.varargs", 15, 24, 12.0, "CID-Bench",
        seed=207, direct=1, library=1, forward_removed=1,
        trap_caller_guard=1,
    ),
)

BENCHMARK_SPECS: tuple[BenchmarkSpec, ...] = CIDER_BENCH + CID_BENCH


def build_benchmark_app(
    spec: BenchmarkSpec,
    apidb: ApiDatabase | None = None,
    picker: ApiPicker | None = None,
    *,
    scale: float = 1.0,
) -> ForgedApp:
    """Materialize one replica.  ``scale`` multiplies the filler size
    (tests use small scales; full runs use 1.0)."""
    apidb = apidb or build_api_database()
    forge = AppForge(
        spec.package,
        spec.label,
        min_sdk=spec.min_sdk,
        target_sdk=spec.target_sdk,
        buildable=spec.buildable,
        seed=spec.seed,
        apidb=apidb,
        picker=picker,
    )
    for _ in range(spec.direct):
        forge.add_direct_issue()
    for _ in range(spec.inherited):
        forge.add_inherited_issue()
    for _ in range(spec.library):
        forge.add_library_issue()
    for _ in range(spec.secondary_dex):
        forge.add_secondary_dex_issue()
    for _ in range(spec.external_dynamic):
        forge.add_external_dynamic_issue()
    for _ in range(spec.forward_removed):
        forge.add_forward_removed_issue()
    for _ in range(spec.cb_modeled):
        forge.add_callback_issue(modeled=True)
    for _ in range(spec.cb_unmodeled):
        forge.add_callback_issue(modeled=False)
    for _ in range(spec.cb_anonymous):
        forge.add_callback_issue(modeled=False, anonymous=True)
    for _ in range(spec.prm_request):
        forge.add_permission_request_issue()
    for _ in range(spec.prm_request_deep):
        forge.add_permission_request_issue(deep=True)
    for _ in range(spec.prm_revocation):
        forge.add_permission_revocation_issue()
    for _ in range(spec.trap_anonymous):
        forge.add_anonymous_guard_trap()
    for _ in range(spec.trap_caller_guard):
        forge.add_caller_guard_trap()
    for _ in range(spec.trap_guarded):
        forge.add_guarded_direct()
    forge.add_filler(kloc=spec.kloc * scale)
    return forge.build()


def build_benchmark_suite(
    apidb: ApiDatabase | None = None,
    *,
    scale: float = 1.0,
    suites: tuple[str, ...] = ("CIDER-Bench", "CID-Bench"),
) -> list[ForgedApp]:
    """Materialize every benchmark replica (deterministic)."""
    apidb = apidb or build_api_database()
    picker = ApiPicker(apidb)
    return [
        build_benchmark_app(spec, apidb, picker, scale=scale)
        for spec in BENCHMARK_SPECS
        if spec.suite in suites
    ]
