"""The framework catalog: curated real API facts plus procedural bulk.

The curated portion encodes documented Android facts that the paper's
examples and benchmarks rely on (e.g. ``Context.getColorStateList``
introduced at level 23, ``Fragment.onAttach(Context)`` at 23,
``View.drawableHotspotChanged`` at 21, the removal of the bundled
Apache HTTP client at 23, the runtime permission protocol at 23).

The procedural portion scales the framework to thousands of classes so
that *whole-framework* loading — what CID and similar tools do — is
measurably expensive, while SAINTDroid's lazy CLVM touches only the
reachable slice.  Bulk generation is fully deterministic for a given
seed.
"""

from __future__ import annotations

import random
from functools import lru_cache

from ..ir.types import MethodRef
from .permissions import DANGEROUS_PERMISSIONS
from .spec import ClassHistory, FrameworkSpec, MethodHistory, SemanticDelta

__all__ = [
    "curated_histories",
    "bulk_histories",
    "build_spec",
    "default_spec",
    "DEFAULT_BULK_CLASSES",
    "DEFAULT_SEED",
]

DEFAULT_BULK_CLASSES = 2000
DEFAULT_SEED = 0xDF2022


def _m(
    name: str,
    descriptor: str = "()void",
    introduced: int = 2,
    removed: int | None = None,
    callback: bool = False,
    permissions: tuple[str, ...] = (),
    calls: tuple[tuple[str, str, str], ...] = (),
    semantics: tuple[tuple[int, str, str], ...] = (),
) -> MethodHistory:
    """Shorthand history constructor; ``calls`` as (class, name, desc),
    ``semantics`` as (level, change, detail)."""
    return MethodHistory(
        name=name,
        descriptor=descriptor,
        introduced=introduced,
        removed=removed,
        callback=callback,
        permissions=permissions,
        calls=tuple(MethodRef(c, n, d) for c, n, d in calls),
        semantics=tuple(
            SemanticDelta(level, change, detail)
            for level, change, detail in semantics
        ),
    )


def curated_histories() -> tuple[ClassHistory, ...]:
    """Hand-written histories encoding documented Android API facts."""
    ctx = "android.content.Context"
    act = "android.app.Activity"
    view = "android.view.View"
    return (
        # -- java.lang core ------------------------------------------
        ClassHistory(
            "java.lang.Object",
            super_name=None,
            methods=(
                _m("<init>"),
                _m("equals", "(java.lang.Object)boolean"),
                _m("hashCode", "()int"),
                _m("toString", "()java.lang.String"),
            ),
        ),
        ClassHistory(
            "java.lang.String",
            methods=(
                _m("length", "()int"),
                _m("isEmpty", "()boolean", introduced=9),
                _m("charAt", "(int)char"),
                _m("concat", "(java.lang.String)java.lang.String"),
            ),
        ),
        ClassHistory("java.lang.Class", methods=(_m("getName", "()java.lang.String"),)),
        ClassHistory(
            "java.lang.ClassLoader",
            methods=(_m("loadClass", "(java.lang.String)java.lang.Class"),),
        ),
        ClassHistory("java.lang.Exception"),
        ClassHistory(
            "java.lang.RuntimeException", super_name="java.lang.Exception"
        ),
        ClassHistory(
            "java.lang.SecurityException",
            super_name="java.lang.RuntimeException",
        ),
        ClassHistory(
            "java.lang.NoSuchMethodError", super_name="java.lang.Exception"
        ),
        # -- dalvik late binding ---------------------------------------
        ClassHistory(
            "dalvik.system.DexClassLoader",
            super_name="java.lang.ClassLoader",
            methods=(
                _m("<init>", "(java.lang.String,java.lang.String,java.lang.String,java.lang.ClassLoader)void"),
                _m("loadClass", "(java.lang.String)java.lang.Class"),
            ),
        ),
        # -- Build.VERSION ---------------------------------------------
        ClassHistory("android.os.Build$VERSION"),
        # -- Context hierarchy -----------------------------------------
        ClassHistory(
            ctx,
            methods=(
                _m("getSystemService", "(java.lang.String)java.lang.Object"),
                _m("getColorStateList", "(int)android.content.res.ColorStateList", introduced=23),
                _m("getDrawable", "(int)android.graphics.drawable.Drawable", introduced=21),
                _m("getExternalFilesDir", "(java.lang.String)java.io.File", introduced=8),
                _m("checkSelfPermission", "(java.lang.String)int", introduced=23),
                _m("enforceCallingOrSelfPermission", "(java.lang.String,java.lang.String)void"),
                _m("startActivity", "(android.content.Intent)void"),
                _m("getContentResolver", "()android.content.ContentResolver"),
                _m("getResources", "()android.content.res.Resources"),
                _m("getPackageManager", "()android.content.pm.PackageManager"),
            ),
        ),
        ClassHistory("android.content.ContextWrapper", super_name=ctx),
        ClassHistory(
            act,
            super_name="android.content.ContextWrapper",
            methods=(
                _m("onCreate", "(android.os.Bundle)void", callback=True),
                _m("onStart", callback=True),
                _m("onResume", callback=True),
                _m("onPause", callback=True),
                _m("onStop", callback=True),
                _m("onDestroy", callback=True),
                _m("onAttachedToWindow", callback=True),
                _m("onBackPressed", introduced=5, callback=True),
                _m("onMultiWindowModeChanged", "(boolean)void", introduced=24, callback=True),
                _m("onPictureInPictureModeChanged", "(boolean)void", introduced=24, callback=True),
                _m("onTopResumedActivityChanged", "(boolean)void", introduced=29, callback=True),
                _m("getFragmentManager", "()android.app.FragmentManager", introduced=11),
                _m("requestPermissions", "(java.lang.String[],int)void", introduced=23),
                _m(
                    "onRequestPermissionsResult",
                    "(int,java.lang.String[],int[])void",
                    introduced=23,
                    callback=True,
                ),
                _m("findViewById", "(int)android.view.View"),
                _m("setContentView", "(int)void"),
                _m("runOnUiThread", "(java.lang.Runnable)void"),
                _m("isInMultiWindowMode", "()boolean", introduced=24),
                _m("recreate", introduced=11),
            ),
        ),
        ClassHistory(
            "android.app.FragmentManager",
            introduced=11,
            methods=(
                _m("beginTransaction", "()android.app.FragmentTransaction", introduced=11),
                _m("executePendingTransactions", "()boolean", introduced=11),
            ),
        ),
        ClassHistory(
            "android.app.FragmentTransaction",
            introduced=11,
            methods=(_m("commit", "()int", introduced=11),),
        ),
        ClassHistory(
            "android.app.Fragment",
            introduced=11,
            methods=(
                _m("onAttach", "(android.app.Activity)void", introduced=11, callback=True),
                _m("onAttach", "(android.content.Context)void", introduced=23, callback=True),
                _m("onCreate", "(android.os.Bundle)void", introduced=11, callback=True),
                _m("onCreateView",
                   "(android.view.LayoutInflater,android.view.ViewGroup,android.os.Bundle)android.view.View",
                   introduced=11, callback=True),
                _m("onDestroy", introduced=11, callback=True),
                _m("getContext", "()android.content.Context", introduced=23),
            ),
        ),
        ClassHistory(
            "android.app.Service",
            super_name="android.content.ContextWrapper",
            methods=(
                _m("onCreate", callback=True),
                _m("onStartCommand", "(android.content.Intent,int,int)int", introduced=5, callback=True),
                _m("onBind", "(android.content.Intent)android.os.IBinder", callback=True),
                _m("onDestroy", callback=True),
                _m("onTaskRemoved", "(android.content.Intent)void", introduced=14, callback=True),
                _m("stopSelf"),
            ),
        ),
        ClassHistory(
            "android.app.Application",
            super_name="android.content.ContextWrapper",
            methods=(
                _m("onCreate", callback=True),
                _m("onTrimMemory", "(int)void", introduced=14, callback=True),
            ),
        ),
        # -- views -----------------------------------------------------
        ClassHistory(
            view,
            methods=(
                _m("onDraw", "(android.graphics.Canvas)void", callback=True),
                _m("onMeasure", "(int,int)void", callback=True),
                _m("onHoverEvent", "(android.view.MotionEvent)boolean", introduced=14, callback=True),
                _m("onApplyWindowInsets",
                   "(android.view.WindowInsets)android.view.WindowInsets",
                   introduced=20, callback=True),
                _m("drawableHotspotChanged", "(float,float)void", introduced=21, callback=True),
                _m("onVisibilityAggregated", "(boolean)void", introduced=26, callback=True),
                _m("setBackgroundDrawable", "(android.graphics.drawable.Drawable)void"),
                _m("setBackground", "(android.graphics.drawable.Drawable)void", introduced=16),
                _m("setElevation", "(float)void", introduced=21),
                _m("setAutofillHints", "(java.lang.String[])void", introduced=26),
                _m("requestPointerCapture", introduced=26),
                _m("performClick", "()boolean"),
                _m("setOnClickListener", "(android.view.View$OnClickListener)void"),
                _m("invalidate"),
            ),
        ),
        ClassHistory(
            "android.view.View$OnClickListener",
            methods=(_m("onClick", "(android.view.View)void", callback=True),),
        ),
        ClassHistory("android.view.ViewGroup", super_name=view),
        ClassHistory("android.view.MotionEvent"),
        ClassHistory("android.view.WindowInsets", introduced=20),
        ClassHistory("android.view.LayoutInflater"),
        ClassHistory(
            "android.view.Window",
            methods=(
                _m("setStatusBarColor", "(int)void", introduced=21),
                _m("setNavigationBarColor", "(int)void", introduced=21),
            ),
        ),
        ClassHistory(
            "android.widget.TextView",
            super_name=view,
            methods=(
                _m("setTextColor", "(int)void"),
                _m("setTextAppearance", "(int)void", introduced=23),
                _m("setLetterSpacing", "(float)void", introduced=21),
                _m("setText", "(java.lang.CharSequence)void"),
            ),
        ),
        ClassHistory(
            "android.widget.LinearLayout",
            super_name="android.view.ViewGroup",
        ),
        ClassHistory(
            "android.widget.Toast",
            methods=(
                _m("makeText",
                   "(android.content.Context,java.lang.CharSequence,int)android.widget.Toast"),
                _m("show"),
            ),
        ),
        ClassHistory(
            "android.webkit.WebView",
            super_name="android.view.ViewGroup",
            methods=(
                _m("loadUrl", "(java.lang.String)void"),
                _m("evaluateJavascript",
                   "(java.lang.String,android.webkit.ValueCallback)void",
                   introduced=19),
                _m("setRendererPriorityPolicy", "(int,boolean)void", introduced=26),
                _m("getWebViewRenderProcess",
                   "()android.webkit.WebViewRenderProcess", introduced=29),
            ),
        ),
        ClassHistory("android.webkit.ValueCallback", introduced=7),
        ClassHistory("android.webkit.WebViewRenderProcess", introduced=29),
        ClassHistory(
            "android.webkit.WebViewClient",
            methods=(
                _m("onPageFinished",
                   "(android.webkit.WebView,java.lang.String)void",
                   callback=True),
                _m("onRenderProcessGone",
                   "(android.webkit.WebView,android.webkit.RenderProcessGoneDetail)boolean",
                   introduced=26, callback=True),
                _m("onReceivedHttpError",
                   "(android.webkit.WebView,android.webkit.WebResourceRequest,android.webkit.WebResourceResponse)void",
                   introduced=23, callback=True),
            ),
        ),
        ClassHistory("android.webkit.RenderProcessGoneDetail", introduced=26),
        ClassHistory("android.webkit.WebResourceRequest", introduced=21),
        ClassHistory("android.webkit.WebResourceResponse", introduced=11),
        # -- misc app services -----------------------------------------
        ClassHistory(
            "android.app.Notification$Builder",
            introduced=11,
            methods=(
                _m("<init>", "(android.content.Context)void", introduced=11),
                _m("<init>", "(android.content.Context,java.lang.String)void", introduced=26),
                _m("setChannelId", "(java.lang.String)android.app.Notification$Builder", introduced=26),
                _m("getNotification", "()android.app.Notification", introduced=11, removed=16),
                _m("build", "()android.app.Notification", introduced=16),
            ),
        ),
        ClassHistory("android.app.Notification"),
        ClassHistory(
            "android.app.NotificationChannel",
            introduced=26,
            methods=(
                _m("<init>", "(java.lang.String,java.lang.CharSequence,int)void", introduced=26),
            ),
        ),
        ClassHistory(
            "android.app.NotificationManager",
            methods=(
                _m("notify", "(int,android.app.Notification)void"),
                _m("createNotificationChannel",
                   "(android.app.NotificationChannel)void", introduced=26),
            ),
        ),
        ClassHistory(
            "android.app.AlarmManager",
            methods=(
                _m("set", "(int,long,android.app.PendingIntent)void"),
                _m("setExact", "(int,long,android.app.PendingIntent)void", introduced=19),
                _m("setExactAndAllowWhileIdle",
                   "(int,long,android.app.PendingIntent)void", introduced=23),
            ),
        ),
        ClassHistory("android.app.PendingIntent"),
        ClassHistory(
            "android.app.job.JobScheduler",
            introduced=21,
            methods=(_m("schedule", "(android.app.job.JobInfo)int", introduced=21),),
        ),
        ClassHistory("android.app.job.JobInfo", introduced=21),
        # -- permission-guarded APIs -----------------------------------
        ClassHistory(
            "android.hardware.Camera",
            methods=(
                _m("open", "()android.hardware.Camera",
                   permissions=("android.permission.CAMERA",)),
                _m("open", "(int)android.hardware.Camera", introduced=9,
                   permissions=("android.permission.CAMERA",)),
                _m("release"),
            ),
        ),
        ClassHistory(
            "android.hardware.camera2.CameraManager",
            introduced=21,
            methods=(
                _m("openCamera",
                   "(java.lang.String,android.hardware.camera2.CameraDevice$StateCallback,android.os.Handler)void",
                   introduced=21,
                   permissions=("android.permission.CAMERA",)),
            ),
        ),
        ClassHistory(
            "android.hardware.camera2.CameraDevice$StateCallback",
            introduced=21,
            methods=(
                _m("onOpened", "(android.hardware.camera2.CameraDevice)void",
                   introduced=21, callback=True),
                _m("onDisconnected", "(android.hardware.camera2.CameraDevice)void",
                   introduced=21, callback=True),
            ),
        ),
        ClassHistory("android.hardware.camera2.CameraDevice", introduced=21),
        ClassHistory(
            "android.location.LocationManager",
            methods=(
                _m("getLastKnownLocation",
                   "(java.lang.String)android.location.Location",
                   permissions=("android.permission.ACCESS_FINE_LOCATION",)),
                _m("requestLocationUpdates",
                   "(java.lang.String,long,float,android.location.LocationListener)void",
                   permissions=("android.permission.ACCESS_FINE_LOCATION",)),
            ),
        ),
        ClassHistory("android.location.Location"),
        ClassHistory(
            "android.location.LocationListener",
            methods=(
                _m("onLocationChanged", "(android.location.Location)void", callback=True),
            ),
        ),
        ClassHistory(
            "android.location.Geocoder",
            introduced=2,
            methods=(
                # Deep permission chain: the geocoder consults the last
                # known location internally, so its *transitive*
                # permission set includes ACCESS_FINE_LOCATION even
                # though it enforces nothing directly.
                _m("getFromLocation", "(double,double,int)java.util.List",
                   calls=(("android.location.LocationManager",
                           "getLastKnownLocation",
                           "(java.lang.String)android.location.Location"),)),
            ),
        ),
        ClassHistory(
            "android.telephony.TelephonyManager",
            methods=(
                _m("getDeviceId", "()java.lang.String",
                   permissions=("android.permission.READ_PHONE_STATE",)),
                _m("getLine1Number", "()java.lang.String",
                   permissions=("android.permission.READ_PHONE_STATE",
                                "android.permission.READ_PHONE_NUMBERS")),
            ),
        ),
        ClassHistory(
            "android.telephony.SmsManager",
            introduced=4,
            methods=(
                _m("sendTextMessage",
                   "(java.lang.String,java.lang.String,java.lang.String,android.app.PendingIntent,android.app.PendingIntent)void",
                   introduced=4,
                   permissions=("android.permission.SEND_SMS",)),
            ),
        ),
        ClassHistory(
            "android.media.MediaRecorder",
            methods=(
                _m("setAudioSource", "(int)void",
                   permissions=("android.permission.RECORD_AUDIO",)),
                _m("start"),
                _m("stop"),
            ),
        ),
        ClassHistory(
            "android.provider.MediaStore$Images$Media",
            methods=(
                _m("insertImage",
                   "(android.content.ContentResolver,android.graphics.Bitmap,java.lang.String,java.lang.String)java.lang.String",
                   permissions=("android.permission.WRITE_EXTERNAL_STORAGE",)),
            ),
        ),
        ClassHistory(
            "android.content.ContentResolver",
            methods=(
                _m("query",
                   "(android.net.Uri,java.lang.String[],java.lang.String,java.lang.String[],java.lang.String)android.database.Cursor"),
                _m("insert",
                   "(android.net.Uri,android.content.ContentValues)android.net.Uri"),
            ),
        ),
        ClassHistory(
            "android.provider.ContactsContract",
            methods=(
                # Deep chain: reading contacts goes through the resolver
                # but enforces READ_CONTACTS at this entry point.
                _m("queryContacts",
                   "(android.content.ContentResolver)android.database.Cursor",
                   permissions=("android.permission.READ_CONTACTS",),
                   calls=(("android.content.ContentResolver", "query",
                           "(android.net.Uri,java.lang.String[],java.lang.String,java.lang.String[],java.lang.String)android.database.Cursor"),)),
            ),
        ),
        ClassHistory(
            "android.os.Environment",
            methods=(
                _m("getExternalStorageDirectory", "()java.io.File"),
                _m("getExternalStorageState", "()java.lang.String"),
                _m("isExternalStorageManager", "()boolean", introduced=29),
            ),
        ),
        ClassHistory("java.io.File", methods=(_m("exists", "()boolean"), _m("mkdirs", "()boolean"))),
        # -- behavior-only (semantic) deltas ---------------------------
        # Methods whose signature and availability never change, but
        # whose *behavior* differs across levels — the SEM mismatch
        # family.  All documented Android facts: formatFileSize
        # switched from powers of 1024 to powers of 1000 in O,
        # clipboard access started returning null without focus in Q,
        # background vibration throws from O, cookies default-changed
        # for insecure schemes, network info went per-default-network.
        ClassHistory(
            "android.text.format.Formatter",
            methods=(
                _m("formatFileSize",
                   "(android.content.Context,long)java.lang.String",
                   semantics=((26, "return-contract",
                               "sizes use powers of 1000, not 1024"),)),
                _m("formatIpAddress", "(int)java.lang.String"),
            ),
        ),
        ClassHistory(
            "android.content.ClipboardManager",
            methods=(
                _m("getText", "()java.lang.CharSequence",
                   semantics=((29, "return-contract",
                               "returns null when the app lacks input "
                               "focus"),)),
                _m("setText", "(java.lang.CharSequence)void"),
            ),
        ),
        ClassHistory(
            "android.os.Vibrator",
            methods=(
                _m("vibrate", "(long)void",
                   semantics=((26, "new-exception",
                               "throws IllegalStateException from "
                               "background processes"),)),
                _m("cancel"),
            ),
        ),
        ClassHistory(
            "android.webkit.CookieManager",
            methods=(
                _m("setAcceptCookie", "(boolean)void",
                   semantics=((24, "default-change",
                               "cookies rejected for insecure schemes "
                               "by default"),)),
                _m("flush"),
            ),
        ),
        ClassHistory(
            "android.net.ConnectivityManager",
            methods=(
                _m("getNetworkInfo", "(int)android.net.NetworkInfo",
                   semantics=(
                       (23, "return-contract",
                        "may return null for untracked transports"),
                       (28, "default-change",
                        "always reflects the default network"),
                   )),
                _m("isActiveNetworkMetered", "()boolean", introduced=16),
            ),
        ),
        ClassHistory("android.net.NetworkInfo"),
        # -- removed API family (real: Apache HTTP removed at 23) ------
        ClassHistory(
            "org.apache.http.client.HttpClient",
            introduced=2,
            removed=23,
            methods=(
                _m("execute",
                   "(org.apache.http.HttpRequest)org.apache.http.HttpResponse",
                   removed=23),
            ),
        ),
        ClassHistory(
            "org.apache.http.impl.client.DefaultHttpClient",
            super_name="org.apache.http.client.HttpClient",
            introduced=2,
            removed=23,
            methods=(_m("<init>", removed=23),),
        ),
        ClassHistory("org.apache.http.HttpRequest", introduced=2, removed=23),
        ClassHistory("org.apache.http.HttpResponse", introduced=2, removed=23),
        # -- assorted platform plumbing --------------------------------
        ClassHistory(
            "android.content.Intent",
            methods=(
                _m("<init>", "(java.lang.String)void"),
                _m("setAction", "(java.lang.String)android.content.Intent"),
                _m("putExtra", "(java.lang.String,java.lang.String)android.content.Intent"),
            ),
        ),
        ClassHistory("android.content.ContentValues"),
        ClassHistory("android.net.Uri"),
        ClassHistory("android.database.Cursor"),
        ClassHistory("android.content.res.Resources"),
        ClassHistory("android.content.res.ColorStateList"),
        ClassHistory("android.graphics.drawable.Drawable"),
        ClassHistory("android.graphics.Canvas"),
        ClassHistory("android.graphics.Bitmap"),
        ClassHistory("android.os.Bundle"),
        ClassHistory("android.os.IBinder"),
        ClassHistory("android.os.Handler", methods=(_m("post", "(java.lang.Runnable)boolean"),)),
        ClassHistory("java.lang.Runnable", methods=(_m("run", callback=True),)),
        ClassHistory(
            "android.content.pm.PackageManager",
            methods=(
                _m("checkPermission", "(java.lang.String,java.lang.String)int"),
                _m("hasSystemFeature", "(java.lang.String)boolean", introduced=5),
            ),
        ),
        ClassHistory(
            "android.content.SharedPreferences$Editor",
            methods=(
                _m("commit", "()boolean"),
                _m("apply", introduced=9),
            ),
        ),
        ClassHistory(
            "android.os.AsyncTask",
            introduced=3,
            methods=(
                _m("execute", "(java.lang.Object[])android.os.AsyncTask", introduced=3),
                _m("onPreExecute", introduced=3, callback=True),
                _m("onPostExecute", "(java.lang.Object)void", introduced=3, callback=True),
                _m("doInBackground", "(java.lang.Object[])java.lang.Object", introduced=3, callback=True),
            ),
        ),
        ClassHistory(
            "android.preference.PreferenceActivity",
            super_name=act,
            methods=(
                _m("addPreferencesFromResource", "(int)void"),
                _m("onBuildHeaders", "(java.util.List)void", introduced=11, callback=True),
            ),
        ),
        ClassHistory("java.util.List"),
    )


# ---------------------------------------------------------------------------
# procedural bulk
# ---------------------------------------------------------------------------

_BULK_PACKAGES: tuple[tuple[str, float], ...] = (
    ("android.widget", 0.16),
    ("android.view.internal", 0.10),
    ("android.media", 0.08),
    ("android.graphics", 0.10),
    ("android.net.wifi", 0.05),
    ("android.database.sqlite", 0.05),
    ("android.os.storage", 0.04),
    ("android.text.style", 0.05),
    ("android.util", 0.05),
    ("android.animation", 0.04),
    ("android.transition", 0.03),
    ("android.print", 0.02),
    ("android.nfc", 0.02),
    ("android.bluetooth", 0.04),
    ("android.accounts", 0.02),
    ("android.security.keystore", 0.03),
    ("java.util.concurrent", 0.06),
    ("java.io.internal", 0.03),
    ("java.nio.channels", 0.03),
)

_NOUNS = (
    "Layout", "Adapter", "Manager", "Session", "Request", "Response",
    "Channel", "Buffer", "Cache", "Codec", "Track", "Surface", "Matrix",
    "Shader", "Paint", "Span", "Animator", "Transition", "Printer",
    "Tag", "Socket", "Account", "Key", "Store", "Queue", "Pool",
    "Loader", "Parser", "Cursor", "Helper", "Monitor", "Router",
)

_VERBS = (
    "attach", "detach", "refresh", "update", "compute", "resolve",
    "bind", "unbind", "flush", "reset", "configure", "measure",
    "layout", "draw", "scan", "connect", "disconnect", "open",
    "close", "query", "insert", "remove", "apply", "commit",
)

#: Introduction-level weights: the bulk of the platform predates the
#: levels apps commonly guard against, with steady additions after.
_LEVEL_WEIGHTS = {
    2: 30, 3: 2, 4: 2, 5: 3, 7: 2, 8: 3, 9: 3, 11: 6, 14: 5, 16: 5,
    17: 2, 18: 2, 19: 4, 21: 8, 22: 2, 23: 8, 24: 4, 25: 1, 26: 6,
    27: 1, 28: 4, 29: 3,
}


def _weighted_level(rng: random.Random) -> int:
    levels = list(_LEVEL_WEIGHTS)
    weights = list(_LEVEL_WEIGHTS.values())
    return rng.choices(levels, weights=weights, k=1)[0]


def bulk_histories(
    count: int = DEFAULT_BULK_CLASSES, seed: int = DEFAULT_SEED
) -> tuple[ClassHistory, ...]:
    """Procedurally generate ``count`` framework class histories.

    Generation runs in two passes: the first pass fixes every class and
    method skeleton; the second wires call edges between existing
    methods (including cross-class chains ending at permission
    enforcement sites), guaranteeing the spec validates.
    """
    rng = random.Random(seed)

    # Pass 1: skeletons.
    skeletons: list[dict] = []
    package_names = [p for p, _ in _BULK_PACKAGES]
    package_weights = [w for _, w in _BULK_PACKAGES]
    per_package_base: dict[str, str | None] = {}
    for index in range(count):
        package = rng.choices(package_names, weights=package_weights, k=1)[0]
        noun = rng.choice(_NOUNS)
        class_name = f"{package}.{noun}{index}"
        introduced = _weighted_level(rng)
        removed = None
        if rng.random() < 0.03 and introduced <= 24:
            removed = rng.randint(introduced + 2, 29)

        # Some classes extend a per-package base class (first generated
        # member of the package at level 2 becomes the base).
        super_name = "java.lang.Object"
        base = per_package_base.get(package)
        if base is None and introduced == 2:
            per_package_base[package] = class_name
        elif base is not None and rng.random() < 0.25 and removed is None:
            super_name = base

        method_count = rng.randint(4, 14)
        methods: list[dict] = []
        seen_signatures: set[str] = set()
        for m_index in range(method_count):
            verb = rng.choice(_VERBS)
            m_name = f"{verb}{noun}" if m_index % 3 else verb
            descriptor = rng.choice(
                ("()void", "(int)void", "(int,int)void",
                 "(java.lang.String)void", "()int", "()boolean")
            )
            if f"{m_name}{descriptor}" in seen_signatures:
                m_name = f"{m_name}{m_index}"
            seen_signatures.add(f"{m_name}{descriptor}")
            m_introduced = max(introduced, _weighted_level(rng))
            m_removed = None
            if removed is not None:
                m_removed = removed
                m_introduced = min(m_introduced, removed - 1)
            elif rng.random() < 0.02 and m_introduced <= 25:
                m_removed = rng.randint(m_introduced + 1, 29)
            is_callback = rng.random() < 0.10
            if is_callback:
                m_name = "on" + m_name[0].upper() + m_name[1:]
                if f"{m_name}{descriptor}" in seen_signatures:
                    m_name = f"{m_name}{m_index}"
                seen_signatures.add(f"{m_name}{descriptor}")
            permissions: tuple[str, ...] = ()
            if not is_callback and rng.random() < 0.03:
                permissions = (rng.choice(DANGEROUS_PERMISSIONS),)
            methods.append(
                dict(
                    name=m_name,
                    descriptor=descriptor,
                    introduced=m_introduced,
                    removed=m_removed,
                    callback=is_callback,
                    permissions=permissions,
                    calls=[],
                )
            )
        skeletons.append(
            dict(
                name=class_name,
                super_name=super_name,
                introduced=introduced,
                removed=removed,
                methods=methods,
            )
        )

    # Pass 2: call edges.  Real framework call graphs are *local*: a
    # widget calls other widgets and a handful of core utilities, not
    # arbitrary classes across the platform.  Each non-callback method
    # gets 0-2 callees drawn from a small neighborhood window of
    # classes, with a small probability of reaching a (nearby)
    # permission-enforcing method so deep permission chains exist
    # without turning the whole framework into one connected component
    # — lazy loading must have something to be lazy about.
    methods_by_class: list[list[tuple[str, dict]]] = [
        [(skeleton["name"], method) for method in skeleton["methods"]]
        for skeleton in skeletons
    ]
    enforcing_by_class: list[list[tuple[str, dict]]] = [
        [(cls, m) for cls, m in bucket if m["permissions"]]
        for bucket in methods_by_class
    ]
    neighborhood = 5  # classes on either side considered "nearby"
    for class_index, skeleton in enumerate(skeletons):
        lo = max(0, class_index - neighborhood)
        hi = min(len(skeletons), class_index + neighborhood + 1)
        nearby = [
            item
            for bucket in methods_by_class[lo:hi]
            for item in bucket
        ]
        nearby_enforcing = [
            item
            for bucket in enforcing_by_class[lo:hi]
            for item in bucket
        ]
        for method in skeleton["methods"]:
            if method["callback"]:
                continue
            for _ in range(rng.randint(0, 2)):
                if nearby_enforcing and rng.random() < 0.10:
                    target_cls, target = rng.choice(nearby_enforcing)
                else:
                    target_cls, target = rng.choice(nearby)
                if target_cls == skeleton["name"] and target is method:
                    continue
                method["calls"].append(
                    MethodRef(target_cls, target["name"], target["descriptor"])
                )

    histories = tuple(
        ClassHistory(
            name=skeleton["name"],
            super_name=skeleton["super_name"],
            introduced=skeleton["introduced"],
            removed=skeleton["removed"],
            methods=tuple(
                MethodHistory(
                    name=m["name"],
                    descriptor=m["descriptor"],
                    introduced=m["introduced"],
                    removed=m["removed"],
                    callback=m["callback"],
                    permissions=m["permissions"],
                    calls=tuple(m["calls"]),
                )
                for m in skeleton["methods"]
            ),
        )
        for skeleton in skeletons
    )
    return histories


def build_spec(
    bulk_classes: int = DEFAULT_BULK_CLASSES, seed: int = DEFAULT_SEED
) -> FrameworkSpec:
    """Assemble and validate the full framework spec."""
    spec = FrameworkSpec(curated_histories() + bulk_histories(bulk_classes, seed))
    spec.validate()
    return spec


@lru_cache(maxsize=4)
def default_spec() -> FrameworkSpec:
    """The shared default framework spec (cached; it is immutable)."""
    return build_spec()
