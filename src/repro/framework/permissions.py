"""Android permission model.

Defines the dangerous-permission set of the runtime permission system
(API level 23+) and the :class:`PermissionMap` relating framework API
methods to the permissions their execution requires — the artifact the
paper's ARM component derives from PScout, extended with transitive
mappings obtained by analyzing framework code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.types import MethodRef

__all__ = [
    "DANGEROUS_PERMISSIONS",
    "PERMISSION_GROUPS",
    "is_dangerous",
    "PermissionMap",
]

#: Permission groups of the API-23 runtime permission system.  The
#: paper (section II-C) counts 26 dangerous permissions; these are the
#: 24 level-23 permissions plus the two added at level 26.
PERMISSION_GROUPS: dict[str, tuple[str, ...]] = {
    "CALENDAR": (
        "android.permission.READ_CALENDAR",
        "android.permission.WRITE_CALENDAR",
    ),
    "CAMERA": ("android.permission.CAMERA",),
    "CONTACTS": (
        "android.permission.READ_CONTACTS",
        "android.permission.WRITE_CONTACTS",
        "android.permission.GET_ACCOUNTS",
    ),
    "LOCATION": (
        "android.permission.ACCESS_FINE_LOCATION",
        "android.permission.ACCESS_COARSE_LOCATION",
    ),
    "MICROPHONE": ("android.permission.RECORD_AUDIO",),
    "PHONE": (
        "android.permission.READ_PHONE_STATE",
        "android.permission.READ_PHONE_NUMBERS",
        "android.permission.CALL_PHONE",
        "android.permission.ANSWER_PHONE_CALLS",
        "android.permission.READ_CALL_LOG",
        "android.permission.WRITE_CALL_LOG",
        "android.permission.ADD_VOICEMAIL",
        "android.permission.USE_SIP",
        "android.permission.PROCESS_OUTGOING_CALLS",
    ),
    "SENSORS": ("android.permission.BODY_SENSORS",),
    "SMS": (
        "android.permission.SEND_SMS",
        "android.permission.RECEIVE_SMS",
        "android.permission.READ_SMS",
        "android.permission.RECEIVE_WAP_PUSH",
        "android.permission.RECEIVE_MMS",
    ),
    "STORAGE": (
        "android.permission.READ_EXTERNAL_STORAGE",
        "android.permission.WRITE_EXTERNAL_STORAGE",
    ),
}

#: Flat, ordered tuple of all dangerous permissions (26 entries).
DANGEROUS_PERMISSIONS: tuple[str, ...] = tuple(
    permission
    for group in PERMISSION_GROUPS.values()
    for permission in group
)

_DANGEROUS_SET = frozenset(DANGEROUS_PERMISSIONS)


def is_dangerous(permission: str) -> bool:
    """True for permissions the user can grant/revoke at runtime."""
    return permission in _DANGEROUS_SET


@dataclass
class PermissionMap:
    """API method → required permissions, PScout-style.

    ``direct`` records permissions enforced *inside the method itself*;
    ``transitive`` closes ``direct`` over the framework call graph, so
    an API whose implementation eventually reaches an enforcement site
    is mapped even when the enforcement is buried several calls deep —
    the depth-sensitivity SAINTDroid gains by analyzing actual ADF code.
    """

    direct: dict[MethodRef, frozenset[str]] = field(default_factory=dict)
    transitive: dict[MethodRef, frozenset[str]] = field(default_factory=dict)

    def permissions_for(
        self, method: MethodRef, *, deep: bool = True
    ) -> frozenset[str]:
        """Permissions required to execute ``method``.

        ``deep=True`` consults the transitive map (SAINTDroid's view);
        ``deep=False`` the direct map only (a first-level tool's view).
        """
        table = self.transitive if deep else self.direct
        return table.get(method, frozenset())

    def dangerous_permissions_for(
        self, method: MethodRef, *, deep: bool = True
    ) -> frozenset[str]:
        return frozenset(
            p for p in self.permissions_for(method, deep=deep)
            if is_dangerous(p)
        )

    def add_direct(self, method: MethodRef, permissions: frozenset[str]) -> None:
        if permissions:
            merged = self.direct.get(method, frozenset()) | permissions
            self.direct[method] = merged

    def mapped_methods(self, *, deep: bool = True) -> tuple[MethodRef, ...]:
        table = self.transitive if deep else self.direct
        return tuple(table)

    def __len__(self) -> int:
        return len(self.transitive)
