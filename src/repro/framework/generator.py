"""Materialize concrete framework classes from the declarative spec.

For a given API level the generator produces real IR classes with real
method bodies.  Three body shapes matter to the analyses:

* **regular methods** carry deterministic padding, the call edges the
  spec declares (filtered to callees alive at the level), and — when
  the spec assigns permissions — the canonical enforcement idiom
  ``const-string vP, "<permission>"`` followed by an invoke of
  ``Context.enforceCallingOrSelfPermission``.  ARM's image miner
  rediscovers permission requirements from that idiom via reaching
  definitions, not from the spec;
* **callbacks** have empty (bare-return) bodies: they are default
  hooks apps override.  Every class also gets a synthetic
  ``_dispatch…`` method invoking each of its callbacks, so callbacks
  are discoverable purely from framework code — the property that lets
  SAINTDroid avoid CIDER's hand-built callback models;
* **removed/not-yet-introduced methods** simply do not exist in the
  image for that level.
"""

from __future__ import annotations

from ..ir.builder import ClassBuilder, MethodBuilder
from ..ir.instructions import InvokeKind
from ..ir.method import Method, MethodFlags
from ..ir.types import ClassName, MethodRef
from .spec import ClassHistory, FrameworkSpec, MethodHistory

__all__ = [
    "ENFORCEMENT_METHOD",
    "DISPATCH_PREFIX",
    "materialize_class",
    "materialize_image",
]

#: The framework-internal permission enforcement sink.
ENFORCEMENT_METHOD = MethodRef(
    "android.content.Context",
    "enforceCallingOrSelfPermission",
    "(java.lang.String,java.lang.String)void",
)

#: Prefix of synthetic framework dispatcher methods (not public API).
DISPATCH_PREFIX = "_dispatch$"


def _padding_amount(ref: MethodRef) -> int:
    """Deterministic per-method padding size (4..11 instructions)."""
    return 4 + (hash((ref.class_name, ref.name, ref.descriptor)) & 7)


def _emit_regular_body(
    builder: MethodBuilder,
    history: MethodHistory,
    spec: FrameworkSpec,
    level: int,
) -> None:
    """Body of a non-callback framework method at ``level``."""
    for i in range(_padding_amount(builder.ref)):
        builder.const_int(dest=i % 4, value=i)
    for permission in history.permissions:
        builder.const_string(8, permission)
        builder.const_string(9, f"{builder.ref.name} requires {permission}")
        builder.invoke_ref(InvokeKind.VIRTUAL, ENFORCEMENT_METHOD, args=(8, 9))
    for callee in history.calls:
        target = spec.find_method(
            callee.class_name, callee.name + callee.descriptor
        )
        if target is not None and target.exists_at(level):
            builder.invoke_ref(InvokeKind.VIRTUAL, callee, args=())
    if builder.ref.return_type != "void":
        builder.const_int(10, 0)
        builder.return_value(10)
    else:
        builder.return_void()


def _dispatch_method(
    class_name: ClassName, callbacks: list[MethodHistory], index: int
) -> Method:
    """Synthetic dispatcher invoking the class's callbacks virtually."""
    ref = MethodRef(class_name, f"{DISPATCH_PREFIX}{index}", "()void")
    builder = MethodBuilder(ref, flags=MethodFlags.SYNTHETIC)
    for callback in callbacks:
        builder.invoke_virtual(
            class_name, callback.name, callback.descriptor, args=()
        )
    builder.return_void()
    return builder.build()


def materialize_class(
    spec: FrameworkSpec, name: ClassName, level: int
):
    """Build the IR class for ``name`` at ``level``.

    Returns ``None`` when the class does not exist at that level.
    """
    history = spec.clazz(name)
    if history is None or not history.exists_at(level):
        return None
    return _materialize(history, spec, level)


def _materialize(
    history: ClassHistory, spec: FrameworkSpec, level: int
):
    builder = ClassBuilder(
        name=history.name,
        super_name=history.super_name,
        interfaces=history.interfaces,
        origin="framework",
    )
    callbacks: list[MethodHistory] = []
    for method_history in history.methods_at(level):
        ref = MethodRef(
            history.name, method_history.name, method_history.descriptor
        )
        method_builder = MethodBuilder(ref)
        if method_history.callback:
            callbacks.append(method_history)
            method_builder.return_void()
        else:
            _emit_regular_body(method_builder, method_history, spec, level)
        builder.add(method_builder.build())
    if callbacks:
        builder.add(_dispatch_method(history.name, callbacks, 0))
    return builder.build()


def materialize_image(spec: FrameworkSpec, level: int):
    """Eagerly build every class alive at ``level``.

    This is what whole-framework tools (CID) effectively do before any
    per-app analysis; its cost is the scalability foil of the paper.
    """
    image = {}
    for name in spec.class_names_at(level):
        clazz = materialize_class(spec, name, level)
        if clazz is not None:
            image[name] = clazz
    return image
