"""Materialize concrete framework classes from the declarative spec.

For a given API level the generator produces real IR classes with real
method bodies.  Three body shapes matter to the analyses:

* **regular methods** carry deterministic padding, the call edges the
  spec declares (filtered to callees alive at the level), and — when
  the spec assigns permissions — the canonical enforcement idiom
  ``const-string vP, "<permission>"`` followed by an invoke of
  ``Context.enforceCallingOrSelfPermission``.  ARM's image miner
  rediscovers permission requirements from that idiom via reaching
  definitions, not from the spec;
* **callbacks** have empty (bare-return) bodies: they are default
  hooks apps override.  Every class also gets a synthetic
  ``_dispatch…`` method invoking each of its callbacks, so callbacks
  are discoverable purely from framework code — the property that lets
  SAINTDroid avoid CIDER's hand-built callback models;
* **removed/not-yet-introduced methods** simply do not exist in the
  image for that level.
"""

from __future__ import annotations

from ..ir.builder import ClassBuilder, MethodBuilder
from ..ir.instructions import InvokeKind
from ..ir.method import Method, MethodFlags
from ..ir.types import ClassName, MethodRef
from .spec import ClassHistory, FrameworkSpec, MethodHistory

__all__ = [
    "ENFORCEMENT_METHOD",
    "DISPATCH_PREFIX",
    "SEMANTICS_PREFIX",
    "semantic_tag",
    "parse_semantic_tag",
    "materialize_class",
    "materialize_image",
]

#: The framework-internal permission enforcement sink.
ENFORCEMENT_METHOD = MethodRef(
    "android.content.Context",
    "enforceCallingOrSelfPermission",
    "(java.lang.String,java.lang.String)void",
)

#: Prefix of synthetic framework dispatcher methods (not public API).
DISPATCH_PREFIX = "_dispatch$"

#: Prefix of synthetic per-class semantic manifest methods.  Like the
#: dispatchers, these exist so ARM's image miner can rediscover
#: declarative facts — here the behavior-only deltas — purely from
#: framework code: the manifest body is a sequence of ``const-string``
#: tags, one per delta of the class's methods alive at the level.
SEMANTICS_PREFIX = "_semantics$"


def semantic_tag(method: MethodHistory, delta) -> str:
    """The manifest encoding of one delta of one method."""
    return (
        f"{method.name}{method.descriptor}"
        f"|{delta.level}|{delta.change}|{delta.detail}"
    )


def parse_semantic_tag(tag: str) -> tuple[str, int, str, str] | None:
    """Decode a manifest tag into ``(signature, level, change,
    detail)``; ``None`` for strings that are not manifest tags."""
    parts = tag.split("|", 3)
    if len(parts) != 4 or "(" not in parts[0]:
        return None
    try:
        level = int(parts[1])
    except ValueError:
        return None
    return (parts[0], level, parts[2], parts[3])


def _padding_amount(ref: MethodRef) -> int:
    """Deterministic per-method padding size (4..11 instructions)."""
    return 4 + (hash((ref.class_name, ref.name, ref.descriptor)) & 7)


def _emit_regular_body(
    builder: MethodBuilder,
    history: MethodHistory,
    spec: FrameworkSpec,
    level: int,
) -> None:
    """Body of a non-callback framework method at ``level``."""
    for i in range(_padding_amount(builder.ref)):
        builder.const_int(dest=i % 4, value=i)
    for permission in history.permissions:
        builder.const_string(8, permission)
        builder.const_string(9, f"{builder.ref.name} requires {permission}")
        builder.invoke_ref(InvokeKind.VIRTUAL, ENFORCEMENT_METHOD, args=(8, 9))
    for callee in history.calls:
        target = spec.find_method(
            callee.class_name, callee.name + callee.descriptor
        )
        if target is not None and target.exists_at(level):
            builder.invoke_ref(InvokeKind.VIRTUAL, callee, args=())
    if builder.ref.return_type != "void":
        builder.const_int(10, 0)
        builder.return_value(10)
    else:
        builder.return_void()


def _dispatch_method(
    class_name: ClassName, callbacks: list[MethodHistory], index: int
) -> Method:
    """Synthetic dispatcher invoking the class's callbacks virtually."""
    ref = MethodRef(class_name, f"{DISPATCH_PREFIX}{index}", "()void")
    builder = MethodBuilder(ref, flags=MethodFlags.SYNTHETIC)
    for callback in callbacks:
        builder.invoke_virtual(
            class_name, callback.name, callback.descriptor, args=()
        )
    builder.return_void()
    return builder.build()


def _semantics_method(
    class_name: ClassName, carriers: list[MethodHistory], index: int
) -> Method:
    """Synthetic manifest listing the class's semantic deltas.

    The body is inert — const-string tags and a bare return, no
    invokes — so it cannot perturb call-edge mining, summaries, or
    exploration of framework bodies."""
    ref = MethodRef(class_name, f"{SEMANTICS_PREFIX}{index}", "()void")
    builder = MethodBuilder(ref, flags=MethodFlags.SYNTHETIC)
    for method in carriers:
        for delta in method.semantics:
            builder.const_string(0, semantic_tag(method, delta))
    builder.return_void()
    return builder.build()


def materialize_class(
    spec: FrameworkSpec, name: ClassName, level: int
):
    """Build the IR class for ``name`` at ``level``.

    Returns ``None`` when the class does not exist at that level.
    """
    history = spec.clazz(name)
    if history is None or not history.exists_at(level):
        return None
    return _materialize(history, spec, level)


def _materialize(
    history: ClassHistory, spec: FrameworkSpec, level: int
):
    builder = ClassBuilder(
        name=history.name,
        super_name=history.super_name,
        interfaces=history.interfaces,
        origin="framework",
    )
    callbacks: list[MethodHistory] = []
    carriers: list[MethodHistory] = []
    for method_history in history.methods_at(level):
        ref = MethodRef(
            history.name, method_history.name, method_history.descriptor
        )
        method_builder = MethodBuilder(ref)
        if method_history.callback:
            callbacks.append(method_history)
            method_builder.return_void()
        else:
            _emit_regular_body(method_builder, method_history, spec, level)
        if method_history.semantics:
            carriers.append(method_history)
        builder.add(method_builder.build())
    if callbacks:
        builder.add(_dispatch_method(history.name, callbacks, 0))
    if carriers:
        builder.add(_semantics_method(history.name, carriers, 0))
    return builder.build()


def materialize_image(spec: FrameworkSpec, level: int):
    """Eagerly build every class alive at ``level``.

    This is what whole-framework tools (CID) effectively do before any
    per-app analysis; its cost is the scalability foil of the paper.
    """
    image = {}
    for name in spec.class_names_at(level):
        clazz = materialize_class(spec, name, level)
        if clazz is not None:
            image[name] = clazz
    return image
