"""Versioned framework repository: lazy, cached class provider.

The repository is the single source of framework code for every
analysis.  Lazy lookups (:meth:`load_class`) back SAINTDroid's CLVM;
eager image loads (:meth:`load_image`) back the whole-framework
baselines.  Both are cached so repeated benchmark runs measure
analysis behaviour, not regeneration cost — the *accounting* of what
was loaded happens in each tool's metrics, not here.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apk.manifest import MAX_API_LEVEL, MIN_API_LEVEL
from ..ir.clazz import Clazz
from ..ir.types import ClassName, is_framework_class
from .catalog import default_spec
from .generator import materialize_class, materialize_image
from .spec import FrameworkSpec

__all__ = ["FrameworkCacheStats", "FrameworkRepository"]


@dataclass
class FrameworkCacheStats:
    """Hit/miss accounting for the shared class/image caches.

    Framework IR is immutable per level, so a class materialized for
    one app is served from cache to every later :class:`ClassLoaderVM`
    over the same repository — a hit here is a parse the corpus run
    did *not* pay for again."""

    class_hits: int = 0
    class_misses: int = 0
    image_hits: int = 0
    image_misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.class_hits + self.class_misses
        return self.class_hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "class_hits": self.class_hits,
            "class_misses": self.class_misses,
            "image_hits": self.image_hits,
            "image_misses": self.image_misses,
            "hit_rate": self.hit_rate,
        }


class FrameworkRepository:
    """Serves framework classes for any API level in [2, 29]."""

    def __init__(self, spec: FrameworkSpec | None = None) -> None:
        self._spec = spec if spec is not None else default_spec()
        self._class_cache: dict[tuple[int, ClassName], Clazz | None] = {}
        self._image_cache: dict[int, dict[ClassName, Clazz]] = {}
        self._dispatch_memos: dict[int, dict] = {}
        self.cache_stats = FrameworkCacheStats()

    def dispatch_memo(self, level: int) -> dict:
        """Shared per-level dispatch resolutions for framework callees.

        Framework-internal dispatch is a pure function of (spec, level)
        as long as the app does not shadow a framework class name, so
        dedup-mode explorers resolve each framework callee once per
        process instead of once per app.  Callers gate on the shadow
        check; the repository just owns the table's lifetime."""
        memo = self._dispatch_memos.get(level)
        if memo is None:
            memo = self._dispatch_memos[level] = {}
        return memo

    @property
    def spec(self) -> FrameworkSpec:
        return self._spec

    @property
    def levels(self) -> range:
        return range(MIN_API_LEVEL, MAX_API_LEVEL + 1)

    def _check_level(self, level: int) -> None:
        if level not in self.levels:
            raise ValueError(
                f"API level {level} outside modeled range "
                f"[{MIN_API_LEVEL}, {MAX_API_LEVEL}]"
            )

    # -- lazy access (CLVM path) --------------------------------------

    def load_class(self, name: ClassName, level: int) -> Clazz | None:
        """Materialize one class at ``level`` (None when absent)."""
        return self.load_class_cached(name, level)[0]

    def load_class_cached(
        self, name: ClassName, level: int
    ) -> tuple[Clazz | None, bool]:
        """Like :meth:`load_class`, plus whether the class was served
        warm from the shared cache (True = no parse happened)."""
        self._check_level(level)
        key = (level, name)
        try:
            clazz = self._class_cache[key]
            self.cache_stats.class_hits += 1
            return clazz, True
        except KeyError:
            self.cache_stats.class_misses += 1
        clazz = materialize_class(self._spec, name, level)
        self._class_cache[key] = clazz
        return clazz, False

    # -- snapshot support ----------------------------------------------

    def export_class_cache(
        self,
    ) -> dict[tuple[int, ClassName], Clazz | None]:
        """A copy of the materialized-class cache, for framework
        snapshots: a snapshot written after a corpus run carries every
        framework class that run touched."""
        return dict(self._class_cache)

    def preload_class_cache(
        self, entries: dict[tuple[int, ClassName], Clazz | None]
    ) -> None:
        """Install classes materialized by an earlier run (snapshot
        load); later :meth:`load_class_cached` calls on these keys are
        warm hits with no parse."""
        self._class_cache.update(entries)

    def warm_level(self, level: int) -> int:
        """Pre-warm the class cache with the complete image at
        ``level`` so every later lazy lookup is a hit; returns how many
        classes were newly installed.  This is the parent-side prep for
        pool runs: warm once here, and every forked worker (or shared-
        segment attacher) starts with the whole level warm instead of
        each re-materializing its own working set."""
        self._check_level(level)
        installed = 0
        for name, clazz in self.load_image(level).items():
            key = (level, name)
            if key not in self._class_cache:
                self._class_cache[key] = clazz
                installed += 1
        return installed

    def owns(self, name: ClassName) -> bool:
        """Whether ``name`` is in the framework namespace (regardless of
        whether any level defines it)."""
        return is_framework_class(name)

    def defines(self, name: ClassName) -> bool:
        """Whether the spec has a history for ``name`` at any level."""
        return name in self._spec

    # -- eager access (whole-framework tools) --------------------------

    def class_names(self, level: int) -> tuple[ClassName, ...]:
        self._check_level(level)
        return self._spec.class_names_at(level)

    def load_image(self, level: int) -> dict[ClassName, Clazz]:
        """The complete framework image at ``level`` (cached)."""
        self._check_level(level)
        if level not in self._image_cache:
            self.cache_stats.image_misses += 1
            self._image_cache[level] = materialize_image(self._spec, level)
        else:
            self.cache_stats.image_hits += 1
        return self._image_cache[level]

    def image_class_count(self, level: int) -> int:
        return len(self.class_names(level))

    def image_instruction_count(self, level: int) -> int:
        """Total code size of the image — the memory-model cost a
        whole-framework tool pays up front."""
        image = self.load_image(level)
        return sum(clazz.instruction_count for clazz in image.values())
