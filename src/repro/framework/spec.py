"""Declarative Android framework (ADF) revision history.

The framework is described once as a set of *histories*: every class
and method carries the API level that introduced it and (optionally)
the level that removed it.  The generator materializes a concrete
framework *image* — real IR classes with real method bodies — for any
API level, and the repository serves those images to the analyses.

This mirrors what the paper's ARM component mines out of the real
Android revision history (levels 2 through 29): which methods and
callbacks exist at each level, and which permissions each API call
requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..apk.manifest import MAX_API_LEVEL, MIN_API_LEVEL
from ..ir.types import ClassName, MethodRef

__all__ = [
    "SEMANTIC_CHANGES",
    "SemanticDelta",
    "MethodHistory",
    "ClassHistory",
    "FrameworkSpec",
]

#: The modeled classes of behavior-only API change (Pan et al.):
#: the method's return contract changes, it starts throwing a new
#: exception, or a default it relies on changes.
SEMANTIC_CHANGES = ("return-contract", "new-exception", "default-change")


@dataclass(frozen=True)
class SemanticDelta:
    """One behavior-only change in a method's history.

    ``level`` is the first API level exhibiting the *new* behavior;
    every earlier level of the method's lifetime exhibits the old one.
    The signature is unchanged — exactly the class of incompatibility
    signature-based detectors cannot see.
    """

    level: int
    change: str
    detail: str = ""

    def __post_init__(self) -> None:
        if self.change not in SEMANTIC_CHANGES:
            raise ValueError(
                f"unknown semantic change kind {self.change!r}"
            )
        if not MIN_API_LEVEL <= self.level <= MAX_API_LEVEL:
            raise ValueError(
                f"semantic delta level {self.level} out of range"
            )


@dataclass(frozen=True)
class MethodHistory:
    """Lifecycle of one framework method.

    ``introduced`` is the first API level at which the method exists;
    ``removed`` is the first level at which it no longer exists
    (``None`` = still present at the newest modeled level).

    ``callback`` marks methods the framework invokes *into* the app
    (e.g. ``Activity.onCreate``); the generator emits a framework-side
    dispatcher for each so that mining framework images rediscovers
    callback-ness from code rather than trusting this flag.

    ``permissions`` are enforced by the method itself; ``calls`` are
    deeper framework methods its body invokes — these chains are what
    let SAINTDroid find facts "deeper into the ADF code" that
    first-level-only tools miss.

    ``semantics`` are the method's behavior-only changes
    (:class:`SemanticDelta`): the signature stays put while the
    observable behavior splits at the delta level.
    """

    name: str
    descriptor: str = "()void"
    introduced: int = MIN_API_LEVEL
    removed: int | None = None
    callback: bool = False
    permissions: tuple[str, ...] = ()
    calls: tuple[MethodRef, ...] = ()
    semantics: tuple[SemanticDelta, ...] = ()

    def __post_init__(self) -> None:
        if not MIN_API_LEVEL <= self.introduced <= MAX_API_LEVEL + 1:
            raise ValueError(
                f"{self.name}: introduced level {self.introduced} out of range"
            )
        if self.removed is not None and self.removed <= self.introduced:
            raise ValueError(
                f"{self.name}: removed level {self.removed} must follow "
                f"introduced level {self.introduced}"
            )
        for delta in self.semantics:
            if delta.level <= self.introduced:
                raise ValueError(
                    f"{self.name}: semantic delta at level {delta.level} "
                    f"is not after the introduction ({self.introduced})"
                )
            if self.removed is not None and delta.level >= self.removed:
                raise ValueError(
                    f"{self.name}: semantic delta at level {delta.level} "
                    f"is past the removal ({self.removed})"
                )

    @property
    def signature(self) -> str:
        return f"{self.name}{self.descriptor}"

    def exists_at(self, level: int) -> bool:
        """True when the method is part of the API at ``level``."""
        if level < self.introduced:
            return False
        if self.removed is not None and level >= self.removed:
            return False
        return True

    @property
    def lifetime(self) -> tuple[int, int]:
        """Inclusive ``[introduced, last]`` level range."""
        last = (
            MAX_API_LEVEL if self.removed is None else self.removed - 1
        )
        return (self.introduced, last)


@dataclass(frozen=True)
class ClassHistory:
    """Lifecycle of one framework class and its methods."""

    name: ClassName
    super_name: ClassName | None = "java.lang.Object"
    introduced: int = MIN_API_LEVEL
    removed: int | None = None
    methods: tuple[MethodHistory, ...] = ()
    interfaces: tuple[ClassName, ...] = ()

    _by_signature: dict[str, MethodHistory] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.removed is not None and self.removed <= self.introduced:
            raise ValueError(
                f"{self.name}: removed level must follow introduced level"
            )
        table: dict[str, MethodHistory] = {}
        for history in self.methods:
            if history.signature in table:
                raise ValueError(
                    f"{self.name}: duplicate method history "
                    f"{history.signature}"
                )
            if history.introduced < self.introduced:
                raise ValueError(
                    f"{self.name}.{history.name}: method predates its class"
                )
            table[history.signature] = history
        object.__setattr__(self, "_by_signature", table)

    def exists_at(self, level: int) -> bool:
        if level < self.introduced:
            return False
        if self.removed is not None and level >= self.removed:
            return False
        return True

    def method(self, signature: str) -> MethodHistory | None:
        return self._by_signature.get(signature)

    def methods_at(self, level: int) -> tuple[MethodHistory, ...]:
        """Method histories alive at ``level`` (empty if class absent)."""
        if not self.exists_at(level):
            return ()
        return tuple(m for m in self.methods if m.exists_at(level))


class FrameworkSpec:
    """The complete declarative framework: class histories by name."""

    def __init__(self, classes: tuple[ClassHistory, ...]) -> None:
        self._classes: dict[ClassName, ClassHistory] = {}
        for history in classes:
            if history.name in self._classes:
                raise ValueError(f"duplicate class history {history.name}")
            self._classes[history.name] = history

    def __len__(self) -> int:
        return len(self._classes)

    def __contains__(self, name: ClassName) -> bool:
        return name in self._classes

    def clazz(self, name: ClassName) -> ClassHistory | None:
        return self._classes.get(name)

    @property
    def class_names(self) -> tuple[ClassName, ...]:
        return tuple(self._classes)

    def class_names_at(self, level: int) -> tuple[ClassName, ...]:
        return tuple(
            name
            for name, history in self._classes.items()
            if history.exists_at(level)
        )

    def method_exists(
        self, name: ClassName, signature: str, level: int
    ) -> bool:
        """Does ``name.signature`` exist at ``level`` (including
        inherited declarations up the framework hierarchy)?"""
        history = self._classes.get(name)
        while history is not None and history.exists_at(level):
            found = history.method(signature)
            if found is not None and found.exists_at(level):
                return True
            if history.super_name is None:
                return False
            history = self._classes.get(history.super_name)
        return False

    def find_method(
        self, name: ClassName, signature: str
    ) -> MethodHistory | None:
        """Resolve ``signature`` against ``name`` and its ancestors,
        ignoring levels (used for lifetime queries)."""
        history = self._classes.get(name)
        while history is not None:
            found = history.method(signature)
            if found is not None:
                return found
            if history.super_name is None:
                return None
            history = self._classes.get(history.super_name)
        return None

    def supertype_chain(self, name: ClassName) -> tuple[ClassName, ...]:
        """Framework ancestors of ``name``, nearest first."""
        chain: list[ClassName] = []
        history = self._classes.get(name)
        while history is not None and history.super_name is not None:
            chain.append(history.super_name)
            history = self._classes.get(history.super_name)
        return tuple(chain)

    def validate(self) -> None:
        """Cross-class consistency checks.

        * super classes must exist in the spec (``java.lang.Object`` is
          implicit) and must be alive whenever the subclass is alive;
        * every ``calls`` target must resolve to some history.
        """
        for history in self._classes.values():
            sup = history.super_name
            if sup is not None and sup != "java.lang.Object":
                parent = self._classes.get(sup)
                if parent is None:
                    raise ValueError(
                        f"{history.name}: unknown super class {sup}"
                    )
                if parent.introduced > history.introduced:
                    raise ValueError(
                        f"{history.name}: super {sup} introduced later"
                    )
            for method in history.methods:
                for callee in method.calls:
                    target = self.find_method(
                        callee.class_name, callee.name + callee.descriptor
                    )
                    if target is None:
                        raise ValueError(
                            f"{history.name}.{method.name}: call target "
                            f"{callee} not in spec"
                        )
