"""Android framework (ADF) substrate: revision histories, generated
framework images, the versioned repository, and the permission model."""

from .spec import ClassHistory, FrameworkSpec, MethodHistory
from .catalog import (
    DEFAULT_BULK_CLASSES,
    DEFAULT_SEED,
    build_spec,
    bulk_histories,
    curated_histories,
    default_spec,
)
from .generator import (
    DISPATCH_PREFIX,
    ENFORCEMENT_METHOD,
    materialize_class,
    materialize_image,
)
from .repository import FrameworkRepository
from .permissions import (
    DANGEROUS_PERMISSIONS,
    PERMISSION_GROUPS,
    PermissionMap,
    is_dangerous,
)

__all__ = [
    "ClassHistory",
    "DANGEROUS_PERMISSIONS",
    "DEFAULT_BULK_CLASSES",
    "DEFAULT_SEED",
    "DISPATCH_PREFIX",
    "ENFORCEMENT_METHOD",
    "FrameworkRepository",
    "FrameworkSpec",
    "MethodHistory",
    "PERMISSION_GROUPS",
    "PermissionMap",
    "build_spec",
    "bulk_histories",
    "curated_histories",
    "default_spec",
    "is_dangerous",
    "materialize_class",
    "materialize_image",
]
