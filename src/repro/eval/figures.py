"""Series generators for the paper's figures.

* Figure 1 — the mismatch-region diagram: computed as the backward-
  and forward-incompatibility regions over (app target level, device
  level) pairs.
* Figure 3 — scatter of analysis time vs app size (KLOC) for real-
  world apps, plus per-tool timing summaries.
* Figure 4 — per-app peak analysis memory, SAINTDroid vs CID.

The harness prints these as text (an ASCII scatter for Figure 3) and
the raw series are returned so users can plot them with any tool.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apk.manifest import MAX_API_LEVEL, MIN_API_LEVEL
from .runner import RunResults

__all__ = [
    "figure1_regions",
    "figure3_series",
    "figure4_series",
    "TimingSummary",
    "ascii_scatter",
]


def figure1_regions(app_level: int) -> dict[int, str]:
    """Figure 1: classify each device level against an app's target.

    ``backward`` marks the region where the device predates APIs the
    app may use; ``forward`` where the device may have removed them;
    ``compatible`` the matching level.
    """
    regions: dict[int, str] = {}
    for device in range(MIN_API_LEVEL, MAX_API_LEVEL + 1):
        if device < app_level:
            regions[device] = "backward-mismatch-risk"
        elif device > app_level:
            regions[device] = "forward-mismatch-risk"
        else:
            regions[device] = "compatible"
    return regions


@dataclass
class TimingSummary:
    tool: str
    average: float
    minimum: float
    maximum: float
    completed: int
    failed: int


def _tool_seconds(run: RunResults, tool: str) -> list[tuple[float, float]]:
    """(kloc, modeled seconds) for completed analyses."""
    points = []
    for result in run.results:
        report = result.reports.get(tool)
        if report is None or report.metrics is None:
            continue
        if report.metrics.failed:
            continue
        points.append((result.kloc, report.metrics.modeled_seconds))
    return points


def figure3_series(
    run: RunResults,
    tools: tuple[str, ...] = ("SAINTDroid", "CID", "Lint"),
) -> dict:
    """Scatter points for SAINTDroid plus per-tool timing summaries."""
    summaries: list[TimingSummary] = []
    for tool in tools:
        points = _tool_seconds(run, tool)
        failed = sum(
            1
            for result in run.results
            if tool in result.reports
            and result.reports[tool].metrics is not None
            and result.reports[tool].metrics.failed
        )
        if points:
            seconds = [s for _, s in points]
            summaries.append(
                TimingSummary(
                    tool=tool,
                    average=sum(seconds) / len(seconds),
                    minimum=min(seconds),
                    maximum=max(seconds),
                    completed=len(points),
                    failed=failed,
                )
            )
        else:
            summaries.append(
                TimingSummary(tool, 0.0, 0.0, 0.0, 0, failed)
            )
    return {
        "scatter": _tool_seconds(run, tools[0]),
        "summaries": summaries,
    }


def figure4_series(
    run: RunResults,
    tools: tuple[str, ...] = ("SAINTDroid", "CID"),
) -> dict:
    """Per-app modeled memory (MB) for the compared tools."""
    series: dict[str, list[float]] = {tool: [] for tool in tools}
    for result in run.results:
        for tool in tools:
            report = result.reports.get(tool)
            if report is None or report.metrics is None:
                continue
            series[tool].append(report.metrics.modeled_memory_mb)
    summary = {}
    for tool, values in series.items():
        if values:
            summary[tool] = {
                "average_mb": sum(values) / len(values),
                "min_mb": min(values),
                "max_mb": max(values),
            }
        else:
            summary[tool] = {"average_mb": 0.0, "min_mb": 0.0, "max_mb": 0.0}
    return {"series": series, "summary": summary}


def ascii_scatter(
    points: list[tuple[float, float]],
    *,
    width: int = 68,
    height: int = 16,
    x_label: str = "KLOC",
    y_label: str = "seconds",
) -> str:
    """Render (x, y) points as a terminal scatter plot."""
    if not points:
        return "(no data)"
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_max = max(xs) or 1.0
    y_max = max(ys) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        column = min(width - 1, int(x / x_max * (width - 1)))
        row = min(height - 1, int(y / y_max * (height - 1)))
        grid[height - 1 - row][column] = "*"
    lines = [f"{y_label} (max {y_max:.1f})"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} (max {x_max:.1f})")
    return "\n".join(lines)
