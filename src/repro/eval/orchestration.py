"""Corpus orchestration: the single retry/quarantine/checkpoint/cache
engine behind both schedulers.

:func:`run_corpus` owns everything that used to be duplicated between
the serial loop and the parallel rounds engine — checkpoint restore,
persistent-cache lookup and write-back, retry rounds with bounded
backoff, quarantine, journaling, progress, and corpus-order assembly.
A scheduler is reduced to a :class:`CorpusBackend` that answers one
question: *how does one round of pending apps get analyzed?*  The
serial backend walks them in order in-process; the pool backend
(:class:`repro.eval.parallel.PoolBackend`) fans them out over worker
processes.  Everything else — and therefore every fingerprint-relevant
decision — is this module, once.

Scheduling works in *rounds*.  Round 0 covers the whole pending
corpus.  If anything failed retryably (timeout, worker-lost,
resource), round ``r`` re-dispatches those apps — after a bounded
backoff — until they succeed or exhaust ``max_retries``, at which
point they are quarantined with their final error record.  A fault-
free run takes exactly one round; the tolerance machinery costs
nothing until something actually breaks.
"""

from __future__ import annotations

import heapq
import random
import time
from pathlib import Path
from typing import Callable, Iterable

from ..workload.appgen import ForgedApp
from .runner import (
    AppResult,
    RunResults,
    ToolSet,
    _full_jitter_backoff,
    analyze_app,
)

__all__ = [
    "CorpusBackend",
    "SerialBackend",
    "JobSource",
    "run_corpus",
    "run_stream",
    "apk_fingerprint",
]

#: One work item: corpus index, the app, and its 0-based attempt.
Entry = tuple[int, ForgedApp, int]


def apk_fingerprint(forged: ForgedApp) -> str | None:
    """Content digest of one app, or ``None`` when the package is too
    hostile to serialize (such apps are simply uncacheable)."""
    from ..cache import fingerprint_apk

    try:
        return fingerprint_apk(forged.apk)
    except Exception:  # noqa: BLE001 — uncacheable, not fatal
        return None


class CorpusBackend:
    """What a scheduler must provide to :func:`run_corpus`.

    One backend instance serves one run; it may keep round-spanning
    state (worker cache accounting, a prebuilt substrate).
    """

    @property
    def spec(self):
        """The framework spec keying the persistent cache."""
        raise NotImplementedError

    @property
    def tool_names(self) -> tuple[str, ...]:
        """Tool names, in report order (keys checkpoint + cache)."""
        raise NotImplementedError

    def config_options(self) -> dict:
        """Findings-relevant configuration beyond the tool names
        (e.g. ``{"summaries": True}``).  Keys the persistent result
        cache together with :attr:`tool_names`; must stay empty for
        the default configuration so existing caches remain valid."""
        return {}

    def prepare(
        self,
        cache_dir: str | Path | None,
        pending: Iterable[Entry] = (),
    ) -> None:
        """One-time setup before round 0, called only when at least
        one app actually needs analysis.  ``pending`` is the post-cache
        work list, so a backend can pre-warm exactly the framework
        levels the round will touch."""

    def run_round(
        self, pending: list[Entry], round_no: int
    ) -> Iterable[tuple[Entry, AppResult]]:
        """Analyze one round's entries, yielding each with its result
        (in any order; :func:`run_corpus` restores corpus order)."""
        raise NotImplementedError

    def finish(self, cache_dir: str | Path | None) -> dict:
        """Tear down and return the run's cache accounting."""
        raise NotImplementedError

    def close(self) -> None:
        """Release machine-wide resources (shared-memory segments).
        Called from a ``finally`` — it must be idempotent and safe
        even when :meth:`prepare` never ran or a round raised."""


class SerialBackend(CorpusBackend):
    """In-process scheduler: one app at a time, corpus order."""

    def __init__(
        self,
        toolset: ToolSet,
        *,
        timeout_s: float | None = None,
        fault_plan=None,
    ) -> None:
        self._toolset = toolset
        self._timeout_s = timeout_s
        self._fault_plan = fault_plan

    @property
    def spec(self):
        return self._toolset.framework.spec

    @property
    def tool_names(self) -> tuple[str, ...]:
        return self._toolset.tool_names

    def config_options(self) -> dict:
        options: dict = {}
        if self._toolset.summaries:
            options["summaries"] = True
        if self._toolset.dedup:
            options["dedup"] = True
        return options

    def run_round(
        self, pending: list[Entry], round_no: int
    ) -> Iterable[tuple[Entry, AppResult]]:
        for entry in pending:
            index, forged, attempt = entry
            fault = (
                self._fault_plan.fault_for(index)
                if self._fault_plan is not None
                else None
            )
            yield entry, analyze_app(
                self._toolset,
                forged,
                timeout_s=self._timeout_s,
                fault=fault,
                attempt=attempt,
            )

    def finish(self, cache_dir: str | Path | None) -> dict:
        if cache_dir is not None:
            from ..cache import ensure_snapshot
            from ..cache.classes import registered_stores

            # Snapshot the substrate (only written when missing) so the
            # next cold process loads it instead of rebuilding.
            ensure_snapshot(
                cache_dir, self._toolset.framework, self._toolset.apidb
            )
            # Settle the class-artifact stores: adopt stray entries,
            # enforce the byte budget, persist the manifest.
            for store in registered_stores():
                store.flush()
        return self._toolset.cache_stats()


def run_corpus(
    apps: Iterable[ForgedApp],
    backend: CorpusBackend,
    *,
    max_retries: int = 0,
    retry_backoff_s: float = 0.0,
    fault_plan=None,
    checkpoint: str | Path | None = None,
    cache_dir: str | Path | None = None,
    progress: Callable[[str], None] | None = None,
) -> RunResults:
    """Run every app through ``backend``, with the full fault-tolerance
    and caching envelope.

    The stages, identical for every scheduler:

    1. **checkpoint restore** — journaled indices are adopted verbatim
       and never re-analyzed;
    2. **persistent cache** — clean results keyed by (APK digest,
       tools, framework) are served from disk; fault-injected indices
       bypass the cache so chaos runs quarantine exactly what an
       uncached run would;
    3. **retry rounds** — ``backend.run_round`` analyzes what remains;
       retryable failures re-enter the next round (bounded backoff)
       until ``max_retries`` is spent, then quarantine;
    4. **finalization** — clean fresh results are written back to the
       cache, every finalized result is journaled, and results are
       assembled in corpus order.
    """
    indexed = list(enumerate(apps))
    out = RunResults()
    if not indexed:
        return out

    journal = None
    restored: dict[int, AppResult] = {}
    if checkpoint is not None:
        from .checkpoint import CheckpointJournal

        journal = CheckpointJournal(checkpoint, tools=backend.tool_names)
        restored = journal.load()

    done: dict[int, AppResult] = dict(restored)
    pending: list[Entry] = [
        (index, forged, 0)
        for index, forged in indexed
        if index not in restored
    ]

    # Persistent cache: result hits are served before any dispatch
    # (the backend never sees them), misses are fingerprinted now and
    # stored after finalization — a single writer, no locking.
    rcache = None
    fp_by_index: dict[int, str] = {}
    cached: list[int] = []
    if cache_dir is not None:
        from ..cache import (
            ResultCache,
            fingerprint_config,
            fingerprint_spec,
        )

        rcache = ResultCache(
            cache_dir,
            framework_fingerprint=fingerprint_spec(backend.spec),
            # ``or None`` keeps the default configuration's key
            # byte-identical to the pre-options era, so existing
            # caches stay warm.
            config_fingerprint=fingerprint_config(
                backend.tool_names, backend.config_options() or None
            ),
        )
        still_pending: list[Entry] = []
        for entry in pending:
            index, forged, attempt = entry
            faulted = (
                fault_plan is not None
                and fault_plan.fault_for(index) is not None
            )
            apk_fp = None if faulted else apk_fingerprint(forged)
            hit = rcache.get(apk_fp) if apk_fp is not None else None
            if hit is not None:
                done[index] = hit
                cached.append(index)
                if journal is not None:
                    journal.append(index, hit)
                if progress is not None:
                    progress(hit.app)
                continue
            if apk_fp is not None:
                fp_by_index[index] = apk_fp
            still_pending.append(entry)
        pending = still_pending

    # The close() in the finally is the backstop that keeps shared
    # substrate segments from outliving the run when a round raises or
    # SIGINT unwinds the loop.
    try:
        if pending:
            backend.prepare(cache_dir, pending)

        round_no = 0
        while pending:
            if round_no > 0 and retry_backoff_s > 0.0:
                # Full jitter: a deterministic backoff would wake every
                # retried app at once and re-stampede the pool.
                time.sleep(_full_jitter_backoff(retry_backoff_s, round_no))
            next_pending: list[Entry] = []
            for entry, result in backend.run_round(pending, round_no):
                index, forged, attempt = entry
                error = result.error
                if (
                    error is not None
                    and error.retryable
                    and attempt < max_retries
                ):
                    next_pending.append((index, forged, attempt + 1))
                    continue
                done[index] = result
                if rcache is not None and result.ok and index in fp_by_index:
                    rcache.put(fp_by_index[index], result)
                if journal is not None:
                    journal.append(index, result)
                if progress is not None:
                    progress(result.app)
            next_pending.sort(key=lambda entry: entry[0])
            pending = next_pending
            round_no += 1

        out.results = [done[index] for index, _ in indexed]
        out.cache_stats = backend.finish(cache_dir)
    finally:
        backend.close()
    if rcache is not None:
        rcache.flush()
        out.cache_stats["results"] = rcache.stats.as_dict()
    out.resumed_indices = tuple(sorted(restored))
    out.cached_indices = tuple(sorted(cached))
    return out


# ---------------------------------------------------------------------------
# streaming job source (the daemon's entry into this engine)
# ---------------------------------------------------------------------------

class JobSource:
    """Where a *streaming* run's work comes from.

    The fixed-corpus engine (:func:`run_corpus`) knows its whole work
    list up front; a resident daemon does not — jobs arrive over the
    wire for as long as the service lives.  A :class:`JobSource` is
    the streaming counterpart of the corpus list: :func:`run_stream`
    pulls entries from it as capacity frees up and pushes every
    *terminal* result back through :meth:`deliver`.

    Entries use the same ``(index, forged, attempt)`` shape as the
    corpus engine, with ``index`` a monotonically increasing job
    sequence number (it keys fault plans and journals exactly like a
    corpus index does).
    """

    def take(
        self, limit: int, timeout_s: float
    ) -> "list[Entry] | None":
        """Up to ``limit`` fresh entries; ``[]`` when nothing arrived
        within ``timeout_s``; ``None`` when the source is closed *and*
        fully drained (the stream's end)."""
        raise NotImplementedError

    def deliver(self, entry: Entry, result: AppResult) -> None:
        """Accept one finalized (terminal) result: the job completed
        cleanly or was quarantined.  Retryable failures never reach
        this — they re-enter the stream's retry window instead."""
        raise NotImplementedError


def run_stream(
    source: JobSource,
    backend: CorpusBackend,
    *,
    max_retries: int = 0,
    retry_backoff_s: float = 0.0,
    batch_limit: int = 8,
    poll_s: float = 0.05,
    cache_dir: str | Path | None = None,
    rng: random.Random | None = None,
) -> dict:
    """Drain a streaming job source through a scheduler backend.

    The streaming analogue of :func:`run_corpus`, sharing its
    retry/quarantine policy but not its batch assumptions:

    * work is pulled in *micro-batches* of at most ``batch_limit``
      entries, so admission latency stays bounded by one batch rather
      than one corpus;
    * retryable failures re-enter a time-ordered retry window with
      **full-jitter** backoff (per entry, not per round — a stream has
      no global rounds to synchronize on) until ``max_retries`` is
      spent, at which point the entry is delivered quarantined;
    * the loop ends when the source reports closed-and-drained *and*
      the retry window is empty — every taken entry is guaranteed a
      terminal :meth:`JobSource.deliver` call.

    Returns counters: ``analyzed``, ``retried``, ``quarantined``,
    ``rounds``.  Crash-safety (journaling, replay) is the *source's*
    job — this engine only guarantees exactly-one-terminal-delivery
    per entry it took.
    """
    stats = {"analyzed": 0, "retried": 0, "quarantined": 0, "rounds": 0}
    #: (ready_at, seq, entry) — a heap so the soonest retry leads.
    retries: list[tuple[float, int, Entry]] = []
    prepared = False
    closed = False

    while True:
        now = time.monotonic()
        batch: list[Entry] = []
        while (
            retries
            and retries[0][0] <= now
            and len(batch) < batch_limit
        ):
            batch.append(heapq.heappop(retries)[2])
        if not closed and len(batch) < batch_limit:
            # Block briefly only when there is nothing else to do.
            timeout = poll_s if not batch else 0.0
            fresh = source.take(batch_limit - len(batch), timeout)
            if fresh is None:
                closed = True
            else:
                batch.extend(fresh)
        if not batch:
            if closed and not retries:
                break
            if retries:
                # Sleep toward the next retry's ready time (bounded
                # by the poll interval so a close stays responsive).
                time.sleep(
                    min(poll_s, max(0.0, retries[0][0] - time.monotonic()))
                )
            continue

        if not prepared:
            backend.prepare(cache_dir, batch)
            prepared = True
        for entry, result in backend.run_round(batch, stats["rounds"]):
            index, forged, attempt = entry
            error = result.error
            if (
                error is not None
                and error.retryable
                and attempt < max_retries
            ):
                delay = _full_jitter_backoff(
                    retry_backoff_s, attempt + 1, rng
                )
                heapq.heappush(
                    retries,
                    (
                        time.monotonic() + delay,
                        index,
                        (index, forged, attempt + 1),
                    ),
                )
                stats["retried"] += 1
                continue
            if error is not None:
                stats["quarantined"] += 1
            source.deliver(entry, result)
            stats["analyzed"] += 1
        stats["rounds"] += 1
    return stats
