"""Deterministic fault injection for chaos-testing corpus runs.

You cannot trust a fault-tolerance layer you have never watched
survive a fault.  This module breaks corpus runs *on purpose*: a
seed-driven :class:`FaultPlan` maps chosen corpus indices to
:class:`InjectedFault` values, and the runner/parallel engines trigger
them at analysis time — in the exact code paths real failures take.

Fault kinds mirror the operational taxonomy
(:mod:`repro.core.errors`):

* ``crash``   — the analyzer raises (→ ``ErrorKind.CRASH``,
  non-retryable, quarantined on first failure);
* ``corrupt`` — the package is rejected as malformed
  (→ ``ErrorKind.PARSE``, non-retryable);
* ``hang``    — the analysis sleeps past its deadline
  (→ ``ErrorKind.TIMEOUT``, retryable);
* ``worker-death`` — the worker process exits abruptly
  (→ ``ErrorKind.WORKER_LOST``, retryable).  In pool workers this is
  a real ``os._exit`` (the parent observes a broken pool); in serial
  runs it is simulated with a raised
  :class:`~repro.core.errors.WorkerLostError`.

``fail_attempts`` makes a fault *transient*: it fires only while the
0-based attempt number is below the threshold, so a retrying engine
recovers the app.  ``fail_attempts=None`` is permanent — the app must
end up quarantined.  Everything is derived from the seed, so a chaos
run is exactly reproducible.
"""

from __future__ import annotations

import enum
import os
import random
import time
from dataclasses import dataclass, field

from ..core.errors import WorkerLostError

__all__ = [
    "FaultKind",
    "ANALYSIS_FAULT_KINDS",
    "STREAM_FAULT_KINDS",
    "InjectedFault",
    "FaultPlan",
    "CorruptApkError",
    "InjectedCrashError",
]


class CorruptApkError(Exception):
    """Injected stand-in for a package too malformed to ingest
    (classified as ``ErrorKind.PARSE``)."""


class InjectedCrashError(RuntimeError):
    """Injected stand-in for an analyzer bug
    (classified as ``ErrorKind.CRASH``)."""


class FaultKind(enum.Enum):
    CRASH = "crash"
    HANG = "hang"
    CORRUPT = "corrupt"
    WORKER_DEATH = "worker-death"
    # Daemon-relevant kinds (serve mode).  These fire in the *job
    # stream* — the queue/journal/drain machinery — not inside an
    # app's analysis, so the analysis-path trigger() treats them as
    # no-ops and ``expected_quarantine`` never counts them (a healthy
    # daemon absorbs them without losing the job).
    SLOW_CONSUMER = "slow-consumer"
    PARTIAL_WRITE = "partial-write"
    DRAIN_SIGTERM = "drain-sigterm"


#: Kinds that fire inside an app's analysis (worker side).
ANALYSIS_FAULT_KINDS = (
    FaultKind.CRASH,
    FaultKind.HANG,
    FaultKind.CORRUPT,
    FaultKind.WORKER_DEATH,
)

#: Kinds that fire in the daemon's job stream instead: the dispatcher
#: stalls before consuming the job (``slow-consumer``), or the job's
#: write-ahead journal record is torn mid-write (``partial-write``).
#: ``drain-sigterm`` is a whole-run fault: a second SIGTERM arrives
#: while the daemon is already draining.
STREAM_FAULT_KINDS = (
    FaultKind.SLOW_CONSUMER,
    FaultKind.PARTIAL_WRITE,
    FaultKind.DRAIN_SIGTERM,
)


@dataclass(frozen=True)
class InjectedFault:
    """One planned fault on one corpus index."""

    kind: FaultKind
    #: Fires while ``attempt < fail_attempts``; ``None`` = always
    #: (permanent).  ``fail_attempts=1`` fails the first attempt only
    #: — a retrying engine recovers the app.
    fail_attempts: int | None = 1
    #: How long an injected hang sleeps.  Pair with a per-app
    #: ``timeout_s`` below this to turn the hang into a timeout; a
    #: hang is deliberately bounded so a run without deadlines is
    #: delayed, never wedged.
    hang_s: float = 30.0

    def fires(self, attempt: int) -> bool:
        return self.fail_attempts is None or attempt < self.fail_attempts

    def trigger(
        self, attempt: int, *, allow_process_death: bool = False
    ) -> None:
        """Inject the fault for this attempt (no-op once transient
        faults are spent)."""
        if not self.fires(attempt):
            return
        if self.kind in STREAM_FAULT_KINDS:
            # Stream faults are injected by the daemon's queue and
            # journal, never by the analysis path.
            return
        if self.kind is FaultKind.CRASH:
            raise InjectedCrashError(
                f"injected analyzer crash (attempt {attempt})"
            )
        if self.kind is FaultKind.CORRUPT:
            raise CorruptApkError(
                f"injected APK corruption (attempt {attempt})"
            )
        if self.kind is FaultKind.HANG:
            time.sleep(self.hang_s)
            return
        # FaultKind.WORKER_DEATH
        if allow_process_death:
            os._exit(1)
        raise WorkerLostError(
            f"injected worker death (attempt {attempt})"
        )


@dataclass
class FaultPlan:
    """Seed-derived mapping of corpus indices to injected faults."""

    faults: dict[int, InjectedFault] = field(default_factory=dict)
    seed: int = 0

    def fault_for(self, index: int) -> InjectedFault | None:
        return self.faults.get(index)

    def __len__(self) -> int:
        return len(self.faults)

    @property
    def indices(self) -> tuple[int, ...]:
        return tuple(sorted(self.faults))

    def expected_quarantine(self, max_retries: int) -> frozenset[int]:
        """Indices that must end the run quarantined under a
        ``max_retries`` budget (assuming hangs are turned into
        timeouts by a per-app deadline): every non-retryable fault,
        plus retryable faults still firing on the final attempt."""
        out = set()
        for index, fault in self.faults.items():
            if fault.kind in STREAM_FAULT_KINDS:
                # Stream faults degrade the daemon, never the job: a
                # healthy serve loop still completes the app.
                continue
            if fault.kind in (FaultKind.CRASH, FaultKind.CORRUPT):
                if fault.fires(0):
                    out.add(index)
            elif fault.fires(max_retries):
                out.add(index)
        return frozenset(out)

    def stream_fault_for(self, index: int) -> InjectedFault | None:
        """The stream-layer fault planned for this job sequence number
        (``None`` for analysis-path faults — those ship to workers)."""
        fault = self.faults.get(index)
        if fault is not None and fault.kind in STREAM_FAULT_KINDS:
            return fault
        return None

    def analysis_fault_for(self, index: int) -> InjectedFault | None:
        """The analysis-path fault planned for this job sequence
        number (``None`` for stream-layer faults)."""
        fault = self.faults.get(index)
        if fault is not None and fault.kind in ANALYSIS_FAULT_KINDS:
            return fault
        return None

    def has_kind(self, kind: FaultKind) -> bool:
        return any(fault.kind is kind for fault in self.faults.values())

    @staticmethod
    def generate(
        corpus_size: int,
        *,
        fraction: float = 0.2,
        seed: int = 0,
        kinds: tuple[FaultKind, ...] = (
            FaultKind.CRASH,
            FaultKind.HANG,
            FaultKind.CORRUPT,
            FaultKind.WORKER_DEATH,
        ),
        permanent_hang_fraction: float = 0.25,
        hang_s: float = 30.0,
    ) -> "FaultPlan":
        """Plan faults over ``fraction`` of a ``corpus_size`` corpus.

        Crash and corrupt faults are permanent (they are non-retryable
        anyway); worker-death faults are always transient
        (``fail_attempts=1`` — one retry recovers the app, and a
        *permanent* worker killer would also take collateral chunk
        neighbours with it on every round); hangs are transient except
        for a ``permanent_hang_fraction`` share, which must exhaust
        the retry budget and be quarantined as timeouts.
        """
        rng = random.Random(seed)
        count = min(corpus_size, round(corpus_size * fraction))
        chosen = sorted(rng.sample(range(corpus_size), count))
        faults: dict[int, InjectedFault] = {}
        for index in chosen:
            kind = rng.choice(kinds)
            if kind in (FaultKind.CRASH, FaultKind.CORRUPT):
                fault = InjectedFault(kind, fail_attempts=None)
            elif kind is FaultKind.WORKER_DEATH:
                fault = InjectedFault(kind, fail_attempts=1)
            else:
                permanent = rng.random() < permanent_hang_fraction
                fault = InjectedFault(
                    kind,
                    fail_attempts=None if permanent else 1,
                    hang_s=hang_s,
                )
            faults[index] = fault
        return FaultPlan(faults=faults, seed=seed)

    @staticmethod
    def generate_serve(
        corpus_size: int,
        *,
        fraction: float = 0.2,
        seed: int = 0,
        hang_s: float = 30.0,
        drain_sigterm: bool = False,
    ) -> "FaultPlan":
        """Plan a daemon chaos run: the classic analysis faults mixed
        with stream-layer ones.

        Stream faults (slow consumer stalls, torn journal writes) are
        always transient single-shot degradations — the job itself
        must still end terminal.  ``drain_sigterm=True`` additionally
        plants one whole-run fault: a second SIGTERM mid-drain, which
        the drain path must absorb idempotently.
        """
        rng = random.Random(seed)
        kinds = ANALYSIS_FAULT_KINDS + (
            FaultKind.SLOW_CONSUMER,
            FaultKind.PARTIAL_WRITE,
        )
        count = min(corpus_size, round(corpus_size * fraction))
        chosen = sorted(rng.sample(range(corpus_size), count))
        faults: dict[int, InjectedFault] = {}
        for index in chosen:
            kind = rng.choice(kinds)
            if kind in (FaultKind.CRASH, FaultKind.CORRUPT):
                faults[index] = InjectedFault(kind, fail_attempts=None)
            elif kind in (FaultKind.SLOW_CONSUMER, FaultKind.PARTIAL_WRITE):
                faults[index] = InjectedFault(
                    kind, fail_attempts=1, hang_s=min(hang_s, 0.2)
                )
            else:
                faults[index] = InjectedFault(
                    kind, fail_attempts=1, hang_s=hang_s
                )
        if drain_sigterm:
            # Keyed past the corpus: a whole-run fault, not a job's.
            faults[corpus_size] = InjectedFault(
                FaultKind.DRAIN_SIGTERM, fail_attempts=None
            )
        return FaultPlan(faults=faults, seed=seed)
