"""Deterministic fault injection for chaos-testing corpus runs.

You cannot trust a fault-tolerance layer you have never watched
survive a fault.  This module breaks corpus runs *on purpose*: a
seed-driven :class:`FaultPlan` maps chosen corpus indices to
:class:`InjectedFault` values, and the runner/parallel engines trigger
them at analysis time — in the exact code paths real failures take.

Fault kinds mirror the operational taxonomy
(:mod:`repro.core.errors`):

* ``crash``   — the analyzer raises (→ ``ErrorKind.CRASH``,
  non-retryable, quarantined on first failure);
* ``corrupt`` — the package is rejected as malformed
  (→ ``ErrorKind.PARSE``, non-retryable);
* ``hang``    — the analysis sleeps past its deadline
  (→ ``ErrorKind.TIMEOUT``, retryable);
* ``worker-death`` — the worker process exits abruptly
  (→ ``ErrorKind.WORKER_LOST``, retryable).  In pool workers this is
  a real ``os._exit`` (the parent observes a broken pool); in serial
  runs it is simulated with a raised
  :class:`~repro.core.errors.WorkerLostError`.

``fail_attempts`` makes a fault *transient*: it fires only while the
0-based attempt number is below the threshold, so a retrying engine
recovers the app.  ``fail_attempts=None`` is permanent — the app must
end up quarantined.  Everything is derived from the seed, so a chaos
run is exactly reproducible.
"""

from __future__ import annotations

import enum
import os
import random
import time
from dataclasses import dataclass, field

from ..core.errors import WorkerLostError

__all__ = [
    "FaultKind",
    "InjectedFault",
    "FaultPlan",
    "CorruptApkError",
    "InjectedCrashError",
]


class CorruptApkError(Exception):
    """Injected stand-in for a package too malformed to ingest
    (classified as ``ErrorKind.PARSE``)."""


class InjectedCrashError(RuntimeError):
    """Injected stand-in for an analyzer bug
    (classified as ``ErrorKind.CRASH``)."""


class FaultKind(enum.Enum):
    CRASH = "crash"
    HANG = "hang"
    CORRUPT = "corrupt"
    WORKER_DEATH = "worker-death"


@dataclass(frozen=True)
class InjectedFault:
    """One planned fault on one corpus index."""

    kind: FaultKind
    #: Fires while ``attempt < fail_attempts``; ``None`` = always
    #: (permanent).  ``fail_attempts=1`` fails the first attempt only
    #: — a retrying engine recovers the app.
    fail_attempts: int | None = 1
    #: How long an injected hang sleeps.  Pair with a per-app
    #: ``timeout_s`` below this to turn the hang into a timeout; a
    #: hang is deliberately bounded so a run without deadlines is
    #: delayed, never wedged.
    hang_s: float = 30.0

    def fires(self, attempt: int) -> bool:
        return self.fail_attempts is None or attempt < self.fail_attempts

    def trigger(
        self, attempt: int, *, allow_process_death: bool = False
    ) -> None:
        """Inject the fault for this attempt (no-op once transient
        faults are spent)."""
        if not self.fires(attempt):
            return
        if self.kind is FaultKind.CRASH:
            raise InjectedCrashError(
                f"injected analyzer crash (attempt {attempt})"
            )
        if self.kind is FaultKind.CORRUPT:
            raise CorruptApkError(
                f"injected APK corruption (attempt {attempt})"
            )
        if self.kind is FaultKind.HANG:
            time.sleep(self.hang_s)
            return
        # FaultKind.WORKER_DEATH
        if allow_process_death:
            os._exit(1)
        raise WorkerLostError(
            f"injected worker death (attempt {attempt})"
        )


@dataclass
class FaultPlan:
    """Seed-derived mapping of corpus indices to injected faults."""

    faults: dict[int, InjectedFault] = field(default_factory=dict)
    seed: int = 0

    def fault_for(self, index: int) -> InjectedFault | None:
        return self.faults.get(index)

    def __len__(self) -> int:
        return len(self.faults)

    @property
    def indices(self) -> tuple[int, ...]:
        return tuple(sorted(self.faults))

    def expected_quarantine(self, max_retries: int) -> frozenset[int]:
        """Indices that must end the run quarantined under a
        ``max_retries`` budget (assuming hangs are turned into
        timeouts by a per-app deadline): every non-retryable fault,
        plus retryable faults still firing on the final attempt."""
        out = set()
        for index, fault in self.faults.items():
            if fault.kind in (FaultKind.CRASH, FaultKind.CORRUPT):
                if fault.fires(0):
                    out.add(index)
            elif fault.fires(max_retries):
                out.add(index)
        return frozenset(out)

    @staticmethod
    def generate(
        corpus_size: int,
        *,
        fraction: float = 0.2,
        seed: int = 0,
        kinds: tuple[FaultKind, ...] = (
            FaultKind.CRASH,
            FaultKind.HANG,
            FaultKind.CORRUPT,
            FaultKind.WORKER_DEATH,
        ),
        permanent_hang_fraction: float = 0.25,
        hang_s: float = 30.0,
    ) -> "FaultPlan":
        """Plan faults over ``fraction`` of a ``corpus_size`` corpus.

        Crash and corrupt faults are permanent (they are non-retryable
        anyway); worker-death faults are always transient
        (``fail_attempts=1`` — one retry recovers the app, and a
        *permanent* worker killer would also take collateral chunk
        neighbours with it on every round); hangs are transient except
        for a ``permanent_hang_fraction`` share, which must exhaust
        the retry budget and be quarantined as timeouts.
        """
        rng = random.Random(seed)
        count = min(corpus_size, round(corpus_size * fraction))
        chosen = sorted(rng.sample(range(corpus_size), count))
        faults: dict[int, InjectedFault] = {}
        for index in chosen:
            kind = rng.choice(kinds)
            if kind in (FaultKind.CRASH, FaultKind.CORRUPT):
                fault = InjectedFault(kind, fail_attempts=None)
            elif kind is FaultKind.WORKER_DEATH:
                fault = InjectedFault(kind, fail_attempts=1)
            else:
                permanent = rng.random() < permanent_hang_fraction
                fault = InjectedFault(
                    kind,
                    fail_attempts=None if permanent else 1,
                    hang_s=hang_s,
                )
            faults[index] = fault
        return FaultPlan(faults=faults, seed=seed)
