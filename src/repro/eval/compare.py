"""Corpus-scale cross-detector agreement study (``saintdroid compare``).

Liu et al.'s replicability study showed that published incompatibility
detectors disagree wildly on the same apps.  This module measures that
disagreement instead of assuming it away: one campaign runs *every*
registered tool/ablation configuration (:data:`COMPARE_CONFIGS`) over
one seeded generated corpus, joins each configuration's findings
against the seeded ground truth, and computes

* per-configuration confusion matrices per mismatch kind —
  label-complete over the kind registry, so SEM and future kinds need
  zero new code here;
* pairwise agreement (Jaccard over reported finding keys; symmetric,
  diagonal exactly 1.0) and per-kind pairwise confusion
  (both / only-A / only-B / missed-by-both);
* per *scenario* kind recall and trap hit counts, attributed through
  the :class:`~repro.difftest.strategy.ScenarioTrace` channel of
  ``materialize`` — no builder semantics re-derived here;
* an observed capability table cross-checked against the
  ``Pass.kinds``-declared one (exactly what ``saintdroid passes``
  prints); any disagreement is a campaign failure;
* a blind-spot report: scenario kinds whose seeded issues *no*
  configuration found — emitted as a machine-readable JSON artifact
  that seeds the next round of ``workload/appgen.py`` scenarios (the
  scenario-diversity flywheel).

Campaigns are deterministic — the canonical report is byte-identical
across the serial scheduler, the process pool (``jobs > 1``), and
submission through the resident serve daemon (``via_serve``) — and
checkpoint/resumable: each configuration journals to its own JSONL
file under ``checkpoint_dir``, so a killed 10k-app campaign resumes
mid-configuration.  ``--summaries``/``--dedup`` compose: cross-mode
runs over the same corpus are the ideal case for the class store.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable

from ..core.arm import build_api_database
from ..core.kinds import family_of, kind_families, registered_kinds
from ..difftest.strategy import (
    ALL_KINDS,
    AppPlan,
    ScenarioTrace,
    materialize,
    plan_apps,
)
from ..framework.repository import FrameworkRepository
from ..workload.appgen import ForgedApp
from .accuracy import ConfusionCounts
from .checkpoint import CheckpointJournal
from .runner import (
    ALL_TOOL_CONFIGS,
    AppResult,
    RunResults,
    ToolSet,
    run_tools,
)
from .tables import render_table4

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from .faults import FaultPlan

__all__ = [
    "COMPARE_CONFIGS",
    "CompareConfig",
    "CompareError",
    "CompareResult",
    "AppJoin",
    "agreement_matrix",
    "blind_spots",
    "build_report",
    "canonical_json",
    "declared_capabilities",
    "missing_scenario_kinds",
    "ordered_kind_values",
    "pairwise_confusion",
    "per_kind_matrix",
    "plan_compare_corpus",
    "run_compare",
    "scenario_kind_coverage",
    "scenario_stats",
    "write_blind_spot_report",
]

#: The campaign's configuration roster — every registered tool plus
#: both SAINTDroid ablations, in canonical order.
COMPARE_CONFIGS: tuple[str, ...] = ALL_TOOL_CONFIGS


class CompareError(Exception):
    """A campaign invariant was violated (coverage gap, lost serve
    result, capability mismatch surfaced via ``check``)."""


# ---------------------------------------------------------------------------
# configuration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CompareConfig:
    """One agreement campaign, reproducible from data alone."""

    seed: int = 2026
    n_apps: int = 200
    configs: tuple[str, ...] = COMPARE_CONFIGS
    #: Worker processes per configuration run (1 = serial).
    jobs: int = 1
    #: Route every analysis through an in-process serve daemon
    #: (the batch-submission path) instead of ``run_tools``.
    via_serve: bool = False
    timeout_s: float | None = None
    max_retries: int = 0
    retry_backoff_s: float = 0.0
    #: Directory for per-configuration JSONL checkpoint journals
    #: (``compare-<config>.jsonl``); a killed campaign pointed at the
    #: same directory resumes mid-configuration.
    checkpoint_dir: str | None = None
    cache_dir: str | None = None
    summaries: bool = False
    dedup: bool = False
    #: Chaos-testing seam: injected faults keyed by corpus index,
    #: applied to every configuration's run.
    fault_plan: "FaultPlan | None" = None


# ---------------------------------------------------------------------------
# corpus planning + ground-truth join
# ---------------------------------------------------------------------------


def plan_compare_corpus(
    seed: int,
    n_apps: int,
    apidb=None,
    picker=None,
) -> tuple[list[AppPlan], list[ForgedApp], list[list[ScenarioTrace]]]:
    """Plan and materialize the campaign corpus with attribution.

    Reuses the difftest strategy layer verbatim: a coverage prefix
    guarantees every scenario kind appears once regardless of
    ``n_apps``, and each app's :class:`ScenarioTrace` list records
    which ground-truth keys each scenario seeded.
    """
    plans = plan_apps(seed, n_apps)
    apps: list[ForgedApp] = []
    traces: list[list[ScenarioTrace]] = []
    for plan in plans:
        trace: list[ScenarioTrace] = []
        apps.append(materialize(plan, apidb, picker, trace=trace))
        traces.append(trace)
    return plans, apps, traces


@dataclass(frozen=True)
class AppJoin:
    """One app's findings joined across every configuration."""

    app: str
    truth_keys: frozenset
    #: Configuration name → reported finding keys (empty for a failed
    #: or crashed analysis — the tool genuinely found nothing).
    reported: dict[str, frozenset] = field(default_factory=dict)
    #: Configuration name → True when the analysis failed outright.
    failed: dict[str, bool] = field(default_factory=dict)


def join_runs(
    apps: list[ForgedApp],
    runs: dict[str, RunResults],
) -> list[AppJoin]:
    """Join per-configuration results by corpus position.

    Ground truth comes from the locally materialized apps (never from
    round-tripped result records), reported keys from each
    configuration's report for that position.
    """
    joins: list[AppJoin] = []
    for index, app in enumerate(apps):
        join = AppJoin(
            app=app.apk.name,
            truth_keys=frozenset(app.truth.issue_keys),
        )
        for name, run in runs.items():
            result = run.results[index]
            if result.app != join.app:
                raise CompareError(
                    f"configuration {name!r} results misaligned at "
                    f"index {index}: {result.app!r} != {join.app!r}"
                )
            report = result.reports.get(name)
            failed = (
                result.error is not None
                or report is None
                or (
                    report.metrics is not None
                    and report.metrics.failed
                )
            )
            join.failed[name] = failed
            join.reported[name] = (
                frozenset() if failed else frozenset(report.keys)
            )
        joins.append(join)
    return joins


# ---------------------------------------------------------------------------
# agreement math (pure functions — property-tested directly)
# ---------------------------------------------------------------------------


def ordered_kind_values() -> tuple[str, ...]:
    """Registered kind values in stable column order: family
    first-registration order, then value — immune to plugin
    unregister/re-register cycles."""
    families = kind_families()
    return tuple(
        sorted(
            (spec.value for spec in registered_kinds()),
            key=lambda value: (
                families.index(family_of(value)),
                value,
            ),
        )
    )


def _kind_of(key: tuple) -> str:
    return key[0]


def per_kind_matrix(
    joins: Iterable[AppJoin],
    configs: tuple[str, ...],
    kinds: tuple[str, ...] | None = None,
) -> dict[str, dict[str, ConfusionCounts]]:
    """Per-configuration confusion counts per kind, label-complete:
    every registered kind appears for every configuration, zero-filled
    when nothing was seeded or reported."""
    kinds = kinds or ordered_kind_values()
    matrix: dict[str, dict[str, ConfusionCounts]] = {
        name: {kind: ConfusionCounts() for kind in kinds}
        for name in configs
    }
    for join in joins:
        for name in configs:
            reported = join.reported.get(name, frozenset())
            for kind in kinds:
                truth = {
                    k for k in join.truth_keys if _kind_of(k) == kind
                }
                found = {k for k in reported if _kind_of(k) == kind}
                cell = matrix[name][kind]
                cell.tp += len(found & truth)
                cell.fp += len(found - truth)
                cell.fn += len(truth - found)
    return matrix


def agreement_matrix(
    joins: Iterable[AppJoin],
    configs: tuple[str, ...],
) -> dict[str, dict[str, float]]:
    """Pairwise Jaccard agreement over reported keys.

    Symmetric with diagonal exactly 1.0; two configurations that both
    report nothing agree perfectly (vacuous 1.0) — disagreement needs
    evidence, not absence.
    """
    keysets = {name: [] for name in configs}
    for join in joins:
        for name in configs:
            keysets[name].append(join.reported.get(name, frozenset()))
    matrix: dict[str, dict[str, float]] = {}
    for a in configs:
        matrix[a] = {}
        for b in configs:
            if a == b:
                matrix[a][b] = 1.0
                continue
            intersection = union = 0
            for left, right in zip(keysets[a], keysets[b]):
                intersection += len(left & right)
                union += len(left | right)
            matrix[a][b] = (
                1.0 if union == 0 else round(intersection / union, 6)
            )
    return matrix


def pairwise_confusion(
    joins: Iterable[AppJoin],
    configs: tuple[str, ...],
    kinds: tuple[str, ...] | None = None,
) -> dict[str, dict[str, dict[str, dict[str, int]]]]:
    """Per-pair per-kind confusion: findings both report, findings
    only one reports, and seeded issues *neither* reports (the pair's
    joint blind spot).  ``onlyA`` under ``[A][B]`` equals ``onlyB``
    under ``[B][A]`` by construction."""
    kinds = kinds or ordered_kind_values()
    matrix: dict[str, dict[str, dict[str, dict[str, int]]]] = {}
    for a in configs:
        matrix[a] = {}
        for b in configs:
            cells = {
                kind: {"both": 0, "onlyA": 0, "onlyB": 0, "neither": 0}
                for kind in kinds
            }
            for join in joins:
                left = join.reported.get(a, frozenset())
                right = join.reported.get(b, frozenset())
                for kind in kinds:
                    lk = {k for k in left if _kind_of(k) == kind}
                    rk = {k for k in right if _kind_of(k) == kind}
                    truth = {
                        k
                        for k in join.truth_keys
                        if _kind_of(k) == kind
                    }
                    cell = cells[kind]
                    cell["both"] += len(lk & rk)
                    cell["onlyA"] += len(lk - rk)
                    cell["onlyB"] += len(rk - lk)
                    cell["neither"] += len(truth - lk - rk)
            matrix[a][b] = cells
    return matrix


def scenario_stats(
    traces: list[list[ScenarioTrace]],
    joins: list[AppJoin],
    configs: tuple[str, ...],
) -> dict[str, dict]:
    """Per scenario kind: seeded issues/traps and what each
    configuration found of them (recall numerators) or fell for
    (trap hits)."""
    stats: dict[str, dict] = {
        kind: {
            "planned": 0,
            "skipped": 0,
            "issues": 0,
            "trapKeys": 0,
            "found": {name: 0 for name in configs},
            "trapHits": {name: 0 for name in configs},
        }
        for kind in ALL_KINDS
    }
    for trace, join in zip(traces, joins):
        for entry in trace:
            row = stats.setdefault(
                entry.kind,
                {
                    "planned": 0,
                    "skipped": 0,
                    "issues": 0,
                    "trapKeys": 0,
                    "found": {name: 0 for name in configs},
                    "trapHits": {name: 0 for name in configs},
                },
            )
            row["planned"] += 1
            if entry.skipped:
                row["skipped"] += 1
                continue
            row["issues"] += len(entry.issue_keys)
            row["trapKeys"] += len(entry.trap_keys)
            issue_keys = set(entry.issue_keys)
            trap_keys = set(entry.trap_keys)
            for name in configs:
                reported = join.reported.get(name, frozenset())
                row["found"][name] += len(reported & issue_keys)
                row["trapHits"][name] += len(reported & trap_keys)
    return stats


def blind_spots(stats: dict[str, dict]) -> list[dict]:
    """Scenario kinds whose seeded issues *every* configuration
    missed entirely — the flywheel's next-round seeds."""
    spots = []
    for kind in sorted(stats):
        row = stats[kind]
        if row["issues"] == 0:
            continue
        if all(count == 0 for count in row["found"].values()):
            spots.append(
                {
                    "scenario": kind,
                    "seededIssues": row["issues"],
                    "found": dict(sorted(row["found"].items())),
                }
            )
    return spots


# ---------------------------------------------------------------------------
# capability cross-check
# ---------------------------------------------------------------------------


def declared_capabilities(
    configs: tuple[str, ...] = COMPARE_CONFIGS,
) -> dict[str, frozenset[str]]:
    """Each configuration's ``Pass.kinds``-declared kind families,
    derived from the same pipeline configs ``saintdroid passes``
    prints — never hand-written."""
    from ..baselines.passes import (
        cid_pipeline,
        cider_pipeline,
        lint_pipeline,
    )
    from ..pipeline.configs import saintdroid_variants

    factories: dict[str, Callable] = dict(saintdroid_variants())
    factories["CID"] = cid_pipeline
    factories["CIDER"] = cider_pipeline
    factories["Lint"] = lint_pipeline
    out: dict[str, frozenset[str]] = {}
    for name in configs:
        if name not in factories:
            raise CompareError(
                f"unknown configuration {name!r}; registered: "
                + ", ".join(sorted(factories))
            )
        out[name] = factories[name]().capabilities
    return out


def capability_crosscheck(
    matrix: dict[str, dict[str, ConfusionCounts]],
    declared: dict[str, frozenset[str]],
) -> dict:
    """Derive the observed capability table from campaign results and
    diff it against the declared one.

    A family is *observed* when the configuration scored at least one
    true positive of any kind in it; it is *testable* when the corpus
    seeded at least one issue of it.  A declared-but-unobserved
    testable family, or an observed-but-undeclared one, is a mismatch
    (and a campaign failure).
    """
    families = kind_families()
    testable = {
        family: any(
            counts.actual > 0
            for per_kind in matrix.values()
            for kind, counts in per_kind.items()
            if family_of(kind) == family
        )
        for family in families
    }
    observed: dict[str, frozenset[str]] = {}
    for name, per_kind in matrix.items():
        observed[name] = frozenset(
            family_of(kind)
            for kind, counts in per_kind.items()
            if counts.tp > 0
        )
    mismatches = []
    for name in matrix:
        for family in families:
            is_declared = family in declared[name]
            is_observed = family in observed[name]
            if is_declared and testable[family] and not is_observed:
                mismatches.append(
                    {
                        "configuration": name,
                        "family": family,
                        "declared": True,
                        "observed": False,
                        "reason": (
                            "declared capability scored zero true "
                            "positives on seeded issues"
                        ),
                    }
                )
            elif is_observed and not is_declared:
                mismatches.append(
                    {
                        "configuration": name,
                        "family": family,
                        "declared": False,
                        "observed": True,
                        "reason": (
                            "true positives of an undeclared family "
                            "— a detect pass is missing its kinds "
                            "declaration"
                        ),
                    }
                )
    return {
        "families": list(families),
        "testable": {f: testable[f] for f in families},
        "declared": {
            name: sorted(values) for name, values in declared.items()
        },
        "observed": {
            name: sorted(values) for name, values in observed.items()
        },
        "mismatches": mismatches,
        "ok": not mismatches,
    }


# ---------------------------------------------------------------------------
# kind-coverage gate
# ---------------------------------------------------------------------------


def scenario_kind_coverage(
    apidb=None,
    picker=None,
    *,
    seed: int = 2026,
) -> dict[str, tuple[str, ...]]:
    """Mismatch kind value → scenario kinds that seed it, measured by
    materializing the coverage prefix (one app per scenario kind)."""
    _, _, traces = plan_compare_corpus(
        seed, len(ALL_KINDS), apidb, picker
    )
    coverage: dict[str, list[str]] = {}
    for trace in traces:
        for entry in trace:
            for key in entry.issue_keys:
                scenarios = coverage.setdefault(_kind_of(key), [])
                if entry.kind not in scenarios:
                    scenarios.append(entry.kind)
    return {kind: tuple(v) for kind, v in coverage.items()}


def missing_scenario_kinds(
    coverage: dict[str, tuple[str, ...]] | None = None,
    apidb=None,
    picker=None,
) -> tuple[str, ...]:
    """Registered kinds no compare-corpus scenario can seed.

    Non-empty means the agreement study is structurally blind to a
    kind: register a difftest scenario builder for it
    (``MismatchKindSpec.scenario_builders``) or add a forge scenario
    in ``workload/appgen.py`` so campaigns exercise it.
    """
    if coverage is None:
        coverage = scenario_kind_coverage(apidb, picker)
    return tuple(
        spec.value
        for spec in registered_kinds()
        if spec.value not in coverage
    )


# ---------------------------------------------------------------------------
# report assembly
# ---------------------------------------------------------------------------


def _counts_doc(counts: ConfusionCounts) -> dict:
    return {
        "tp": counts.tp,
        "fp": counts.fp,
        "fn": counts.fn,
        "precision": round(counts.precision, 6),
        "recall": round(counts.recall, 6),
        "f1": round(counts.f1, 6),
    }


def build_report(
    config: CompareConfig,
    joins: list[AppJoin],
    traces: list[list[ScenarioTrace]],
) -> dict:
    """The campaign's canonical document: everything deterministic,
    nothing wall-clock — byte-identical across schedulers and the
    serve path by construction."""
    kinds = ordered_kind_values()
    configs = config.configs
    matrix = per_kind_matrix(joins, configs, kinds)
    stats = scenario_stats(traces, joins, configs)
    declared = declared_capabilities(configs)
    capabilities = capability_crosscheck(matrix, declared)
    total_issues = sum(len(j.truth_keys) for j in joins)
    per_kind_doc = {
        name: {kind: _counts_doc(matrix[name][kind]) for kind in kinds}
        for name in configs
    }
    per_scenario_doc = {
        kind: {
            "planned": row["planned"],
            "skipped": row["skipped"],
            "issues": row["issues"],
            "trapKeys": row["trapKeys"],
            "found": dict(sorted(row["found"].items())),
            "trapHits": dict(sorted(row["trapHits"].items())),
        }
        for kind, row in sorted(stats.items())
    }
    return {
        "schema": "saintdroid-compare/1",
        "campaign": {
            "seed": config.seed,
            "apps": config.n_apps,
            "configurations": list(configs),
            "summaries": config.summaries,
            "dedup": config.dedup,
        },
        "corpus": {
            "apps": len(joins),
            "seededIssues": total_issues,
            "seededIssuesByKind": {
                kind: sum(
                    1
                    for j in joins
                    for k in j.truth_keys
                    if _kind_of(k) == kind
                )
                for kind in kinds
            },
            "failedApps": {
                name: sorted(
                    j.app for j in joins if j.failed.get(name)
                )
                for name in configs
            },
        },
        "kinds": list(kinds),
        "perKind": per_kind_doc,
        "perScenario": per_scenario_doc,
        "agreement": agreement_matrix(joins, configs),
        "pairwise": pairwise_confusion(joins, configs, kinds),
        "capabilities": capabilities,
        "blindSpots": blind_spots(stats),
    }


def canonical_json(document: dict) -> str:
    """The byte-stable serialization every determinism check
    compares."""
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def blind_spot_document(report: dict) -> dict:
    """The machine-readable flywheel artifact: what the generator must
    grow scenarios for next."""
    stats = report["perScenario"]
    universal_traps = [
        {
            "scenario": kind,
            "trapKeys": row["trapKeys"],
            "trapHits": row["trapHits"],
        }
        for kind, row in stats.items()
        if row["trapKeys"] > 0
        and all(hits > 0 for hits in row["trapHits"].values())
    ]
    return {
        "schema": "saintdroid-compare-blindspots/1",
        "campaign": report["campaign"],
        "blindSpots": report["blindSpots"],
        "universalTraps": universal_traps,
        "scenarioCatalog": list(ALL_KINDS),
        "uncoveredKinds": [
            kind
            for kind in report["kinds"]
            if report["corpus"]["seededIssuesByKind"][kind] == 0
        ],
    }


def write_blind_spot_report(report: dict, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(canonical_json(blind_spot_document(report)))
    return path


# ---------------------------------------------------------------------------
# campaign execution
# ---------------------------------------------------------------------------


def _checkpoint_path(
    config: CompareConfig, name: str
) -> Path | None:
    if config.checkpoint_dir is None:
        return None
    directory = Path(config.checkpoint_dir)
    directory.mkdir(parents=True, exist_ok=True)
    return directory / f"compare-{name}.jsonl"


def _run_config(
    name: str,
    apps: list[ForgedApp],
    config: CompareConfig,
    framework: FrameworkRepository,
    apidb,
    progress: Callable[[str], None] | None,
) -> RunResults:
    toolset = ToolSet.default(
        framework,
        apidb,
        include=(name,),
        summaries=config.summaries,
        summaries_dir=config.cache_dir,
        dedup=config.dedup,
        dedup_dir=config.cache_dir,
    )
    return run_tools(
        apps,
        toolset,
        jobs=config.jobs,
        timeout_s=config.timeout_s,
        max_retries=config.max_retries,
        retry_backoff_s=config.retry_backoff_s,
        fault_plan=config.fault_plan,
        checkpoint=_checkpoint_path(config, name),
        cache_dir=config.cache_dir,
        progress=progress,
    )


def _run_config_via_serve(
    name: str,
    apps: list[ForgedApp],
    config: CompareConfig,
    framework: FrameworkRepository,
    apidb,
    progress: Callable[[str], None] | None,
) -> RunResults:
    """The batch-submission path: boot an in-process daemon for this
    configuration, stream the corpus through it, and journal settled
    results client-side so serve-mode campaigns resume exactly like
    scheduler-mode ones."""
    from ..apk.serialization import apk_to_dict
    from ..serve import AnalysisService, ServeConfig

    journal = None
    restored: dict[int, AppResult] = {}
    path = _checkpoint_path(config, name)
    if path is not None:
        journal = CheckpointJournal(path, tools=(name,))
        restored = journal.load()
    pending = [
        (index, app)
        for index, app in enumerate(apps)
        if index not in restored
    ]
    results: dict[int, AppResult] = dict(restored)
    if pending:
        serve_config = ServeConfig(
            workers=max(config.jobs, 1),
            include=(name,),
            summaries=config.summaries,
            dedup=config.dedup,
            cache_dir=config.cache_dir,
            queue_limit=max(64, len(pending)),
            timeout_s=(
                config.timeout_s if config.timeout_s is not None
                else 30.0
            ),
            max_retries=config.max_retries,
            retry_backoff_s=config.retry_backoff_s,
        )
        service = AnalysisService(
            serve_config, framework.spec, substrate=(framework, apidb)
        ).start()
        try:
            settled = service.submit_batch(
                [
                    (apk_to_dict(app.apk), app.truth.to_dict())
                    for _, app in pending
                ],
                wait_timeout_s=max(
                    300.0, 30.0 * (config.timeout_s or 1.0)
                ),
            )
        finally:
            service.drain(timeout_s=60.0)
        for (index, app), job in zip(pending, settled):
            if job.result is None:
                raise CompareError(
                    f"serve job for {app.apk.name!r} settled without "
                    f"a result (state {job.state.value})"
                )
            results[index] = job.result
            if journal is not None:
                journal.append(index, job.result)
            if progress is not None:
                progress(f"[{name}] {app.apk.name} (serve)")
    return RunResults(
        results=[results[index] for index in range(len(apps))],
        resumed_indices=tuple(sorted(restored)),
    )


@dataclass
class CompareResult:
    """One finished campaign: the canonical report plus everything
    non-deterministic kept out of it."""

    config: CompareConfig
    report: dict
    runs: dict[str, RunResults]

    @property
    def ok(self) -> bool:
        return bool(self.report["capabilities"]["ok"])

    def report_json(self) -> str:
        return canonical_json(self.report)

    def render(self) -> str:
        return render_report(self.report)


def run_compare(
    config: CompareConfig,
    *,
    substrate: tuple | None = None,
    picker=None,
    progress: Callable[[str], None] | None = None,
) -> CompareResult:
    """Run one agreement campaign end to end.

    ``substrate`` reuses an existing ``(framework, apidb)`` pair (the
    test suite's session fixtures); by default the framework substrate
    is built once and shared by every configuration, exactly as the
    paper's protocol prescribes.
    """
    if substrate is not None:
        framework, apidb = substrate
    else:
        framework = FrameworkRepository()
        apidb = build_api_database(framework)

    uncovered = missing_scenario_kinds(apidb=apidb, picker=picker)
    if uncovered:
        raise CompareError(
            "no scenario builder seeds mismatch kind(s) "
            + ", ".join(repr(kind) for kind in uncovered)
            + " — the agreement study would be structurally blind to "
            "them; register scenario_builders on the kind spec or add "
            "a forge scenario in workload/appgen.py"
        )

    _, apps, traces = plan_compare_corpus(
        config.seed, config.n_apps, apidb, picker
    )
    runs: dict[str, RunResults] = {}
    for name in config.configs:
        if progress is not None:
            progress(f"=== configuration {name}")
        runner = (
            _run_config_via_serve if config.via_serve else _run_config
        )
        runs[name] = runner(
            name, apps, config, framework, apidb, progress
        )
    joins = join_runs(apps, runs)
    report = build_report(config, joins, traces)
    return CompareResult(config=config, report=report, runs=runs)


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


def render_report(report: dict) -> str:
    """Human-readable campaign summary (the canonical JSON is the
    machine artifact; this is what the CLI prints)."""
    configs = report["campaign"]["configurations"]
    kinds = report["kinds"]
    lines = [
        f"Agreement campaign: seed {report['campaign']['seed']}, "
        f"{report['corpus']['apps']} apps, "
        f"{len(configs)} configurations, "
        f"{report['corpus']['seededIssues']} seeded issues",
        "",
        "Per-kind accuracy (TP/FP/FN, precision, recall):",
    ]
    header = f"{'configuration':<18}" + "".join(
        f"{kind:>22}" for kind in kinds
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name in configs:
        cells = []
        for kind in kinds:
            cell = report["perKind"][name][kind]
            cells.append(
                f"{cell['tp']}/{cell['fp']}/{cell['fn']} "
                f"p{cell['precision']:.2f} r{cell['recall']:.2f}"
                .rjust(22)
            )
        lines.append(f"{name:<18}" + "".join(cells))

    lines.append("")
    lines.append("Pairwise agreement (Jaccard over reported keys):")
    short = {name: name.replace("SAINTDroid", "SD") for name in configs}
    header = f"{'':<18}" + "".join(
        f"{short[name]:>10}" for name in configs
    )
    lines.append(header)
    for a in configs:
        row = "".join(
            f"{report['agreement'][a][b]:>10.3f}" for b in configs
        )
        lines.append(f"{a:<18}{row}")

    lines.append("")
    capabilities = report["capabilities"]
    declared_rows = [
        {
            "tool": name,
            **{
                family: family in capabilities["declared"][name]
                for family in capabilities["families"]
            },
        }
        for name in configs
    ]
    lines.append(render_table4(declared_rows))
    lines.append("")
    lines.append("Observed capabilities (>=1 TP in family):")
    for name in configs:
        observed = ", ".join(capabilities["observed"][name]) or "(none)"
        lines.append(f"  {name:<18}{observed}")
    if capabilities["ok"]:
        lines.append("capability cross-check: OK (derived == declared)")
    else:
        lines.append("capability cross-check: MISMATCH")
        for mismatch in capabilities["mismatches"]:
            lines.append(
                f"  {mismatch['configuration']} / "
                f"{mismatch['family']}: {mismatch['reason']}"
            )

    lines.append("")
    spots = report["blindSpots"]
    if spots:
        lines.append(
            f"Blind spots ({len(spots)} scenario kind(s) no "
            f"configuration detects):"
        )
        for spot in spots:
            lines.append(
                f"  {spot['scenario']:<22}"
                f"{spot['seededIssues']} seeded issue(s), 0 found"
            )
    else:
        lines.append("Blind spots: none")
    return "\n".join(lines)
