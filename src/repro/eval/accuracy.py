"""Accuracy scoring: tool reports versus seeded ground truth.

Scoring is set arithmetic on stable mismatch keys (see
:attr:`repro.core.mismatch.Mismatch.key` and
:class:`repro.workload.groundtruth.SeededIssue`).  A failed analysis
(timeout, crash, unbuildable app) contributes every seeded issue of
that app as a false negative — the tool genuinely did not find them —
and no false positives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.detector import AnalysisReport
from ..core.kinds import kind_groups
from ..workload.groundtruth import GroundTruth

__all__ = ["ConfusionCounts", "ToolAccuracy", "score_app", "score_apps",
           "KIND_GROUPS"]

#: Kind groupings used in reports, derived from the kind registry: one
#: group per family, the paper's pooled API+APC headline, and an
#: everything pool.  Snapshotted at import time — every kind registers
#: during ``repro.core`` package init, which this module imports.
KIND_GROUPS: dict[str, tuple[str, ...]] = kind_groups()


@dataclass
class ConfusionCounts:
    """True/false positive and false negative tallies."""

    tp: int = 0
    fp: int = 0
    fn: int = 0

    def add(self, other: "ConfusionCounts") -> None:
        self.tp += other.tp
        self.fp += other.fp
        self.fn += other.fn

    @property
    def reported(self) -> int:
        return self.tp + self.fp

    @property
    def actual(self) -> int:
        return self.tp + self.fn

    @property
    def precision(self) -> float:
        if self.tp + self.fp == 0:
            return 0.0
        return self.tp / (self.tp + self.fp)

    @property
    def recall(self) -> float:
        if self.tp + self.fn == 0:
            return 0.0
        return self.tp / (self.tp + self.fn)

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        if p + r == 0:
            return 0.0
        return 2 * p * r / (p + r)

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return (
            f"TP={self.tp} FP={self.fp} FN={self.fn} "
            f"P={self.precision:.2f} R={self.recall:.2f} F1={self.f1:.2f}"
        )


def _kind_of_key(key: tuple) -> str:
    return key[0]


def score_app(
    report: AnalysisReport,
    truth: GroundTruth,
    kinds: tuple[str, ...],
) -> ConfusionCounts:
    """Score one tool's report on one app, restricted to ``kinds``."""
    truth_keys = {
        key for key in truth.issue_keys if _kind_of_key(key) in kinds
    }
    failed = report.metrics is not None and report.metrics.failed
    if failed:
        return ConfusionCounts(tp=0, fp=0, fn=len(truth_keys))
    reported = {
        key for key in report.keys if _kind_of_key(key) in kinds
    }
    tp = len(reported & truth_keys)
    return ConfusionCounts(
        tp=tp,
        fp=len(reported - truth_keys),
        fn=len(truth_keys - reported),
    )


@dataclass
class ToolAccuracy:
    """Aggregated accuracy of one tool over a set of apps."""

    tool: str
    by_group: dict[str, ConfusionCounts] = field(default_factory=dict)
    failed_apps: list[str] = field(default_factory=list)

    def group(self, name: str) -> ConfusionCounts:
        return self.by_group.setdefault(name, ConfusionCounts())


def score_apps(
    tool: str,
    pairs: list[tuple[AnalysisReport, GroundTruth]],
    groups: dict[str, tuple[str, ...]] | None = None,
) -> ToolAccuracy:
    """Aggregate one tool across many (report, truth) pairs."""
    groups = groups or KIND_GROUPS
    accuracy = ToolAccuracy(tool=tool)
    for report, truth in pairs:
        if report.metrics is not None and report.metrics.failed:
            accuracy.failed_apps.append(report.app)
        for name, kinds in groups.items():
            accuracy.group(name).add(score_app(report, truth, kinds))
    return accuracy
