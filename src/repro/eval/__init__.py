"""Evaluation layer: scoring, experiment runner, table and figure
renderers for every experiment in the paper."""

from .accuracy import (
    ConfusionCounts,
    KIND_GROUPS,
    ToolAccuracy,
    score_app,
    score_apps,
)
from .runner import (
    AppResult,
    AppTimeoutError,
    RunResults,
    ToolSet,
    analyze_app,
    run_tools,
)
from .orchestration import (
    CorpusBackend,
    JobSource,
    SerialBackend,
    run_corpus,
    run_stream,
)
from .parallel import ParallelConfig, PoolBackend, run_tools_parallel
from .checkpoint import CheckpointError, CheckpointJournal
from .faults import (
    CorruptApkError,
    FaultKind,
    FaultPlan,
    InjectedCrashError,
    InjectedFault,
)
from .tables import (
    failure_breakdown,
    phase_breakdown,
    render_failures,
    render_phases,
    render_rq2,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    rq2_summary,
    table1_taxonomy,
    table2_accuracy,
    table3_times,
    table4_capabilities,
)
from .flame import render_phase_flame
from .sweep import SweepPoint, sweep_framework_scale
from .export import (
    export_accuracy_csv,
    export_memory_csv,
    export_run_json,
    export_timing_csv,
)
from .figures import (
    TimingSummary,
    ascii_scatter,
    figure1_regions,
    figure3_series,
    figure4_series,
)

__all__ = [
    "AppResult",
    "AppTimeoutError",
    "CheckpointError",
    "CheckpointJournal",
    "ConfusionCounts",
    "CorpusBackend",
    "JobSource",
    "PoolBackend",
    "SerialBackend",
    "run_corpus",
    "run_stream",
    "CorruptApkError",
    "FaultKind",
    "FaultPlan",
    "InjectedCrashError",
    "InjectedFault",
    "ParallelConfig",
    "analyze_app",
    "failure_breakdown",
    "phase_breakdown",
    "render_failures",
    "render_phases",
    "run_tools_parallel",
    "KIND_GROUPS",
    "RunResults",
    "TimingSummary",
    "ToolAccuracy",
    "ToolSet",
    "ascii_scatter",
    "export_accuracy_csv",
    "export_memory_csv",
    "export_run_json",
    "export_timing_csv",
    "figure1_regions",
    "figure3_series",
    "figure4_series",
    "render_phase_flame",
    "render_rq2",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "SweepPoint",
    "sweep_framework_scale",
    "rq2_summary",
    "run_tools",
    "score_app",
    "score_apps",
    "table1_taxonomy",
    "table2_accuracy",
    "table3_times",
    "table4_capabilities",
]
