"""Parallel corpus-analysis engine.

Large-scale studies vet thousands of apps; analyzing them strictly
serially throws away both hardware parallelism and the fact that every
per-app analysis shares the same immutable substrate (framework spec,
API database).  This module schedules a corpus over a process pool:

* **shared substrate** — the parent prepares the substrate exactly
  once per run (framework repository with the corpus's levels
  pre-warmed, mined API database, optional framework summary table)
  and every worker *attaches* instead of rebuilding: under fork the
  prepared objects are inherited as copy-on-write pages; elsewhere a
  protocol-5 :class:`~repro.cache.shared.SharedSubstrate` segment is
  published once and mapped by each worker — including the fresh
  pools of later retry rounds;
* **worker bootstrap** — each worker resolves the substrate through a
  cheapest-first ladder (inherited parent substrate → in-process
  build memo → shared segment → snapshot file → mine from the spec)
  in its initializer; every app the worker analyzes afterwards hits
  the worker-local framework class cache and database memo tables;
* **chunked scheduling** — apps ship to workers in contiguous chunks
  to amortize pickling overhead while keeping the pool busy;
* **failure isolation** — a crashing or timed-out app yields an
  :class:`~repro.eval.runner.AppResult` with a structured
  :class:`~repro.core.errors.AnalysisError`, never a dead run; a
  dying worker process poisons only the chunks it held, and the
  engine rebuilds the pool and carries on;
* **retry + quarantine** — retryable failures (timeout, worker-lost,
  resource) are re-dispatched individually, each on a fresh round's
  pool, up to ``max_retries`` times with bounded backoff; apps that
  exhaust the budget are quarantined with their final error record;
* **checkpoint/resume** — with a journal attached, every finalized
  result is appended to JSONL as it completes; a killed run resumes
  by skipping journaled indices and reproduces the uninterrupted
  run's fingerprint;
* **deterministic ordering** — results are reassembled in corpus
  order, and per-app computation is the exact
  :func:`~repro.eval.runner.analyze_app` the serial loop uses, so a
  parallel run's :meth:`RunResults.fingerprint` is identical to a
  serial run's.

The engine is reached through ``run_tools(apps, jobs=N)`` or the
``--jobs`` CLI flag; it has no public surface beyond
:class:`ParallelConfig`, :class:`PoolBackend`, and
:func:`run_tools_parallel`.  The retry/quarantine/checkpoint/cache
envelope is NOT implemented here: it lives — once, shared verbatim
with the serial scheduler — in :mod:`repro.eval.orchestration`.  This
module contributes only the scheduling backend: worker bootstrap,
chunked dispatch, and broken-pool recovery.

Scheduling works in *rounds*.  Round 0 fans the whole corpus out in
contiguous chunks over one pool.  If anything retryable failed, round
``r`` re-dispatches those apps as single-app tasks on a **fresh**
pool — a new pool per round is what makes worker death survivable at
all: a dead process breaks its ``ProcessPoolExecutor`` beyond reuse,
so every future still in flight is drained (synthesized as
``worker-lost``, retryable), the broken pool is discarded, and the
next round starts clean.  A fault-free run takes exactly one round
and one pool — the tolerance machinery costs nothing until something
actually breaks.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable

from ..core.arm import build_api_database, cached_database, register_database
from ..core.errors import AnalysisError, AnalysisPhase, ErrorKind
from ..framework.repository import FrameworkCacheStats, FrameworkRepository
from ..framework.spec import FrameworkSpec
from ..workload.appgen import ForgedApp
from .orchestration import CorpusBackend, run_corpus
from .runner import (
    AppResult,
    DEFAULT_TOOLS,
    RunResults,
    ToolSet,
    analyze_app,
)

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from .faults import FaultPlan

__all__ = ["ParallelConfig", "PoolBackend", "run_tools_parallel"]

#: One work item: corpus index, the app, and its 0-based attempt.
_Entry = tuple[int, ForgedApp, int]


@dataclass(frozen=True)
class ParallelConfig:
    """Knobs for one parallel run."""

    #: Worker process count.
    jobs: int = 2
    #: Apps per pool task; ``None`` picks a size that gives each
    #: worker several chunks (load balancing) without making tasks so
    #: small that pickling dominates.
    chunk_size: int | None = None
    #: Per-app wall-clock budget (enforced inside workers).
    timeout_s: float | None = None
    #: Tool names each worker instantiates.
    include: tuple[str, ...] = DEFAULT_TOOLS
    #: Re-attempts for retryable failures (timeout, worker-lost,
    #: resource) before an app is quarantined.  Each retry is a
    #: single-app task on a fresh round's pool.
    max_retries: int = 0
    #: Base of the bounded exponential backoff slept between retry
    #: rounds (0 = retry immediately).
    retry_backoff_s: float = 0.0
    #: Injected faults for chaos testing (None in production runs).
    fault_plan: "FaultPlan | None" = None
    #: Persistent cache directory (:mod:`repro.cache`); ``None``
    #: disables both the result cache and framework snapshots.
    cache_dir: str | None = None
    #: Bound the CLVM at the framework boundary with whole-framework
    #: pre-summaries (same findings as lazy; parity-tested).
    summaries: bool = False
    #: Delta analysis against the corpus-wide class-artifact store
    #: (same findings as lazy; parity-tested).  The store lives under
    #: ``cache_dir`` so workers share it across rounds and runs.
    dedup: bool = False

    def resolved_chunk_size(self, corpus_size: int) -> int:
        if self.chunk_size is not None:
            return max(1, self.chunk_size)
        per_worker = corpus_size / max(1, self.jobs)
        return max(1, min(16, round(per_worker / 4) or 1))


# -- worker side -----------------------------------------------------------

#: One tool set per worker process, built by the pool initializer and
#: reused for every chunk the worker receives — this is where the
#: cross-app framework/database caches live.
_WORKER_TOOLSET: ToolSet | None = None
#: The run's fault plan, shipped once via the initializer.
_WORKER_FAULTS: "FaultPlan | None" = None
#: The substrate the parent prepared before forking the pool; workers
#: inherit it as copy-on-write pages and skip every rebuild path.
_PARENT_SUBSTRATE: "tuple[FrameworkRepository, object] | None" = None
#: The shared segment this worker attached (kept open for the process
#: lifetime: the decoded payload may reference the mapped pages).
_WORKER_SEGMENT = None


def _init_worker(
    spec: FrameworkSpec,
    include: tuple[str, ...],
    fault_plan: "FaultPlan | None" = None,
    snapshot_file: str | None = None,
    shared_handle=None,
    summaries: bool = False,
    cache_dir: str | None = None,
    dedup: bool = False,
) -> None:
    global _WORKER_TOOLSET, _WORKER_FAULTS, _WORKER_SEGMENT
    # Substrate resolution order, cheapest first:
    #
    # 1. the parent-prepared substrate — under the fork start method
    #    every worker (in *every* round's fresh pool) inherits the
    #    parent's pre-warmed repository and mined database as
    #    copy-on-write pages: zero per-worker rebuild cost;
    # 2. the in-process build memo (fork, parent built but did not
    #    call prepare — e.g. a retry pool after close());
    # 3. the shared-memory substrate segment (spawn platforms, one
    #    deserialization instead of a re-mine + disk read per worker);
    # 4. the on-disk framework snapshot;
    # 5. mining from the spec (no cache at all).
    framework: FrameworkRepository | None = None
    apidb = None
    if (
        _PARENT_SUBSTRATE is not None
        and _PARENT_SUBSTRATE[0].spec is spec
    ):
        framework, apidb = _PARENT_SUBSTRATE
    if apidb is None:
        apidb = cached_database(spec)
    if apidb is None and shared_handle is not None:
        from ..cache.shared import SharedSubstrate
        from ..cache.snapshot import restore_substrate

        segment = SharedSubstrate.attach(shared_handle)
        if segment is not None:
            restored = restore_substrate(
                segment.payload(), key=shared_handle.key
            )
            if restored is not None:
                framework, apidb = restored
                # Keep the mapping for the process lifetime — the
                # restored objects may reference the shared pages.
                _WORKER_SEGMENT = segment
            else:
                segment.close()
    if apidb is None and snapshot_file is not None:
        from ..cache.snapshot import load_snapshot

        loaded = load_snapshot(snapshot_file)
        if loaded is not None:
            framework, apidb = loaded
            register_database(spec, apidb)
    if framework is None:
        framework = FrameworkRepository(spec)
    if apidb is None:
        apidb = build_api_database(framework)
    # An inherited or snapshot-loaded database carries whatever cache
    # counters its builder accumulated — a warm start we gladly keep,
    # but the accounting must cover only this worker's activity.
    apidb.reset_cache_counters()
    framework.cache_stats = FrameworkCacheStats()
    _WORKER_TOOLSET = ToolSet.default(
        framework,
        apidb,
        include=include,
        summaries=summaries,
        summaries_dir=cache_dir,
        dedup=dedup,
        dedup_dir=cache_dir,
    )
    _WORKER_FAULTS = fault_plan


def _analyze_chunk(
    chunk: list[_Entry],
    timeout_s: float | None,
) -> tuple[int, list[tuple[int, AppResult]], dict]:
    """Analyze one chunk in this worker; returns results tagged with
    their corpus indices plus the worker's cumulative cache stats."""
    toolset = _WORKER_TOOLSET
    if toolset is None:  # pragma: no cover — initializer always ran
        raise RuntimeError("worker initialized without a tool set")
    out = []
    for index, forged, attempt in chunk:
        fault = (
            _WORKER_FAULTS.fault_for(index)
            if _WORKER_FAULTS is not None
            else None
        )
        out.append(
            (
                index,
                analyze_app(
                    toolset,
                    forged,
                    timeout_s=timeout_s,
                    fault=fault,
                    attempt=attempt,
                    allow_process_death=True,
                ),
            )
        )
    return os.getpid(), out, toolset.cache_stats()


# -- parent side -----------------------------------------------------------

def _pool_context():
    """Prefer fork (cheap worker startup, parent pages shared); fall
    back to the platform default where fork is unavailable."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover — non-POSIX platforms
        return multiprocessing.get_context()


def _worker_lost_results(
    chunk: list[_Entry], exc: BaseException
) -> list[tuple[int, AppResult]]:
    """Synthesize failure records when a whole worker task died (the
    worker process was killed, or the task could not complete): the
    run continues, the chunk's apps are recorded as ``worker-lost``
    and — being retryable — re-dispatched if budget remains."""
    out = []
    for index, forged, attempt in chunk:
        error = AnalysisError(
            kind=ErrorKind.WORKER_LOST,
            phase=AnalysisPhase.TOOL,
            message=f"worker process lost: {type(exc).__name__}: {exc}",
            retryable=True,
            attempts=attempt + 1,
        )
        out.append(
            (
                index,
                AppResult(
                    app=forged.apk.name,
                    truth=forged.truth,
                    kloc=forged.apk.dex_kloc,
                    error=error,
                ),
            )
        )
    return out


def _merge_cache_stats(snapshots: dict[int, dict]) -> dict:
    """Sum per-worker cumulative snapshots into one corpus view."""
    merged = {
        "workers": len(snapshots),
        "framework": {
            "class_hits": 0,
            "class_misses": 0,
            "image_hits": 0,
            "image_misses": 0,
        },
        "apidb": {
            "resolve_hits": 0,
            "resolve_misses": 0,
            "levels_hits": 0,
            "levels_misses": 0,
            "permission_hits": 0,
            "permission_misses": 0,
        },
    }
    per_worker_rates = []
    for snapshot in snapshots.values():
        for section in ("framework", "apidb"):
            for key in merged[section]:
                merged[section][key] += snapshot[section].get(key, 0)
        worker_fw = snapshot["framework"]
        worker_total = (
            worker_fw.get("class_hits", 0)
            + worker_fw.get("class_misses", 0)
        )
        per_worker_rates.append(
            worker_fw.get("class_hits", 0) / worker_total
            if worker_total
            else 0.0
        )
    fw = merged["framework"]
    class_total = fw["class_hits"] + fw["class_misses"]
    fw["hit_rate"] = fw["class_hits"] / class_total if class_total else 0.0
    # Each worker's own rate, not just the blended one: the blend can
    # hide a single cold worker re-materializing the world.
    fw["per_worker_hit_rates"] = sorted(
        round(rate, 4) for rate in per_worker_rates
    )
    db = merged["apidb"]
    hits = db["resolve_hits"] + db["levels_hits"] + db["permission_hits"]
    misses = (
        db["resolve_misses"] + db["levels_misses"] + db["permission_misses"]
    )
    db["hit_rate"] = hits / (hits + misses) if hits + misses else 0.0
    # Class-artifact store traffic (only present in --dedup workers;
    # older snapshots without the section merge cleanly).
    classes: dict[str, float] = {}
    seen_classes = False
    for snapshot in snapshots.values():
        section = snapshot.get("classes")
        if not section:
            continue
        seen_classes = True
        for key, value in section.items():
            if key.endswith("_rate"):
                continue
            classes[key] = classes.get(key, 0) + value
    if seen_classes:
        hits = classes.get("hits", 0)
        misses = classes.get("misses", 0)
        classes["hit_rate"] = (
            hits / (hits + misses) if hits + misses else 0.0
        )
        guard_hits = classes.get("guard_hits", 0)
        guard_misses = classes.get("guard_misses", 0)
        classes["guard_hit_rate"] = (
            guard_hits / (guard_hits + guard_misses)
            if guard_hits + guard_misses
            else 0.0
        )
        merged["classes"] = classes
    return merged


def _run_round(
    chunks: list[list[_Entry]],
    spec: FrameworkSpec,
    config: ParallelConfig,
    worker_stats: dict[int, dict],
    snapshot_file: str | None = None,
    shared_handle=None,
) -> list[tuple[_Entry, AppResult]]:
    """Dispatch one round's chunks over a fresh pool and drain every
    future — including the ones a dying worker broke."""
    entry_by_index = {
        entry[0]: entry for chunk in chunks for entry in chunk
    }
    out: list[tuple[_Entry, AppResult]] = []
    with ProcessPoolExecutor(
        max_workers=config.jobs,
        mp_context=_pool_context(),
        initializer=_init_worker,
        initargs=(
            spec,
            config.include,
            config.fault_plan,
            snapshot_file,
            shared_handle,
            config.summaries,
            config.cache_dir,
            config.dedup,
        ),
    ) as pool:
        futures = {
            pool.submit(_analyze_chunk, chunk, config.timeout_s): chunk
            for chunk in chunks
        }
        for future in as_completed(futures):
            chunk = futures[future]
            try:
                pid, results, snapshot = future.result()
            except Exception as exc:  # noqa: BLE001 — isolate the chunk
                # BrokenProcessPool lands here for the chunk whose
                # worker died *and* for every chunk still queued on
                # the now-broken pool; all of them come back as
                # retryable worker-lost records.
                results = _worker_lost_results(chunk, exc)
            else:
                worker_stats[pid] = snapshot
            for index, result in results:
                out.append((entry_by_index[index], result))
    return out


class PoolBackend(CorpusBackend):
    """Process-pool scheduler: fresh pool per round, chunked round 0,
    single-app retry rounds."""

    def __init__(self, spec: FrameworkSpec, config: ParallelConfig) -> None:
        self._spec = spec
        self._config = config
        self._worker_stats: dict[int, dict] = {}
        self._snapshot_file: str | None = None
        self._segment = None

    @property
    def spec(self) -> FrameworkSpec:
        return self._spec

    @property
    def tool_names(self) -> tuple[str, ...]:
        return self._config.include

    def config_options(self) -> dict:
        options: dict = {}
        if self._config.summaries:
            options["summaries"] = True
        if self._config.dedup:
            options["dedup"] = True
        return options

    def prepare(self, cache_dir, pending=()) -> None:
        # Prepare the substrate ONCE in the parent — repository with
        # every pending framework level pre-warmed, mined database,
        # and (when enabled) the framework summary table — so that
        # under fork every worker of every round — including retry
        # rounds' fresh pools — inherits the finished substrate as
        # copy-on-write pages instead of rebuilding its own.  Non-fork
        # start methods get the same substrate through a shared-memory
        # segment published here and attached by each initializer,
        # with the snapshot file as the final fallback.
        from ..cache.snapshot import load_or_build_substrate

        global _PARENT_SUBSTRATE
        framework, apidb, _source = load_or_build_substrate(
            self._config.cache_dir, self._spec
        )
        register_database(self._spec, apidb)
        if self._config.cache_dir is not None:
            from ..cache import ensure_snapshot

            self._snapshot_file = str(
                ensure_snapshot(self._config.cache_dir, framework, apidb)
            )
        levels: set[int] = set()
        for _index, forged, _attempt in pending:
            try:
                levels.add(forged.apk.manifest.effective_max_sdk)
            except Exception:  # noqa: BLE001 — hostile app: its own
                continue  # analysis will record the failure, not prep
        levels = sorted(levels)
        for level in levels:
            try:
                framework.warm_level(level)
            except ValueError:  # level outside the modeled range
                continue
        if self._config.summaries:
            from ..analysis.fwsummaries import summary_table

            table = summary_table(
                framework, apidb, store_dir=self._config.cache_dir
            )
            for level in levels:
                try:
                    table.level_summaries(level)
                except ValueError:  # pragma: no cover — range-checked
                    continue
        _PARENT_SUBSTRATE = (framework, apidb)
        if (
            _pool_context().get_start_method() != "fork"
            or os.environ.get("REPRO_FORCE_SHARED_SUBSTRATE")
        ):
            from ..cache import fingerprint_spec
            from ..cache.shared import SharedSubstrate
            from ..cache.snapshot import substrate_payload

            key = fingerprint_spec(self._spec)
            self._segment = SharedSubstrate.publish(
                substrate_payload(framework, apidb, key), key
            )

    def run_round(
        self, pending: list[_Entry], round_no: int
    ) -> list[tuple[_Entry, AppResult]]:
        config = self._config
        if round_no == 0:
            chunk_size = config.resolved_chunk_size(len(pending))
        else:
            # Retry rounds: single-app re-dispatch on a fresh pool.
            chunk_size = 1
        chunks = [
            pending[start:start + chunk_size]
            for start in range(0, len(pending), chunk_size)
        ]
        return _run_round(
            chunks, self._spec, config, self._worker_stats,
            self._snapshot_file,
            self._segment.handle if self._segment is not None else None,
        )

    def finish(self, cache_dir) -> dict:
        merged = _merge_cache_stats(self._worker_stats)
        if self._config.dedup and self._config.cache_dir is not None:
            # Workers write artifacts atomically but save the shared
            # manifest last-writer-wins; the parent adopts anything the
            # surviving manifest missed and enforces the byte budget.
            from ..cache import fingerprint_config, fingerprint_spec
            from ..cache.classes import CLASS_ARTIFACT_VERSION, class_store

            store = class_store(
                self._config.cache_dir,
                framework_fingerprint=fingerprint_spec(self._spec),
                config_fingerprint=fingerprint_config(
                    ("SAINTDroid",), {"classes": CLASS_ARTIFACT_VERSION}
                ),
            )
            store.flush()
        return merged

    def close(self) -> None:
        # Guaranteed teardown (run_corpus calls this from a finally,
        # and SharedSubstrate has its own atexit guard on top): the
        # published segment is unlinked exactly once, and the parent
        # substrate reference is dropped so a later run with a
        # different spec cannot see a stale one.
        global _PARENT_SUBSTRATE
        if self._segment is not None:
            self._segment.close(unlink=True)
            self._segment = None
        if (
            _PARENT_SUBSTRATE is not None
            and _PARENT_SUBSTRATE[0].spec is self._spec
        ):
            _PARENT_SUBSTRATE = None


def run_tools_parallel(
    apps: Iterable[ForgedApp],
    spec: FrameworkSpec,
    config: ParallelConfig,
    *,
    progress: Callable[[str], None] | None = None,
    checkpoint: str | Path | None = None,
) -> RunResults:
    """Analyze ``apps`` over a pool of ``config.jobs`` workers.

    Results are returned in corpus order whatever order workers finish
    in; every app yields exactly one :class:`AppResult`, failed or
    not.  The retry/quarantine/checkpoint/cache envelope is
    :func:`repro.eval.orchestration.run_corpus` — shared verbatim with
    the serial scheduler; this function only supplies the pool
    backend.
    """
    backend = PoolBackend(spec, config)
    return run_corpus(
        apps,
        backend,
        max_retries=config.max_retries,
        retry_backoff_s=config.retry_backoff_s,
        fault_plan=config.fault_plan,
        checkpoint=checkpoint,
        cache_dir=config.cache_dir,
        progress=progress,
    )
