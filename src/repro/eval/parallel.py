"""Parallel corpus-analysis engine.

Large-scale studies vet thousands of apps; analyzing them strictly
serially throws away both hardware parallelism and the fact that every
per-app analysis shares the same immutable substrate (framework spec,
API database).  This module schedules a corpus over a process pool:

* **worker bootstrap** — each worker constructs the framework
  repository + API database *once* (from the pickled spec) in its
  initializer; every app the worker analyzes afterwards hits the
  worker-local framework class cache and database memo tables;
* **chunked scheduling** — apps ship to workers in contiguous chunks
  to amortize pickling overhead while keeping the pool busy;
* **failure isolation** — a crashing or timed-out app yields an
  :class:`~repro.eval.runner.AppResult` with a structured
  :class:`~repro.core.errors.AnalysisError`, never a dead run; a
  dying worker process poisons only the chunks it held, and the
  engine rebuilds the pool and carries on;
* **retry + quarantine** — retryable failures (timeout, worker-lost,
  resource) are re-dispatched individually, each on a fresh round's
  pool, up to ``max_retries`` times with bounded backoff; apps that
  exhaust the budget are quarantined with their final error record;
* **checkpoint/resume** — with a journal attached, every finalized
  result is appended to JSONL as it completes; a killed run resumes
  by skipping journaled indices and reproduces the uninterrupted
  run's fingerprint;
* **deterministic ordering** — results are reassembled in corpus
  order, and per-app computation is the exact
  :func:`~repro.eval.runner.analyze_app` the serial loop uses, so a
  parallel run's :meth:`RunResults.fingerprint` is identical to a
  serial run's.

The engine is reached through ``run_tools(apps, jobs=N)`` or the
``--jobs`` CLI flag; it has no public surface beyond
:class:`ParallelConfig` and :func:`run_tools_parallel`.

Scheduling works in *rounds*.  Round 0 fans the whole corpus out in
contiguous chunks over one pool.  If anything retryable failed, round
``r`` re-dispatches those apps as single-app tasks on a **fresh**
pool — a new pool per round is what makes worker death survivable at
all: a dead process breaks its ``ProcessPoolExecutor`` beyond reuse,
so every future still in flight is drained (synthesized as
``worker-lost``, retryable), the broken pool is discarded, and the
next round starts clean.  A fault-free run takes exactly one round
and one pool — the tolerance machinery costs nothing until something
actually breaks.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable

from ..core.arm import build_api_database, cached_database, register_database
from ..core.errors import AnalysisError, AnalysisPhase, ErrorKind
from ..framework.repository import FrameworkCacheStats, FrameworkRepository
from ..framework.spec import FrameworkSpec
from ..workload.appgen import ForgedApp
from .runner import (
    AppResult,
    DEFAULT_TOOLS,
    RunResults,
    ToolSet,
    _bounded_backoff,
    analyze_app,
)

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from .faults import FaultPlan

__all__ = ["ParallelConfig", "run_tools_parallel"]

#: One work item: corpus index, the app, and its 0-based attempt.
_Entry = tuple[int, ForgedApp, int]


@dataclass(frozen=True)
class ParallelConfig:
    """Knobs for one parallel run."""

    #: Worker process count.
    jobs: int = 2
    #: Apps per pool task; ``None`` picks a size that gives each
    #: worker several chunks (load balancing) without making tasks so
    #: small that pickling dominates.
    chunk_size: int | None = None
    #: Per-app wall-clock budget (enforced inside workers).
    timeout_s: float | None = None
    #: Tool names each worker instantiates.
    include: tuple[str, ...] = DEFAULT_TOOLS
    #: Re-attempts for retryable failures (timeout, worker-lost,
    #: resource) before an app is quarantined.  Each retry is a
    #: single-app task on a fresh round's pool.
    max_retries: int = 0
    #: Base of the bounded exponential backoff slept between retry
    #: rounds (0 = retry immediately).
    retry_backoff_s: float = 0.0
    #: Injected faults for chaos testing (None in production runs).
    fault_plan: "FaultPlan | None" = None
    #: Persistent cache directory (:mod:`repro.cache`); ``None``
    #: disables both the result cache and framework snapshots.
    cache_dir: str | None = None

    def resolved_chunk_size(self, corpus_size: int) -> int:
        if self.chunk_size is not None:
            return max(1, self.chunk_size)
        per_worker = corpus_size / max(1, self.jobs)
        return max(1, min(16, round(per_worker / 4) or 1))


# -- worker side -----------------------------------------------------------

#: One tool set per worker process, built by the pool initializer and
#: reused for every chunk the worker receives — this is where the
#: cross-app framework/database caches live.
_WORKER_TOOLSET: ToolSet | None = None
#: The run's fault plan, shipped once via the initializer.
_WORKER_FAULTS: "FaultPlan | None" = None


def _init_worker(
    spec: FrameworkSpec,
    include: tuple[str, ...],
    fault_plan: "FaultPlan | None" = None,
    snapshot_file: str | None = None,
) -> None:
    global _WORKER_TOOLSET, _WORKER_FAULTS
    # Substrate resolution order, cheapest first:
    #
    # 1. the in-process build memo — under the fork start method every
    #    worker (in *every* round's fresh pool) inherits the database
    #    the parent prebuilt, so no round ever re-mines it;
    # 2. the on-disk framework snapshot (spawn platforms, where fork
    #    inheritance is unavailable);
    # 3. mining from the spec (no cache at all).
    framework: FrameworkRepository | None = None
    apidb = cached_database(spec)
    if apidb is None and snapshot_file is not None:
        from ..cache.snapshot import load_snapshot

        loaded = load_snapshot(snapshot_file)
        if loaded is not None:
            framework, apidb = loaded
            register_database(spec, apidb)
    if framework is None:
        framework = FrameworkRepository(spec)
    if apidb is None:
        apidb = build_api_database(framework)
    # An inherited or snapshot-loaded database carries whatever cache
    # counters its builder accumulated — a warm start we gladly keep,
    # but the accounting must cover only this worker's activity.
    apidb.reset_cache_counters()
    framework.cache_stats = FrameworkCacheStats()
    _WORKER_TOOLSET = ToolSet.default(framework, apidb, include=include)
    _WORKER_FAULTS = fault_plan


def _analyze_chunk(
    chunk: list[_Entry],
    timeout_s: float | None,
) -> tuple[int, list[tuple[int, AppResult]], dict]:
    """Analyze one chunk in this worker; returns results tagged with
    their corpus indices plus the worker's cumulative cache stats."""
    toolset = _WORKER_TOOLSET
    if toolset is None:  # pragma: no cover — initializer always ran
        raise RuntimeError("worker initialized without a tool set")
    out = []
    for index, forged, attempt in chunk:
        fault = (
            _WORKER_FAULTS.fault_for(index)
            if _WORKER_FAULTS is not None
            else None
        )
        out.append(
            (
                index,
                analyze_app(
                    toolset,
                    forged,
                    timeout_s=timeout_s,
                    fault=fault,
                    attempt=attempt,
                    allow_process_death=True,
                ),
            )
        )
    return os.getpid(), out, toolset.cache_stats()


# -- parent side -----------------------------------------------------------

def _pool_context():
    """Prefer fork (cheap worker startup, parent pages shared); fall
    back to the platform default where fork is unavailable."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover — non-POSIX platforms
        return multiprocessing.get_context()


def _worker_lost_results(
    chunk: list[_Entry], exc: BaseException
) -> list[tuple[int, AppResult]]:
    """Synthesize failure records when a whole worker task died (the
    worker process was killed, or the task could not complete): the
    run continues, the chunk's apps are recorded as ``worker-lost``
    and — being retryable — re-dispatched if budget remains."""
    out = []
    for index, forged, attempt in chunk:
        error = AnalysisError(
            kind=ErrorKind.WORKER_LOST,
            phase=AnalysisPhase.TOOL,
            message=f"worker process lost: {type(exc).__name__}: {exc}",
            retryable=True,
            attempts=attempt + 1,
        )
        out.append(
            (
                index,
                AppResult(
                    app=forged.apk.name,
                    truth=forged.truth,
                    kloc=forged.apk.dex_kloc,
                    error=error,
                ),
            )
        )
    return out


def _merge_cache_stats(snapshots: dict[int, dict]) -> dict:
    """Sum per-worker cumulative snapshots into one corpus view."""
    merged = {
        "workers": len(snapshots),
        "framework": {
            "class_hits": 0,
            "class_misses": 0,
            "image_hits": 0,
            "image_misses": 0,
        },
        "apidb": {
            "resolve_hits": 0,
            "resolve_misses": 0,
            "levels_hits": 0,
            "levels_misses": 0,
            "permission_hits": 0,
            "permission_misses": 0,
        },
    }
    for snapshot in snapshots.values():
        for section in ("framework", "apidb"):
            for key in merged[section]:
                merged[section][key] += snapshot[section].get(key, 0)
    fw = merged["framework"]
    class_total = fw["class_hits"] + fw["class_misses"]
    fw["hit_rate"] = fw["class_hits"] / class_total if class_total else 0.0
    db = merged["apidb"]
    hits = db["resolve_hits"] + db["levels_hits"] + db["permission_hits"]
    misses = (
        db["resolve_misses"] + db["levels_misses"] + db["permission_misses"]
    )
    db["hit_rate"] = hits / (hits + misses) if hits + misses else 0.0
    return merged


def _run_round(
    chunks: list[list[_Entry]],
    spec: FrameworkSpec,
    config: ParallelConfig,
    worker_stats: dict[int, dict],
    snapshot_file: str | None = None,
) -> list[tuple[_Entry, AppResult]]:
    """Dispatch one round's chunks over a fresh pool and drain every
    future — including the ones a dying worker broke."""
    entry_by_index = {
        entry[0]: entry for chunk in chunks for entry in chunk
    }
    out: list[tuple[_Entry, AppResult]] = []
    with ProcessPoolExecutor(
        max_workers=config.jobs,
        mp_context=_pool_context(),
        initializer=_init_worker,
        initargs=(spec, config.include, config.fault_plan, snapshot_file),
    ) as pool:
        futures = {
            pool.submit(_analyze_chunk, chunk, config.timeout_s): chunk
            for chunk in chunks
        }
        for future in as_completed(futures):
            chunk = futures[future]
            try:
                pid, results, snapshot = future.result()
            except Exception as exc:  # noqa: BLE001 — isolate the chunk
                # BrokenProcessPool lands here for the chunk whose
                # worker died *and* for every chunk still queued on
                # the now-broken pool; all of them come back as
                # retryable worker-lost records.
                results = _worker_lost_results(chunk, exc)
            else:
                worker_stats[pid] = snapshot
            for index, result in results:
                out.append((entry_by_index[index], result))
    return out


def run_tools_parallel(
    apps: Iterable[ForgedApp],
    spec: FrameworkSpec,
    config: ParallelConfig,
    *,
    progress: Callable[[str], None] | None = None,
    checkpoint: str | Path | None = None,
) -> RunResults:
    """Analyze ``apps`` over a pool of ``config.jobs`` workers.

    Results are returned in corpus order whatever order workers finish
    in; every app yields exactly one :class:`AppResult`, failed or
    not.  Retryable failures are re-dispatched (fresh round, fresh
    pool, single-app tasks) until they succeed or exhaust
    ``config.max_retries``; a journal passed via ``checkpoint``
    records finalized results and lets a killed run resume.
    """
    indexed = list(enumerate(apps))
    out = RunResults()
    if not indexed:
        return out

    journal = None
    restored: dict[int, AppResult] = {}
    if checkpoint is not None:
        from .checkpoint import CheckpointJournal

        journal = CheckpointJournal(checkpoint, tools=config.include)
        restored = journal.load()

    done: dict[int, AppResult] = dict(restored)
    pending: list[_Entry] = [
        (index, forged, 0)
        for index, forged in indexed
        if index not in restored
    ]

    # Persistent cache, parent side: result hits are served before any
    # dispatch (the pool never sees them), misses are fingerprinted now
    # and stored after finalization — a single writer, no locking.
    rcache = None
    snapshot_file: str | None = None
    fp_by_index: dict[int, str] = {}
    cached: list[int] = []
    if config.cache_dir is not None and pending:
        from ..cache import (
            ResultCache,
            fingerprint_config,
            fingerprint_spec,
        )
        from .runner import _apk_fingerprint

        rcache = ResultCache(
            config.cache_dir,
            framework_fingerprint=fingerprint_spec(spec),
            config_fingerprint=fingerprint_config(config.include),
        )
        still_pending: list[_Entry] = []
        for entry in pending:
            index, forged, attempt = entry
            faulted = (
                config.fault_plan is not None
                and config.fault_plan.fault_for(index) is not None
            )
            apk_fp = None if faulted else _apk_fingerprint(forged)
            hit = rcache.get(apk_fp) if apk_fp is not None else None
            if hit is not None:
                done[index] = hit
                cached.append(index)
                if journal is not None:
                    journal.append(index, hit)
                if progress is not None:
                    progress(hit.app)
                continue
            if apk_fp is not None:
                fp_by_index[index] = apk_fp
            still_pending.append(entry)
        pending = still_pending

    if pending:
        # Prebuild the substrate in the parent (from the snapshot when
        # one exists) so that under fork every worker of every round —
        # including retry rounds' fresh pools — inherits the built
        # database instead of re-mining it; spawn platforms fall back
        # to the snapshot file threaded into the initializer.
        from ..cache.snapshot import load_or_build_substrate

        framework, apidb, _source = load_or_build_substrate(
            config.cache_dir, spec
        )
        register_database(spec, apidb)
        if config.cache_dir is not None:
            from ..cache import ensure_snapshot

            snapshot_file = str(
                ensure_snapshot(config.cache_dir, framework, apidb)
            )

    worker_stats: dict[int, dict] = {}
    round_no = 0
    while pending:
        if round_no == 0:
            chunk_size = config.resolved_chunk_size(len(pending))
        else:
            # Retry rounds: single-app re-dispatch on a fresh pool,
            # after a bounded backoff.
            chunk_size = 1
            if config.retry_backoff_s > 0.0:
                time.sleep(
                    _bounded_backoff(config.retry_backoff_s, round_no)
                )
        chunks = [
            pending[start:start + chunk_size]
            for start in range(0, len(pending), chunk_size)
        ]
        next_pending: list[_Entry] = []
        for entry, result in _run_round(
            chunks, spec, config, worker_stats, snapshot_file
        ):
            index, forged, attempt = entry
            error = result.error
            if (
                error is not None
                and error.retryable
                and attempt < config.max_retries
            ):
                next_pending.append((index, forged, attempt + 1))
                continue
            done[index] = result
            if rcache is not None and result.ok and index in fp_by_index:
                rcache.put(fp_by_index[index], result)
            if journal is not None:
                journal.append(index, result)
            if progress is not None:
                progress(result.app)
        next_pending.sort(key=lambda entry: entry[0])
        pending = next_pending
        round_no += 1

    out.results = [done[index] for index, _ in indexed]
    out.cache_stats = _merge_cache_stats(worker_stats)
    if rcache is not None:
        rcache.flush()
        out.cache_stats["results"] = rcache.stats.as_dict()
    out.resumed_indices = tuple(sorted(restored))
    out.cached_indices = tuple(sorted(cached))
    return out
