"""Parallel corpus-analysis engine.

Large-scale studies vet thousands of apps; analyzing them strictly
serially throws away both hardware parallelism and the fact that every
per-app analysis shares the same immutable substrate (framework spec,
API database).  This module schedules a corpus over a process pool:

* **worker bootstrap** — each worker constructs the framework
  repository + API database *once* (from the pickled spec) in its
  initializer; every app the worker analyzes afterwards hits the
  worker-local framework class cache and database memo tables;
* **chunked scheduling** — apps ship to workers in contiguous chunks
  to amortize pickling overhead while keeping the pool busy;
* **failure isolation** — a crashing or timed-out app yields an
  :class:`~repro.eval.runner.AppResult` with ``error`` set, never a
  dead run; a broken worker poisons only its own chunk;
* **deterministic ordering** — results are reassembled in corpus
  order, and per-app computation is the exact
  :func:`~repro.eval.runner.analyze_app` the serial loop uses, so a
  parallel run's :meth:`RunResults.fingerprint` is identical to a
  serial run's.

The engine is reached through ``run_tools(apps, jobs=N)`` or the
``--jobs`` CLI flag; it has no public surface beyond
:class:`ParallelConfig` and :func:`run_tools_parallel`.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Iterable

from ..core.arm import build_api_database
from ..framework.repository import FrameworkCacheStats, FrameworkRepository
from ..framework.spec import FrameworkSpec
from ..workload.appgen import ForgedApp
from .runner import (
    AppResult,
    DEFAULT_TOOLS,
    RunResults,
    ToolSet,
    analyze_app,
)

__all__ = ["ParallelConfig", "run_tools_parallel"]


@dataclass(frozen=True)
class ParallelConfig:
    """Knobs for one parallel run."""

    #: Worker process count.
    jobs: int = 2
    #: Apps per pool task; ``None`` picks a size that gives each
    #: worker several chunks (load balancing) without making tasks so
    #: small that pickling dominates.
    chunk_size: int | None = None
    #: Per-app wall-clock budget (enforced inside workers).
    timeout_s: float | None = None
    #: Tool names each worker instantiates.
    include: tuple[str, ...] = DEFAULT_TOOLS

    def resolved_chunk_size(self, corpus_size: int) -> int:
        if self.chunk_size is not None:
            return max(1, self.chunk_size)
        per_worker = corpus_size / max(1, self.jobs)
        return max(1, min(16, round(per_worker / 4) or 1))


# -- worker side -----------------------------------------------------------

#: One tool set per worker process, built by the pool initializer and
#: reused for every chunk the worker receives — this is where the
#: cross-app framework/database caches live.
_WORKER_TOOLSET: ToolSet | None = None


def _init_worker(spec: FrameworkSpec, include: tuple[str, ...]) -> None:
    global _WORKER_TOOLSET
    framework = FrameworkRepository(spec)
    apidb = build_api_database(framework)
    # Under the fork start method the worker inherits the parent's
    # database object (same spec identity, so the module-level cache
    # hits) along with whatever cache counters the parent already
    # accumulated — a warm start we gladly keep, but the accounting
    # must cover only this worker's activity.
    apidb.reset_cache_counters()
    framework.cache_stats = FrameworkCacheStats()
    _WORKER_TOOLSET = ToolSet.default(framework, apidb, include=include)


def _analyze_chunk(
    chunk: list[tuple[int, ForgedApp]],
    timeout_s: float | None,
) -> tuple[int, list[tuple[int, AppResult]], dict]:
    """Analyze one chunk in this worker; returns results tagged with
    their corpus indices plus the worker's cumulative cache stats."""
    toolset = _WORKER_TOOLSET
    if toolset is None:  # pragma: no cover — initializer always ran
        raise RuntimeError("worker initialized without a tool set")
    out = [
        (index, analyze_app(toolset, forged, timeout_s=timeout_s))
        for index, forged in chunk
    ]
    return os.getpid(), out, toolset.cache_stats()


# -- parent side -----------------------------------------------------------

def _pool_context():
    """Prefer fork (cheap worker startup, parent pages shared); fall
    back to the platform default where fork is unavailable."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover — non-POSIX platforms
        return multiprocessing.get_context()


def _failure_results(
    chunk: list[tuple[int, ForgedApp]], exc: BaseException
) -> list[tuple[int, AppResult]]:
    """Synthesize failure records when a whole worker task died (e.g.
    the worker process was killed): the run continues, the chunk's
    apps are recorded as failed."""
    error = f"worker failed: {type(exc).__name__}: {exc}"
    return [
        (
            index,
            AppResult(
                app=forged.apk.name,
                truth=forged.truth,
                kloc=forged.apk.dex_kloc,
                error=error,
            ),
        )
        for index, forged in chunk
    ]


def _merge_cache_stats(snapshots: dict[int, dict]) -> dict:
    """Sum per-worker cumulative snapshots into one corpus view."""
    merged = {
        "workers": len(snapshots),
        "framework": {
            "class_hits": 0,
            "class_misses": 0,
            "image_hits": 0,
            "image_misses": 0,
        },
        "apidb": {
            "resolve_hits": 0,
            "resolve_misses": 0,
            "levels_hits": 0,
            "levels_misses": 0,
            "permission_hits": 0,
            "permission_misses": 0,
        },
    }
    for snapshot in snapshots.values():
        for section in ("framework", "apidb"):
            for key in merged[section]:
                merged[section][key] += snapshot[section].get(key, 0)
    fw = merged["framework"]
    class_total = fw["class_hits"] + fw["class_misses"]
    fw["hit_rate"] = fw["class_hits"] / class_total if class_total else 0.0
    db = merged["apidb"]
    hits = db["resolve_hits"] + db["levels_hits"] + db["permission_hits"]
    misses = (
        db["resolve_misses"] + db["levels_misses"] + db["permission_misses"]
    )
    db["hit_rate"] = hits / (hits + misses) if hits + misses else 0.0
    return merged


def run_tools_parallel(
    apps: Iterable[ForgedApp],
    spec: FrameworkSpec,
    config: ParallelConfig,
    *,
    progress: Callable[[str], None] | None = None,
) -> RunResults:
    """Analyze ``apps`` over a pool of ``config.jobs`` workers.

    Results are returned in corpus order whatever order workers finish
    in; every app yields exactly one :class:`AppResult`, failed or not.
    """
    indexed = list(enumerate(apps))
    out = RunResults()
    if not indexed:
        return out
    chunk_size = config.resolved_chunk_size(len(indexed))
    chunks = [
        indexed[start:start + chunk_size]
        for start in range(0, len(indexed), chunk_size)
    ]

    by_index: dict[int, AppResult] = {}
    worker_stats: dict[int, dict] = {}
    with ProcessPoolExecutor(
        max_workers=config.jobs,
        mp_context=_pool_context(),
        initializer=_init_worker,
        initargs=(spec, config.include),
    ) as pool:
        futures = {
            pool.submit(_analyze_chunk, chunk, config.timeout_s): chunk
            for chunk in chunks
        }
        for future in as_completed(futures):
            chunk = futures[future]
            try:
                pid, results, snapshot = future.result()
            except Exception as exc:  # noqa: BLE001 — isolate the chunk
                results = _failure_results(chunk, exc)
            else:
                worker_stats[pid] = snapshot
            for index, result in results:
                by_index[index] = result
                if progress is not None:
                    progress(result.app)

    out.results = [by_index[index] for index, _ in indexed]
    out.cache_stats = _merge_cache_stats(worker_stats)
    return out
