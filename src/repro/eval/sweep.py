"""Parameter sweeps over the substrate.

The scalability claim of the paper is *asymptotic*: SAINTDroid's cost
tracks the code an app actually reaches, while closed-world tools pay
for the entire framework, so the gap must widen as the platform grows.
The paper demonstrates this indirectly (memory/time on one framework);
this sweep makes it explicit by rebuilding the framework at several
sizes and measuring every tool on the *same* apps.

``sweep_framework_scale`` is deliberately self-contained: each sweep
point constructs its own spec/repository/database/tools, so points are
independent measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.cid import Cid
from ..core.arm import mine_spec
from ..core.detector import SaintDroid
from ..framework.catalog import build_spec
from ..framework.repository import FrameworkRepository
from ..workload.appgen import ApiPicker, AppForge

__all__ = ["SweepPoint", "sweep_framework_scale"]


@dataclass(frozen=True)
class SweepPoint:
    """Measurements for one framework size."""

    bulk_classes: int
    framework_classes_at_26: int
    saintdroid_seconds: float
    saintdroid_memory_mb: float
    saintdroid_classes_loaded: int
    cid_seconds: float
    cid_memory_mb: float

    @property
    def memory_ratio(self) -> float:
        return self.cid_memory_mb / self.saintdroid_memory_mb

    @property
    def time_ratio(self) -> float:
        return self.cid_seconds / self.saintdroid_seconds


def _probe_app(apidb, picker, seed: int):
    """A fixed-size probe app; its seeded content is identical in
    spirit across sweep points (API identities necessarily differ
    because the framework itself differs)."""
    forge = AppForge(
        "com.sweep.probe", "SweepProbe",
        min_sdk=19, target_sdk=26, seed=seed,
        apidb=apidb, picker=picker,
    )
    forge.add_direct_issue()
    forge.add_guarded_direct()
    forge.add_caller_guard_trap()
    forge.add_filler(kloc=4.0)
    return forge.build().apk


def _sweep_point(
    bulk: int,
    probes_per_point: int,
    seed: int,
    cache_dir: str | None = None,
    summaries: bool = False,
) -> SweepPoint:
    """One self-contained sweep measurement (module-level so parallel
    sweeps can ship it to pool workers)."""
    spec = build_spec(bulk_classes=bulk, seed=seed)
    if cache_dir is not None:
        # Each sweep point is its own framework, so each gets its own
        # snapshot; a repeated sweep skips every re-mine.
        from ..cache import load_or_build_substrate

        framework, apidb, _source = load_or_build_substrate(
            cache_dir, spec
        )
    else:
        framework = FrameworkRepository(spec)
        apidb = mine_spec(spec)
    picker = ApiPicker(apidb)
    saintdroid = SaintDroid(
        framework,
        apidb,
        framework_summaries=summaries,
        summaries_dir=cache_dir,
    )
    cid = Cid(framework, apidb)

    saint_seconds = saint_memory = saint_loaded = 0.0
    cid_seconds = cid_memory = 0.0
    for probe_index in range(probes_per_point):
        apk = _probe_app(apidb, picker, seed=seed + probe_index)
        saint_report = saintdroid.analyze(apk)
        cid_report = cid.analyze(apk)
        saint_seconds += saint_report.metrics.modeled_seconds
        saint_memory += saint_report.metrics.modeled_memory_mb
        saint_loaded += saint_report.metrics.stats.classes_loaded
        cid_seconds += cid_report.metrics.modeled_seconds
        cid_memory += cid_report.metrics.modeled_memory_mb

    return SweepPoint(
        bulk_classes=bulk,
        framework_classes_at_26=framework.image_class_count(26),
        saintdroid_seconds=saint_seconds / probes_per_point,
        saintdroid_memory_mb=saint_memory / probes_per_point,
        saintdroid_classes_loaded=int(saint_loaded / probes_per_point),
        cid_seconds=cid_seconds / probes_per_point,
        cid_memory_mb=cid_memory / probes_per_point,
    )


def sweep_framework_scale(
    bulk_sizes: tuple[int, ...] = (500, 1000, 2000, 4000),
    *,
    probes_per_point: int = 3,
    seed: int = 11,
    jobs: int = 1,
    cache_dir: str | None = None,
    summaries: bool = False,
) -> list[SweepPoint]:
    """Measure SAINTDroid vs CID across framework sizes.

    Sweep points are independent measurements, so ``jobs > 1`` runs
    them concurrently (one point per worker); results keep the
    ``bulk_sizes`` order either way.  ``cache_dir`` snapshots each
    point's framework substrate so a repeated sweep re-mines nothing.
    ``summaries`` runs SAINTDroid's probes with framework
    pre-summaries (same findings, summarized explore phase).
    """
    if jobs > 1 and len(bulk_sizes) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(
            max_workers=min(jobs, len(bulk_sizes))
        ) as pool:
            return list(
                pool.map(
                    _sweep_point,
                    bulk_sizes,
                    (probes_per_point,) * len(bulk_sizes),
                    (seed,) * len(bulk_sizes),
                    (cache_dir,) * len(bulk_sizes),
                    (summaries,) * len(bulk_sizes),
                )
            )
    return [
        _sweep_point(bulk, probes_per_point, seed, cache_dir, summaries)
        for bulk in bulk_sizes
    ]
