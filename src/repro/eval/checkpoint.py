"""Checkpoint journal: crash-safe JSONL of completed app results.

A corpus run over thousands of apps can be killed — by an operator, a
scheduler preemption, or the machine itself — with hours of finished
analysis in memory.  The journal makes those results durable: every
finalized :class:`~repro.eval.runner.AppResult` is appended to a JSONL
file the moment it completes (one fsync-friendly line per app, in
completion order, tagged with its corpus index).  A re-run pointed at
the same journal *resumes*: journaled indices are restored instead of
re-analyzed, and because the serialization round-trips every
fingerprint-relevant field (mismatches, metrics work/memory units,
ground truth, error records), a resumed run's
:meth:`RunResults.fingerprint` is bit-identical to an uninterrupted
one's.

File format — line 1 is a header record::

    {"type": "header", "version": 1, "tools": ["SAINTDroid", ...]}

followed by one result record per completed app::

    {"type": "result", "index": 17, "app": "corpus-00017", ...}

A truncated final line (the run died mid-write) is silently dropped;
the affected app is simply re-analyzed on resume.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..analysis.intervals import ApiInterval
from ..core.detector import AnalysisReport
from ..core.errors import AnalysisError
from ..core.metrics import AnalysisMetrics
from ..core.mismatch import Mismatch, MismatchKind
from ..ir.types import MethodRef
from ..workload.groundtruth import GroundTruth
from .runner import AppResult

__all__ = ["CheckpointError", "CheckpointJournal"]

FORMAT_VERSION = 1


class CheckpointError(ValueError):
    """The journal is unusable for this run (wrong tools/version)."""


# ---------------------------------------------------------------------------
# result codec
# ---------------------------------------------------------------------------

def _ref_to_list(ref: MethodRef | None) -> list[str] | None:
    if ref is None:
        return None
    return [ref.class_name, ref.name, ref.descriptor]


def _ref_from_list(data: list[str] | None) -> MethodRef | None:
    if data is None:
        return None
    return MethodRef(*data)


def _mismatch_to_dict(mismatch: Mismatch) -> dict:
    return {
        "kind": mismatch.kind.value,
        "app": mismatch.app,
        "location": _ref_to_list(mismatch.location),
        "subject": _ref_to_list(mismatch.subject),
        "levels": [mismatch.missing_levels.lo, mismatch.missing_levels.hi],
        "permission": mismatch.permission,
        "message": mismatch.message,
    }


def _mismatch_from_dict(doc: dict) -> Mismatch:
    return Mismatch(
        kind=MismatchKind(doc["kind"]),
        app=doc["app"],
        location=_ref_from_list(doc.get("location")),
        subject=_ref_from_list(doc.get("subject")),
        missing_levels=ApiInterval.of(*doc["levels"]),
        permission=doc.get("permission"),
        message=doc.get("message", ""),
    )


def _metrics_to_dict(metrics: AnalysisMetrics | None) -> dict | None:
    if metrics is None:
        return None
    return {
        "failed": metrics.failed,
        "failureReason": metrics.failure_reason,
        "workUnits": metrics.work_units,
        "memoryUnits": metrics.memory_units,
        "wallTimeS": metrics.wall_time_s,
        "phaseSeconds": dict(metrics.phase_seconds),
        "passSeconds": dict(metrics.pass_seconds),
    }


def _metrics_from_dict(
    doc: dict | None, *, tool: str, app: str
) -> AnalysisMetrics | None:
    if doc is None:
        return None
    # Totals are restored through the ``extra_*`` channels over empty
    # LoadStats, so the ``work_units``/``memory_units`` properties —
    # and everything derived from them (modeled seconds/MB,
    # fingerprints) — reproduce the journaled values exactly.
    return AnalysisMetrics(
        tool=tool,
        app=app,
        wall_time_s=doc.get("wallTimeS", 0.0),
        extra_work_units=doc.get("workUnits", 0),
        extra_memory_units=doc.get("memoryUnits", 0),
        failed=bool(doc.get("failed", False)),
        failure_reason=doc.get("failureReason", ""),
        # Optional for journals written before phase/pass timing
        # existed.
        phase_seconds=dict(doc.get("phaseSeconds") or {}),
        pass_seconds=dict(doc.get("passSeconds") or {}),
    )


def result_to_dict(index: int, result: AppResult) -> dict:
    """Encode one finalized result as a journal record."""
    return {
        "type": "result",
        "index": index,
        "app": result.app,
        "kloc": result.kloc,
        "ingest": list(result.ingest_diagnostics),
        "error": result.error.to_dict() if result.error else None,
        "truth": result.truth.to_dict(),
        "reports": {
            tool: {
                "mismatches": [
                    _mismatch_to_dict(m) for m in report.mismatches
                ],
                "metrics": _metrics_to_dict(report.metrics),
            }
            for tool, report in result.reports.items()
        },
    }


def result_from_dict(doc: dict) -> tuple[int, AppResult]:
    """Decode a journal record back into ``(index, AppResult)``."""
    app = doc["app"]
    reports = {}
    for tool, entry in doc.get("reports", {}).items():
        reports[tool] = AnalysisReport(
            app=app,
            tool=tool,
            mismatches=[
                _mismatch_from_dict(m) for m in entry["mismatches"]
            ],
            metrics=_metrics_from_dict(
                entry.get("metrics"), tool=tool, app=app
            ),
        )
    error_doc = doc.get("error")
    return doc["index"], AppResult(
        app=app,
        truth=GroundTruth.from_dict(doc["truth"]),
        reports=reports,
        kloc=doc["kloc"],
        error=AnalysisError.from_dict(error_doc) if error_doc else None,
        ingest_diagnostics=tuple(doc.get("ingest", ())),
    )


# ---------------------------------------------------------------------------
# the journal
# ---------------------------------------------------------------------------

class CheckpointJournal:
    """Append-only JSONL journal keyed by corpus index.

    ``load()`` returns everything already journaled (empty for a fresh
    file); ``append()`` durably records one more finalized result.
    The same path can be carried across any number of kill/resume
    cycles.
    """

    def __init__(self, path: str | Path, *, tools: tuple[str, ...]):
        self.path = Path(path)
        self.tools = tuple(tools)

    def load(self) -> dict[int, AppResult]:
        """Read all journaled results, validating the header."""
        if not self.path.exists():
            return {}
        restored: dict[int, AppResult] = {}
        lines = self.path.read_text().splitlines()
        for lineno, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                if lineno == len(lines) - 1:
                    # The run died mid-write; drop the partial record
                    # and let resume re-analyze that app.
                    continue
                raise CheckpointError(
                    f"{self.path}: corrupt journal line {lineno + 1}"
                )
            if doc.get("type") == "header":
                self._check_header(doc)
            elif doc.get("type") == "result":
                index, result = result_from_dict(doc)
                restored[index] = result
        return restored

    def append(self, index: int, result: AppResult) -> None:
        """Durably record one finalized result."""
        record = json.dumps(result_to_dict(index, result))
        header = ""
        if not self.path.exists() or self.path.stat().st_size == 0:
            header = (
                json.dumps(
                    {
                        "type": "header",
                        "version": FORMAT_VERSION,
                        "tools": list(self.tools),
                    }
                )
                + "\n"
            )
        with open(self.path, "a") as handle:
            handle.write(header + record + "\n")
            handle.flush()

    def _check_header(self, doc: dict) -> None:
        version = doc.get("version")
        if version != FORMAT_VERSION:
            raise CheckpointError(
                f"{self.path}: unsupported journal version {version!r}"
            )
        journal_tools = tuple(doc.get("tools", ()))
        if journal_tools != self.tools:
            raise CheckpointError(
                f"{self.path}: journal was written for tools "
                f"{journal_tools}, this run uses {self.tools}"
            )
