"""Text flamegraph of where corpus analysis time goes.

Per-pass wall times (``pass_seconds``, recorded by the pipeline's
timing hook) and the coarser paper phases (``phase_seconds``) are
aggregated across a whole run and rendered as an indented
tool → phase → pass breakdown with proportional bars — a flamegraph
flattened to monospace text, suitable for checking into
``benchmarks/results/`` next to the JSON artifacts::

    SAINTDroid                                  total 12.345s
      explore   ██████████████░░░░░░░░░░░  55.3%   6.826s
        icfg-explore                       55.3%   6.826s
      guards    ████░░░░░░░░░░░░░░░░░░░░░  16.0%   1.975s
        guard-propagation                  10.1%   1.247s
        ...

Passes are attributed to phases through the pass registry; a pass
name with no registered phase (or timing recorded outside any pass)
lands under ``(unattributed)`` so the sections always reconcile.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

__all__ = ["render_phase_flame"]

_BAR_WIDTH = 25
_UNATTRIBUTED = "(unattributed)"


def _bar(fraction: float) -> str:
    filled = round(max(0.0, min(1.0, fraction)) * _BAR_WIDTH)
    return "█" * filled + "░" * (_BAR_WIDTH - filled)


def _pass_phase(pass_name: str) -> str:
    from ..pipeline.passes import registered_passes

    cls = registered_passes().get(pass_name)
    phase = getattr(cls, "phase", None)
    return phase or _UNATTRIBUTED


def render_phase_flame(results: Iterable, *, title: str | None = None) -> str:
    """Render the aggregated breakdown for ``results`` (an iterable of
    :class:`~repro.eval.runner.AppResult`)."""
    # tool -> phase -> seconds; tool -> phase -> pass -> seconds
    phase_totals: dict[str, dict[str, float]] = defaultdict(
        lambda: defaultdict(float)
    )
    pass_totals: dict[str, dict[str, dict[str, float]]] = defaultdict(
        lambda: defaultdict(lambda: defaultdict(float))
    )
    apps = 0
    for result in results:
        apps += 1
        for tool, report in sorted(result.reports.items()):
            metrics = report.metrics
            if metrics is None:
                continue
            for phase, seconds in metrics.phase_seconds.items():
                phase_totals[tool][phase] += seconds
            for pass_name, seconds in metrics.pass_seconds.items():
                phase = _pass_phase(pass_name)
                pass_totals[tool][phase][pass_name] += seconds

    lines = []
    if title:
        lines.append(title)
    lines.append(f"apps aggregated: {apps}")
    for tool in sorted(phase_totals):
        phases = phase_totals[tool]
        # Phase-less pass time (bookkeeping passes) still deserves a
        # row, so fold any pass-only buckets into the phase table.
        for phase, passes in pass_totals[tool].items():
            if phase not in phases:
                phases[phase] = sum(passes.values())
        total = sum(phases.values())
        lines.append("")
        lines.append(f"{tool:<42} total {total:.3f}s")
        for phase, seconds in sorted(
            phases.items(), key=lambda item: -item[1]
        ):
            share = seconds / total if total else 0.0
            lines.append(
                f"  {phase:<9} {_bar(share)} {share * 100:5.1f}% "
                f"{seconds:9.3f}s"
            )
            for pass_name, pass_s in sorted(
                pass_totals[tool].get(phase, {}).items(),
                key=lambda item: -item[1],
            ):
                pass_share = pass_s / total if total else 0.0
                lines.append(
                    f"    {pass_name:<33} {pass_share * 100:5.1f}% "
                    f"{pass_s:9.3f}s"
                )
    return "\n".join(lines) + "\n"
