"""Experiment runner: drive every tool over a set of workloads.

Shares a single framework repository and API database across all tools
— exactly as the paper's protocol does ("the API database is
constructed once for a given framework … upon which the compatibility
analysis of all apps relies") — so the per-app measurements contain no
database-construction noise.

Corpus-scale runs fan out over a process pool (``jobs > 1``); the
scheduling, worker bootstrap, and result-ordering machinery lives in
:mod:`repro.eval.parallel`.  Both paths funnel every app through
:func:`analyze_app`, so a parallel run produces results identical to a
serial one (verified by :meth:`RunResults.fingerprint` equality in the
test suite).

Fault tolerance (both paths):

* a crashing, hanging, or malformed app yields an
  :class:`~repro.core.errors.AnalysisError` record on its
  :class:`AppResult` — never a dead run;
* *retryable* failures (timeouts, lost workers, resource exhaustion)
  are re-attempted up to ``max_retries`` times with bounded backoff
  before the app is quarantined;
* ``checkpoint=`` journals completed results to a JSONL file
  (:mod:`repro.eval.checkpoint`); a killed run resumes by skipping
  journaled indices, reproducing the uninterrupted fingerprint;
* ``fault_plan=`` injects deterministic faults for chaos testing
  (:mod:`repro.eval.faults`).
"""

from __future__ import annotations

import random
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable

from ..baselines.cid import Cid
from ..baselines.cider import Cider
from ..baselines.lint import Lint
from ..core.apidb import ApiDatabase
from ..core.arm import build_api_database
from ..core.detector import AnalysisReport, SaintDroid
from ..core.errors import AnalysisError, classify_exception
from ..framework.repository import FrameworkRepository
from ..pipeline.hooks import FaultInjectionHook
from ..workload.appgen import ForgedApp
from ..workload.groundtruth import GroundTruth
from .accuracy import KIND_GROUPS, ToolAccuracy, score_apps

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from .faults import FaultPlan

__all__ = [
    "ToolSet",
    "AppResult",
    "RunResults",
    "AppTimeoutError",
    "ALL_TOOL_CONFIGS",
    "analyze_app",
    "run_tools",
]

DEFAULT_TOOLS = ("SAINTDroid", "CID", "CIDER", "Lint")

#: Every registered tool/ablation configuration, in the canonical
#: order campaigns iterate them.  The two SAINTDroid ablations are
#: name-addressable (not constructor-flag-only) so the process pool
#: and the serve daemon — whose workers rebuild tools from *names*
#: via :meth:`ToolSet.default` — reconstruct them faithfully.  An
#: ablation's reports, checkpoint headers, and cache keys all carry
#: its configuration name, never plain ``SAINTDroid``.
ALL_TOOL_CONFIGS = (
    "SAINTDroid",
    "SAINTDroid-eager",
    "SAINTDroid-anon",
    "CID",
    "CIDER",
    "Lint",
)


def _named(tool, name: str):
    """Stamp a catalog configuration name onto a tool instance (the
    class attribute stays ``SAINTDroid``; results are keyed by the
    instance name)."""
    tool.name = name
    return tool

#: Retry backoff is bounded: no attempt ever waits longer than
#: ``retry_backoff_s * BACKOFF_CAP_FACTOR``.
BACKOFF_CAP_FACTOR = 8


class AppTimeoutError(Exception):
    """One app exceeded the per-app wall-clock budget."""


@dataclass
class ToolSet:
    """The four detectors sharing one framework + database."""

    framework: FrameworkRepository
    apidb: ApiDatabase
    tools: list
    #: True when SAINTDroid runs with framework pre-summaries (the
    #: summarized ablation).  Carried here so both schedulers key the
    #: persistent result cache on the mode and so the parallel engine
    #: rebuilds workers in the same mode.
    summaries: bool = False
    #: True when SAINTDroid runs delta analysis against the corpus-wide
    #: class-artifact store (``--dedup``).  Same carrying rationale.
    dedup: bool = False

    @staticmethod
    def default(
        framework: FrameworkRepository | None = None,
        apidb: ApiDatabase | None = None,
        *,
        include: tuple[str, ...] = DEFAULT_TOOLS,
        summaries: bool = False,
        summaries_dir: str | None = None,
        dedup: bool = False,
        dedup_dir: str | None = None,
    ) -> "ToolSet":
        framework = framework or FrameworkRepository()
        apidb = apidb or build_api_database(framework)
        catalog: dict[str, Callable[[], object]] = {
            "SAINTDroid": lambda: SaintDroid(
                framework,
                apidb,
                framework_summaries=summaries,
                summaries_dir=summaries_dir,
                dedup=dedup,
                dedup_dir=dedup_dir,
            ),
            # The ablations deliberately ignore --summaries/--dedup:
            # each ablates exactly one knob against the plain lazy
            # configuration, and the class-artifact store records
            # plain-configuration facts (replaying them under altered
            # guard propagation would not be parity-safe).
            "SAINTDroid-eager": lambda: _named(
                SaintDroid(framework, apidb, lazy_loading=False),
                "SAINTDroid-eager",
            ),
            "SAINTDroid-anon": lambda: _named(
                SaintDroid(
                    framework,
                    apidb,
                    propagate_guards_into_anonymous=True,
                ),
                "SAINTDroid-anon",
            ),
            "CID": lambda: Cid(framework, apidb),
            "CIDER": lambda: Cider(framework, apidb),
            "Lint": lambda: Lint(framework, apidb),
        }
        tools = [catalog[name]() for name in include]
        return ToolSet(
            framework=framework,
            apidb=apidb,
            tools=tools,
            summaries=summaries,
            dedup=dedup,
        )

    @property
    def tool_names(self) -> tuple[str, ...]:
        return tuple(tool.name for tool in self.tools)

    def cache_stats(self) -> dict:
        """Framework + database cache accounting for this tool set."""
        from ..cache.classes import registered_stores

        stats = {
            "framework": self.framework.cache_stats.as_dict(),
            "apidb": self.apidb.cache_counters.as_dict(),
        }
        stores = registered_stores()
        if stores:
            classes: dict[str, int | float] = {}
            for store in stores:
                for key, value in store.stats.as_dict().items():
                    if not key.endswith("_rate"):
                        classes[key] = classes.get(key, 0) + value
            hits = classes.get("hits", 0)
            misses = classes.get("misses", 0)
            classes["hit_rate"] = hits / (hits + misses) if hits + misses else 0.0
            guard_hits = classes.get("guard_hits", 0)
            guard_misses = classes.get("guard_misses", 0)
            classes["guard_hit_rate"] = (
                guard_hits / (guard_hits + guard_misses)
                if guard_hits + guard_misses
                else 0.0
            )
            stats["classes"] = classes
        return stats


@dataclass
class AppResult:
    """All tools' reports for one app."""

    app: str
    truth: GroundTruth
    reports: dict[str, AnalysisReport] = field(default_factory=dict)
    kloc: float = 0.0
    #: Set when the app's analysis failed (crash, timeout, lost
    #: worker, malformed package); the reports dict is empty in that
    #: case and downstream consumers (tables, figures, accuracy) skip
    #: the app for the failed tools.  The record carries the failure
    #: kind, pipeline phase, retryability, and a traceback tail.
    error: AnalysisError | None = None
    #: Lenient-ingestion diagnostic codes carried by the app's package
    #: (empty for well-formed packages and strict ingests).
    ingest_diagnostics: tuple[str, ...] = ()

    #: True when this result was served from the persistent result
    #: cache instead of analyzed (excluded from fingerprints).
    from_cache: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None

    def report(self, tool: str) -> AnalysisReport:
        return self.reports[tool]

    def phase_seconds(self) -> dict[str, float]:
        """Measured wall seconds per pipeline phase, summed over this
        app's tools (``load``/``explore``/``guards``/``detect``)."""
        totals: dict[str, float] = {}
        for report in self.reports.values():
            metrics = report.metrics
            if metrics is None:
                continue
            for phase, seconds in metrics.phase_seconds.items():
                totals[phase] = totals.get(phase, 0.0) + seconds
        return totals

    def fingerprint(self) -> dict:
        """Deterministic content of this result: everything except
        wall-clock noise, warm-cache accounting, and retry counts (all
        legitimately vary between runs and between serial/parallel
        schedules)."""
        reports = {}
        for tool in sorted(self.reports):
            report = self.reports[tool]
            metrics = report.metrics
            reports[tool] = {
                "mismatches": [m.describe() for m in report.mismatches],
                "failed": bool(metrics and metrics.failed),
                "work_units": metrics.work_units if metrics else 0,
                "memory_units": metrics.memory_units if metrics else 0,
            }
        return {
            "app": self.app,
            "kloc": self.kloc,
            "error": self.error.fingerprint() if self.error else None,
            "ingest": list(self.ingest_diagnostics),
            "truth": sorted(str(issue.key) for issue in self.truth.issues),
            "reports": reports,
        }

    def findings_fingerprint(self) -> dict:
        """Findings-only content: mismatches, failure flags, and the
        error record — no cost-model accounting.  Invariant across the
        lazy/summarized ablation (which changes work/memory units but
        must never change findings), so the parity test and CI job
        compare this, not :meth:`fingerprint`."""
        reports = {}
        for tool in sorted(self.reports):
            report = self.reports[tool]
            metrics = report.metrics
            reports[tool] = {
                "mismatches": [m.describe() for m in report.mismatches],
                "failed": bool(metrics and metrics.failed),
            }
        return {
            "app": self.app,
            "error": self.error.fingerprint() if self.error else None,
            "reports": reports,
        }


@dataclass
class RunResults:
    """Results of one experiment run."""

    results: list[AppResult] = field(default_factory=list)
    #: Cache accounting gathered at the end of the run (aggregated
    #: over workers for parallel runs).  Excluded from fingerprints.
    cache_stats: dict = field(default_factory=dict)
    #: Corpus indices restored from a checkpoint journal instead of
    #: analyzed in this run.  Excluded from fingerprints.
    resumed_indices: tuple[int, ...] = ()
    #: Corpus indices served from the persistent result cache instead
    #: of analyzed in this run.  Excluded from fingerprints.
    cached_indices: tuple[int, ...] = ()

    def __len__(self) -> int:
        return len(self.results)

    @property
    def tools(self) -> tuple[str, ...]:
        for result in self.results:
            if result.reports:
                return tuple(result.reports)
        return ()

    @property
    def failed_apps(self) -> tuple[str, ...]:
        return tuple(r.app for r in self.results if not r.ok)

    @property
    def quarantined(self) -> tuple[AppResult, ...]:
        """Apps that exhausted their retry budget (or failed
        non-retryably) — each with its full error record."""
        return tuple(r for r in self.results if r.error is not None)

    def phase_totals(self) -> dict[str, float]:
        """Measured wall seconds per pipeline phase summed over the
        whole run (cache hits contribute their *original* measured
        times, so warm totals reflect the work that was skipped)."""
        totals: dict[str, float] = {}
        for result in self.results:
            for phase, seconds in result.phase_seconds().items():
                totals[phase] = totals.get(phase, 0.0) + seconds
        return dict(sorted(totals.items()))

    def error_summary(self) -> dict[str, int]:
        """Failure counts keyed by error kind (``timeout``, ``crash``,
        …) — the per-kind breakdown a corpus run ends with."""
        counts: dict[str, int] = {}
        for result in self.results:
            if result.error is not None:
                kind = result.error.kind.value
                counts[kind] = counts.get(kind, 0) + 1
        return dict(sorted(counts.items()))

    def fingerprint(self) -> dict:
        """Deterministic run content; identical for serial and
        parallel runs over the same apps and tools."""
        return {"results": [r.fingerprint() for r in self.results]}

    def findings_fingerprint(self) -> dict:
        """Findings-only run content (see
        :meth:`AppResult.findings_fingerprint`): identical across the
        lazy/summarized ablation as well as across schedulers."""
        return {
            "results": [r.findings_fingerprint() for r in self.results]
        }

    def accuracy(
        self,
        tool: str,
        groups: dict[str, tuple[str, ...]] | None = None,
    ) -> ToolAccuracy:
        pairs = [
            (result.reports[tool], result.truth)
            for result in self.results
            if tool in result.reports
        ]
        return score_apps(tool, pairs, groups or KIND_GROUPS)

    def accuracies(self) -> dict[str, ToolAccuracy]:
        return {tool: self.accuracy(tool) for tool in self.tools}


# ---------------------------------------------------------------------------
# per-app deadlines
# ---------------------------------------------------------------------------

#: Module flag (not a local ``hasattr`` check) so tests can force the
#: thread-based fallback on platforms that do have ``SIGALRM``.
_SIGALRM_AVAILABLE = hasattr(signal, "SIGALRM")


@contextmanager
def _app_deadline(timeout_s: float | None):
    """Raise :class:`AppTimeoutError` after ``timeout_s`` wall seconds.

    Uses ``SIGALRM`` (one app per process at a time, in both the
    serial loop and pool workers, so the timer is never shared).  On
    exit any pre-existing handler *and* itimer are restored — a nested
    use (an outer coarser deadline around an inner per-app one) keeps
    the outer timer running with its remaining budget instead of
    having it silently cancelled.
    """
    if timeout_s is None:
        yield
        return

    def _expired(signum, frame):
        raise AppTimeoutError(
            f"app analysis exceeded {timeout_s:.0f}s wall-clock budget"
        )

    previous_handler = signal.getsignal(signal.SIGALRM)
    prev_delay, prev_interval = signal.getitimer(signal.ITIMER_REAL)
    started = time.monotonic()
    signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous_handler)
        if prev_delay > 0.0:
            # Re-arm the outer timer with whatever budget it has left
            # (a minimum epsilon: an already-expired outer deadline
            # must still fire, just immediately-ish).
            elapsed = time.monotonic() - started
            remaining = max(prev_delay - elapsed, 1e-6)
            signal.setitimer(
                signal.ITIMER_REAL, remaining, prev_interval
            )


def _call_with_thread_deadline(fn: Callable[[], None], timeout_s: float):
    """Deadline fallback for platforms without ``SIGALRM`` (and for
    non-main threads, where signals cannot be delivered).

    The analysis runs in a daemon thread that is *abandoned* on
    timeout — Python offers no safe preemption — so the caller's run
    proceeds while the stuck computation is left to the process's
    lifetime.  Pool workers are recycled between rounds, which bounds
    the leak in long corpus runs.
    """
    outcome: dict[str, BaseException] = {}
    done = threading.Event()

    def _target() -> None:
        try:
            fn()
        except BaseException as exc:  # noqa: BLE001 — re-raised below
            outcome["error"] = exc
        finally:
            done.set()

    worker = threading.Thread(
        target=_target, name="app-deadline", daemon=True
    )
    worker.start()
    if not done.wait(timeout_s):
        raise AppTimeoutError(
            f"app analysis exceeded {timeout_s:.0f}s wall-clock budget"
        )
    if "error" in outcome:
        raise outcome["error"]


def _run_under_deadline(fn: Callable[[], None], timeout_s: float | None):
    """Run ``fn`` under the best available deadline mechanism."""
    if timeout_s is None:
        fn()
        return
    if _SIGALRM_AVAILABLE and (
        threading.current_thread() is threading.main_thread()
    ):
        with _app_deadline(timeout_s):
            fn()
        return
    _call_with_thread_deadline(fn, timeout_s)


# ---------------------------------------------------------------------------
# per-app analysis
# ---------------------------------------------------------------------------

def analyze_app(
    toolset: ToolSet,
    forged: ForgedApp,
    *,
    timeout_s: float | None = None,
    fault=None,
    attempt: int = 0,
    allow_process_death: bool = False,
) -> AppResult:
    """Analyze one app with every tool; never raises.

    A crash or timeout yields an :class:`AppResult` with ``error`` set
    (a structured :class:`~repro.core.errors.AnalysisError` carrying
    kind, phase, retryability, and the traceback tail) and no reports
    — one bad app cannot take down a corpus run.  Used verbatim by the
    serial loop and by pool workers so both schedules compute
    identical results.  Per-app AUM models are dropped from the
    reports: the eval layer never reads them and they dominate
    inter-process transfer cost.

    ``fault`` is an injected :class:`~repro.eval.faults.InjectedFault`
    for chaos testing; ``attempt`` is the 0-based retry attempt (used
    both by transient faults and the error record's attempt count);
    ``allow_process_death`` lets a worker-death fault actually kill
    the process (pool workers only — a serial run simulates it with a
    raised :class:`~repro.core.errors.WorkerLostError` instead).
    """
    result = AppResult(
        app=forged.apk.name,
        truth=forged.truth,
        kloc=forged.apk.dex_kloc,
    )

    fault_hook = None
    if fault is not None:
        fault_hook = FaultInjectionHook(
            fault, attempt, allow_process_death=allow_process_death
        )

    def _run_all_tools() -> None:
        # Faults attach as a pass-manager hook and fire before the
        # first pass of the first tool — inside the deadline scope, so
        # an injected hang surfaces exactly like a real one: as a
        # timeout.
        for tool in toolset.tools:
            if fault_hook is not None and not getattr(
                tool, "supports_pipeline_hooks", False
            ):
                # Third-party detectors without a pass pipeline still
                # get the fault, fired directly before their analyze.
                fault_hook.trigger_now()
            hooks = (fault_hook,) if fault_hook is not None else ()
            if getattr(tool, "supports_pipeline_hooks", False):
                report = tool.analyze(forged.apk, hooks=hooks)
            else:
                report = tool.analyze(forged.apk)
            report.model = None
            result.reports[tool.name] = report
        if fault_hook is not None:
            # An empty tool list must still surface the injected
            # fault (it models the app being touched at all).
            fault_hook.trigger_now()

    try:
        # Inside the guard: a hostile package object may raise from
        # any attribute access, including the diagnostics probe.
        result.ingest_diagnostics = tuple(
            diag.code
            for diag in getattr(forged.apk, "diagnostics", ())
        )
        _run_under_deadline(_run_all_tools, timeout_s)
    except Exception as exc:  # noqa: BLE001 — recorded, not swallowed
        result.reports.clear()
        result.error = classify_exception(exc, attempts=attempt + 1)
    return result


def _bounded_backoff(base_s: float, attempt: int) -> float:
    """Exponential backoff ceiling, capped so a retry never stalls the
    run.  This is the *upper bound* of the sleep; the actual sleep is
    drawn by :func:`_full_jitter_backoff`."""
    return min(base_s * 2 ** (attempt - 1), base_s * BACKOFF_CAP_FACTOR)


def _full_jitter_backoff(
    base_s: float, attempt: int, rng: random.Random | None = None
) -> float:
    """Full-jitter backoff: uniform over ``[0, bounded ceiling]``.

    A deterministic exponential backoff re-stampedes the pool — every
    retried app sleeps the same duration and the whole retry round
    lands on the workers at the same instant.  Full jitter (the AWS
    "exponential backoff and jitter" result) spreads the retries over
    the entire window, which both de-synchronizes the stampede and
    keeps the *expected* wait at half the deterministic one.
    """
    if base_s <= 0.0:
        return 0.0
    ceiling = _bounded_backoff(base_s, attempt)
    return (rng if rng is not None else random).uniform(0.0, ceiling)


def run_tools(
    apps: Iterable[ForgedApp],
    toolset: ToolSet | None = None,
    *,
    jobs: int = 1,
    chunk_size: int | None = None,
    timeout_s: float | None = None,
    progress: Callable[[str], None] | None = None,
    max_retries: int = 0,
    retry_backoff_s: float = 0.0,
    fault_plan: "FaultPlan | None" = None,
    checkpoint: str | Path | None = None,
    cache_dir: str | Path | None = None,
) -> RunResults:
    """Analyze every app with every tool.

    ``jobs > 1`` fans the corpus out over a process pool whose workers
    each construct the shared framework repository + API database once
    (see :mod:`repro.eval.parallel`); results come back in corpus
    order regardless of completion order.

    ``max_retries`` re-attempts retryable failures (timeout,
    worker-lost, resource) before quarantining the app;
    ``retry_backoff_s`` sleeps a bounded exponential backoff between
    attempts.  ``checkpoint`` journals completed results to a JSONL
    file and, when the file already holds results for this corpus,
    resumes by skipping the journaled indices — a resumed run's
    fingerprint equals an uninterrupted one's.  ``fault_plan`` injects
    deterministic faults (chaos testing).

    ``cache_dir`` enables the persistent cache
    (:mod:`repro.cache`): clean per-app
    results keyed by (APK digest, tools, framework) are served from
    disk on later runs, and the framework substrate is snapshotted for
    fast cold-process startup.  Cached results are fingerprint-
    identical to analyzed ones; fault-injected indices bypass the
    cache entirely so chaos runs quarantine exactly what an uncached
    run would.
    """
    toolset = toolset or ToolSet.default()
    if jobs > 1:
        from .parallel import ParallelConfig, run_tools_parallel

        config = ParallelConfig(
            jobs=jobs,
            chunk_size=chunk_size,
            timeout_s=timeout_s,
            include=toolset.tool_names,
            max_retries=max_retries,
            retry_backoff_s=retry_backoff_s,
            fault_plan=fault_plan,
            cache_dir=str(cache_dir) if cache_dir is not None else None,
            summaries=toolset.summaries,
            dedup=toolset.dedup,
        )
        return run_tools_parallel(
            apps,
            toolset.framework.spec,
            config,
            progress=progress,
            checkpoint=checkpoint,
        )

    # The serial scheduler is the orchestration engine plus an
    # in-process backend; every retry/quarantine/checkpoint/cache
    # decision lives in repro.eval.orchestration, shared verbatim with
    # the parallel engine.
    from .orchestration import SerialBackend, run_corpus

    backend = SerialBackend(
        toolset, timeout_s=timeout_s, fault_plan=fault_plan
    )
    return run_corpus(
        apps,
        backend,
        max_retries=max_retries,
        retry_backoff_s=retry_backoff_s,
        fault_plan=fault_plan,
        checkpoint=checkpoint,
        cache_dir=cache_dir,
        progress=progress,
    )
