"""Experiment runner: drive every tool over a set of workloads.

Shares a single framework repository and API database across all tools
— exactly as the paper's protocol does ("the API database is
constructed once for a given framework … upon which the compatibility
analysis of all apps relies") — so the per-app measurements contain no
database-construction noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..baselines.cid import Cid
from ..baselines.cider import Cider
from ..baselines.lint import Lint
from ..core.apidb import ApiDatabase
from ..core.arm import build_api_database
from ..core.detector import AnalysisReport, SaintDroid
from ..framework.repository import FrameworkRepository
from ..workload.appgen import ForgedApp
from ..workload.groundtruth import GroundTruth
from .accuracy import KIND_GROUPS, ToolAccuracy, score_apps

__all__ = ["ToolSet", "AppResult", "RunResults", "run_tools"]


@dataclass
class ToolSet:
    """The four detectors sharing one framework + database."""

    framework: FrameworkRepository
    apidb: ApiDatabase
    tools: list

    @staticmethod
    def default(
        framework: FrameworkRepository | None = None,
        apidb: ApiDatabase | None = None,
        *,
        include: tuple[str, ...] = ("SAINTDroid", "CID", "CIDER", "Lint"),
    ) -> "ToolSet":
        framework = framework or FrameworkRepository()
        apidb = apidb or build_api_database(framework)
        catalog: dict[str, Callable[[], object]] = {
            "SAINTDroid": lambda: SaintDroid(framework, apidb),
            "CID": lambda: Cid(framework, apidb),
            "CIDER": lambda: Cider(framework, apidb),
            "Lint": lambda: Lint(framework, apidb),
        }
        tools = [catalog[name]() for name in include]
        return ToolSet(framework=framework, apidb=apidb, tools=tools)


@dataclass
class AppResult:
    """All tools' reports for one app."""

    app: str
    truth: GroundTruth
    reports: dict[str, AnalysisReport] = field(default_factory=dict)
    kloc: float = 0.0

    def report(self, tool: str) -> AnalysisReport:
        return self.reports[tool]


@dataclass
class RunResults:
    """Results of one experiment run."""

    results: list[AppResult] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def tools(self) -> tuple[str, ...]:
        if not self.results:
            return ()
        return tuple(self.results[0].reports)

    def accuracy(
        self,
        tool: str,
        groups: dict[str, tuple[str, ...]] | None = None,
    ) -> ToolAccuracy:
        pairs = [
            (result.reports[tool], result.truth)
            for result in self.results
            if tool in result.reports
        ]
        return score_apps(tool, pairs, groups or KIND_GROUPS)

    def accuracies(self) -> dict[str, ToolAccuracy]:
        return {tool: self.accuracy(tool) for tool in self.tools}


def run_tools(
    apps: Iterable[ForgedApp],
    toolset: ToolSet | None = None,
    *,
    progress: Callable[[str], None] | None = None,
) -> RunResults:
    """Analyze every app with every tool."""
    toolset = toolset or ToolSet.default()
    out = RunResults()
    for forged in apps:
        result = AppResult(
            app=forged.apk.name,
            truth=forged.truth,
            kloc=forged.apk.dex_kloc,
        )
        for tool in toolset.tools:
            result.reports[tool.name] = tool.analyze(forged.apk)
        out.results.append(result)
        if progress is not None:
            progress(forged.apk.name)
    return out
