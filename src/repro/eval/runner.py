"""Experiment runner: drive every tool over a set of workloads.

Shares a single framework repository and API database across all tools
— exactly as the paper's protocol does ("the API database is
constructed once for a given framework … upon which the compatibility
analysis of all apps relies") — so the per-app measurements contain no
database-construction noise.

Corpus-scale runs fan out over a process pool (``jobs > 1``); the
scheduling, worker bootstrap, and result-ordering machinery lives in
:mod:`repro.eval.parallel`.  Both paths funnel every app through
:func:`analyze_app`, so a parallel run produces results identical to a
serial one (verified by :meth:`RunResults.fingerprint` equality in the
test suite).
"""

from __future__ import annotations

import signal
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..baselines.cid import Cid
from ..baselines.cider import Cider
from ..baselines.lint import Lint
from ..core.apidb import ApiDatabase
from ..core.arm import build_api_database
from ..core.detector import AnalysisReport, SaintDroid
from ..framework.repository import FrameworkRepository
from ..workload.appgen import ForgedApp
from ..workload.groundtruth import GroundTruth
from .accuracy import KIND_GROUPS, ToolAccuracy, score_apps

__all__ = [
    "ToolSet",
    "AppResult",
    "RunResults",
    "AppTimeoutError",
    "analyze_app",
    "run_tools",
]

DEFAULT_TOOLS = ("SAINTDroid", "CID", "CIDER", "Lint")


class AppTimeoutError(Exception):
    """One app exceeded the per-app wall-clock budget."""


@dataclass
class ToolSet:
    """The four detectors sharing one framework + database."""

    framework: FrameworkRepository
    apidb: ApiDatabase
    tools: list

    @staticmethod
    def default(
        framework: FrameworkRepository | None = None,
        apidb: ApiDatabase | None = None,
        *,
        include: tuple[str, ...] = DEFAULT_TOOLS,
    ) -> "ToolSet":
        framework = framework or FrameworkRepository()
        apidb = apidb or build_api_database(framework)
        catalog: dict[str, Callable[[], object]] = {
            "SAINTDroid": lambda: SaintDroid(framework, apidb),
            "CID": lambda: Cid(framework, apidb),
            "CIDER": lambda: Cider(framework, apidb),
            "Lint": lambda: Lint(framework, apidb),
        }
        tools = [catalog[name]() for name in include]
        return ToolSet(framework=framework, apidb=apidb, tools=tools)

    @property
    def tool_names(self) -> tuple[str, ...]:
        return tuple(tool.name for tool in self.tools)

    def cache_stats(self) -> dict:
        """Framework + database cache accounting for this tool set."""
        return {
            "framework": self.framework.cache_stats.as_dict(),
            "apidb": self.apidb.cache_counters.as_dict(),
        }


@dataclass
class AppResult:
    """All tools' reports for one app."""

    app: str
    truth: GroundTruth
    reports: dict[str, AnalysisReport] = field(default_factory=dict)
    kloc: float = 0.0
    #: Non-empty when the app's analysis crashed or timed out; the
    #: reports dict is empty in that case and downstream consumers
    #: (tables, figures, accuracy) skip the app for the failed tools.
    error: str = ""

    @property
    def ok(self) -> bool:
        return not self.error

    def report(self, tool: str) -> AnalysisReport:
        return self.reports[tool]

    def fingerprint(self) -> dict:
        """Deterministic content of this result: everything except
        wall-clock noise and warm-cache accounting (both legitimately
        vary between runs and between serial/parallel schedules)."""
        reports = {}
        for tool in sorted(self.reports):
            report = self.reports[tool]
            metrics = report.metrics
            reports[tool] = {
                "mismatches": [m.describe() for m in report.mismatches],
                "failed": bool(metrics and metrics.failed),
                "work_units": metrics.work_units if metrics else 0,
                "memory_units": metrics.memory_units if metrics else 0,
            }
        return {
            "app": self.app,
            "kloc": self.kloc,
            "error": self.error,
            "truth": sorted(str(issue.key) for issue in self.truth.issues),
            "reports": reports,
        }


@dataclass
class RunResults:
    """Results of one experiment run."""

    results: list[AppResult] = field(default_factory=list)
    #: Cache accounting gathered at the end of the run (aggregated
    #: over workers for parallel runs).  Excluded from fingerprints.
    cache_stats: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def tools(self) -> tuple[str, ...]:
        for result in self.results:
            if result.reports:
                return tuple(result.reports)
        return ()

    @property
    def failed_apps(self) -> tuple[str, ...]:
        return tuple(r.app for r in self.results if not r.ok)

    def fingerprint(self) -> dict:
        """Deterministic run content; identical for serial and
        parallel runs over the same apps and tools."""
        return {"results": [r.fingerprint() for r in self.results]}

    def accuracy(
        self,
        tool: str,
        groups: dict[str, tuple[str, ...]] | None = None,
    ) -> ToolAccuracy:
        pairs = [
            (result.reports[tool], result.truth)
            for result in self.results
            if tool in result.reports
        ]
        return score_apps(tool, pairs, groups or KIND_GROUPS)

    def accuracies(self) -> dict[str, ToolAccuracy]:
        return {tool: self.accuracy(tool) for tool in self.tools}


@contextmanager
def _app_deadline(timeout_s: float | None):
    """Raise :class:`AppTimeoutError` after ``timeout_s`` wall seconds.

    Uses ``SIGALRM`` where available (one app per process at a time, in
    both the serial loop and pool workers, so the timer is never
    shared); elsewhere the deadline is not enforced.
    """
    if timeout_s is None or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _expired(signum, frame):
        raise AppTimeoutError(
            f"app analysis exceeded {timeout_s:.0f}s wall-clock budget"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def analyze_app(
    toolset: ToolSet,
    forged: ForgedApp,
    *,
    timeout_s: float | None = None,
) -> AppResult:
    """Analyze one app with every tool; never raises.

    A crash or timeout yields an :class:`AppResult` with ``error`` set
    and no reports — one bad app cannot take down a corpus run.  Used
    verbatim by the serial loop and by pool workers so both schedules
    compute identical results.  Per-app AUM models are dropped from
    the reports: the eval layer never reads them and they dominate
    inter-process transfer cost.
    """
    result = AppResult(
        app=forged.apk.name,
        truth=forged.truth,
        kloc=forged.apk.dex_kloc,
    )
    try:
        with _app_deadline(timeout_s):
            for tool in toolset.tools:
                report = tool.analyze(forged.apk)
                report.model = None
                result.reports[tool.name] = report
    except Exception as exc:  # noqa: BLE001 — recorded, not swallowed
        result.reports.clear()
        result.error = f"{type(exc).__name__}: {exc}"
    return result


def run_tools(
    apps: Iterable[ForgedApp],
    toolset: ToolSet | None = None,
    *,
    jobs: int = 1,
    chunk_size: int | None = None,
    timeout_s: float | None = None,
    progress: Callable[[str], None] | None = None,
) -> RunResults:
    """Analyze every app with every tool.

    ``jobs > 1`` fans the corpus out over a process pool whose workers
    each construct the shared framework repository + API database once
    (see :mod:`repro.eval.parallel`); results come back in corpus
    order regardless of completion order.
    """
    toolset = toolset or ToolSet.default()
    if jobs > 1:
        from .parallel import ParallelConfig, run_tools_parallel

        config = ParallelConfig(
            jobs=jobs,
            chunk_size=chunk_size,
            timeout_s=timeout_s,
            include=toolset.tool_names,
        )
        return run_tools_parallel(
            apps, toolset.framework.spec, config, progress=progress
        )
    out = RunResults()
    for forged in apps:
        out.results.append(
            analyze_app(toolset, forged, timeout_s=timeout_s)
        )
        if progress is not None:
            progress(forged.apk.name)
    out.cache_stats = toolset.cache_stats()
    return out
