"""Machine-readable exports of experiment results.

The text renderers in :mod:`repro.eval.tables` target terminals; this
module writes the same data as CSV/JSON so results can be plotted or
post-processed with any external tool (the paper's figures are scatter
and bar charts — the series exported here regenerate them exactly).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from .accuracy import KIND_GROUPS
from .runner import RunResults

__all__ = [
    "export_accuracy_csv",
    "export_timing_csv",
    "export_memory_csv",
    "export_run_json",
]


def export_accuracy_csv(run: RunResults, path: str | Path) -> None:
    """Per-tool, per-group confusion counts and derived metrics."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["tool", "group", "tp", "fp", "fn",
             "precision", "recall", "f1"]
        )
        for tool in run.tools:
            accuracy = run.accuracy(tool)
            for group in KIND_GROUPS:
                counts = accuracy.group(group)
                writer.writerow(
                    [
                        tool, group, counts.tp, counts.fp, counts.fn,
                        f"{counts.precision:.4f}",
                        f"{counts.recall:.4f}",
                        f"{counts.f1:.4f}",
                    ]
                )


def export_timing_csv(run: RunResults, path: str | Path) -> None:
    """Per-app, per-tool modeled seconds (Figure 3 raw series)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["app", "kloc", "tool", "seconds", "failed"])
        for result in run.results:
            for tool, report in result.reports.items():
                if report.metrics is None:
                    continue
                writer.writerow(
                    [
                        result.app,
                        f"{result.kloc:.2f}",
                        tool,
                        ""
                        if report.metrics.failed
                        else f"{report.metrics.modeled_seconds:.3f}",
                        int(report.metrics.failed),
                    ]
                )


def export_memory_csv(run: RunResults, path: str | Path) -> None:
    """Per-app, per-tool modeled MB (Figure 4 raw series)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["app", "kloc", "tool", "memory_mb"])
        for result in run.results:
            for tool, report in result.reports.items():
                if report.metrics is None or report.metrics.failed:
                    continue
                writer.writerow(
                    [
                        result.app,
                        f"{result.kloc:.2f}",
                        tool,
                        f"{report.metrics.modeled_memory_mb:.1f}",
                    ]
                )


def export_run_json(run: RunResults, path: str | Path) -> None:
    """Full structured dump: per-app findings and metrics per tool."""
    payload = []
    for result in run.results:
        entry = {
            "app": result.app,
            "kloc": result.kloc,
            "truthIssues": len(result.truth.issues),
            "error": result.error.to_dict() if result.error else None,
            "ingestDiagnostics": list(result.ingest_diagnostics),
            "tools": {},
        }
        for tool, report in result.reports.items():
            metrics = report.metrics
            entry["tools"][tool] = {
                "failed": bool(metrics and metrics.failed),
                "failureReason": metrics.failure_reason if metrics else "",
                "findings": report.by_kind(),
                "modeledSeconds": (
                    None
                    if metrics is None or metrics.failed
                    else round(metrics.modeled_seconds, 3)
                ),
                "modeledMemoryMb": (
                    None
                    if metrics is None or metrics.failed
                    else round(metrics.modeled_memory_mb, 1)
                ),
                "wallSeconds": (
                    None if metrics is None
                    else round(metrics.wall_time_s, 4)
                ),
                "phaseSeconds": (
                    None
                    if metrics is None
                    else {
                        phase: round(seconds, 4)
                        for phase, seconds in sorted(
                            metrics.phase_seconds.items()
                        )
                    }
                ),
                "passSeconds": (
                    None
                    if metrics is None
                    else {
                        name: round(seconds, 4)
                        for name, seconds in sorted(
                            metrics.pass_seconds.items()
                        )
                    }
                ),
            }
        payload.append(entry)
    Path(path).write_text(json.dumps(payload, indent=2))
