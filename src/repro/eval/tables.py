"""Renderers for the paper's tables.

Each ``table*`` function returns structured data; each ``render_*``
turns it into the aligned text the benchmark harness prints.  Nothing
here fabricates numbers — every cell is computed from detector runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.kinds import kind_families
from ..core.mismatch import MismatchKind
from ..framework.permissions import DANGEROUS_PERMISSIONS
from ..workload.groundtruth import GroundTruth
from .accuracy import ConfusionCounts, score_app
from .runner import RunResults

__all__ = [
    "table1_taxonomy",
    "render_table1",
    "table2_accuracy",
    "render_table2",
    "table3_times",
    "render_table3",
    "table4_capabilities",
    "render_table4",
    "rq2_summary",
    "render_rq2",
    "failure_breakdown",
    "render_failures",
    "phase_breakdown",
    "render_phases",
]


# ---------------------------------------------------------------------------
# Table I — mismatch taxonomy
# ---------------------------------------------------------------------------

def table1_taxonomy() -> list[dict]:
    """The mismatch taxonomy as data (paper Table I)."""
    return [
        {
            "mismatch": "API invocation (App → API)",
            "abbr": MismatchKind.API_INVOCATION.value,
            "app_level": ">= alpha",
            "device_level": "< alpha",
            "results_in": "app invokes method introduced/updated in alpha",
        },
        {
            "mismatch": "API callback (API → App)",
            "abbr": MismatchKind.API_CALLBACK.value,
            "app_level": ">= alpha",
            "device_level": "< alpha",
            "results_in": "app overrides a callback introduced/updated "
                          "in alpha",
        },
        {
            "mismatch": "Permission-induced",
            "abbr": "PRM",
            "app_level": ">= 23 or <= 22",
            "device_level": ">= 23",
            "results_in": "app misuses runtime permission checking "
                          f"({len(DANGEROUS_PERMISSIONS)} dangerous "
                          f"permissions)",
        },
    ]


def render_table1() -> str:
    rows = table1_taxonomy()
    lines = ["Table I: API- and permission-induced compatibility issues"]
    header = f"{'Mismatch':<28}{'Abbr':<6}{'App level':<16}{'Device':<10}Results in"
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            f"{row['mismatch']:<28}{row['abbr']:<6}"
            f"{row['app_level']:<16}{row['device_level']:<10}"
            f"{row['results_in']}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table II — accuracy on the benchmark suites
# ---------------------------------------------------------------------------

@dataclass
class Table2:
    """Structured Table II: per-app per-tool counts plus totals."""

    tools: tuple[str, ...]
    rows: list[dict] = field(default_factory=list)
    totals: dict[str, dict[str, ConfusionCounts]] = field(
        default_factory=dict
    )


def table2_accuracy(run: RunResults) -> Table2:
    tools = run.tools
    table = Table2(tools=tools)
    for result in run.results:
        row = {"app": result.app, "truth": {
            "API": len(result.truth.issues_of_kind("API")),
            "APC": len(result.truth.issues_of_kind("APC")),
        }}
        for tool in tools:
            report = result.reports.get(tool)
            if report is None:
                # The app's analysis crashed or timed out (AppResult
                # carries the error); render it like a tool failure.
                row[tool] = {
                    "failed": True,
                    "API": ConfusionCounts(),
                    "APC": ConfusionCounts(),
                }
                continue
            failed = report.metrics is not None and report.metrics.failed
            row[tool] = {
                "failed": failed,
                "API": score_app(report, result.truth, ("API",)),
                "APC": score_app(report, result.truth, ("APC",)),
            }
        table.rows.append(row)
    for tool in tools:
        accuracy = run.accuracy(tool)
        table.totals[tool] = dict(accuracy.by_group)
    return table


def render_table2(table: Table2) -> str:
    lines = [
        "Table II: detected compatibility issues "
        "(TP/FP per kind; '-' = no result)"
    ]
    header = f"{'App':<18}{'truth':<12}" + "".join(
        f"{tool:<24}" for tool in table.tools
    )
    lines.append(header)
    lines.append(
        f"{'':<18}{'API/APC':<12}"
        + "".join(f"{'API tp/fp  APC tp/fp':<24}" for _ in table.tools)
    )
    lines.append("-" * len(header))
    for row in table.rows:
        cells = []
        for tool in table.tools:
            cell = row[tool]
            if cell["failed"]:
                cells.append(f"{'-':<24}")
                continue
            api, apc = cell["API"], cell["APC"]
            cells.append(
                f"{api.tp}/{api.fp:<6}{apc.tp}/{apc.fp:<14}"
            )
        truth = row["truth"]
        lines.append(
            f"{row['app']:<18}{truth['API']}/{truth['APC']:<10}"
            + "".join(cells)
        )
    lines.append("-" * len(header))
    for group in ("API", "APC", "API+APC"):
        for metric in ("precision", "recall", "f1"):
            cells = []
            for tool in table.tools:
                counts = table.totals[tool][group]
                cells.append(f"{getattr(counts, metric):<24.2f}")
            lines.append(
                f"{group + ' ' + metric:<30}" + "".join(cells)
            )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table III — analysis times
# ---------------------------------------------------------------------------

def table3_times(
    run: RunResults,
    tools: tuple[str, ...] = ("SAINTDroid", "CID", "Lint"),
    apps: tuple[str, ...] | None = None,
) -> list[dict]:
    """Per-app modeled analysis seconds; ``None`` = failed/timeout."""
    rows = []
    for result in run.results:
        if apps is not None and result.app not in apps:
            continue
        row = {"app": result.app, "kloc": result.kloc}
        for tool in tools:
            report = result.reports.get(tool)
            if report is None or report.metrics is None:
                row[tool] = None
                continue
            row[tool] = (
                None
                if report.metrics.failed
                else report.metrics.modeled_seconds
            )
        rows.append(row)
    return rows


def render_table3(rows: list[dict], tools=("SAINTDroid", "CID", "Lint")) -> str:
    lines = ["Table III: analysis time in seconds ('-' = fails/timeout)"]
    header = f"{'App':<18}{'KLOC':>7}  " + "".join(
        f"{tool:>12}" for tool in tools
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        cells = "".join(
            f"{row[tool]:>12.1f}" if row[tool] is not None else f"{'-':>12}"
            for tool in tools
        )
        lines.append(f"{row['app']:<18}{row['kloc']:>7.1f}  {cells}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table IV — capability matrix
# ---------------------------------------------------------------------------

def table4_capabilities(tools) -> list[dict]:
    """Capability matrix from live tool objects (paper Table IV).

    The columns are the registered kind families, and each tool's row
    is its derived ``capabilities`` set — so a family added to the
    registry (e.g. SEM) grows the table without editing this module,
    and a tool's row can never disagree with the passes it runs.
    """
    rows = []
    for tool in tools:
        row: dict = {"tool": tool.name}
        for family in kind_families():
            row[family] = family in tool.capabilities
        rows.append(row)
    return rows


def render_table4(rows: list[dict]) -> str:
    lines = ["Table IV: detection capabilities"]
    families = kind_families()
    # Ablation rows ("SAINTDroid-eager") outgrow the paper's column.
    width = max([14] + [len(row["tool"]) + 2 for row in rows])
    header = f"{'Tool':<{width}}" + "".join(
        f"{family:<6}" for family in families
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        cells = "".join(
            f"{'yes' if row.get(family) else 'no':<6}"
            for family in families
        )
        lines.append(f"{row['tool']:<{width}}{cells}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Failure breakdown — fault-tolerance accounting for corpus runs
# ---------------------------------------------------------------------------

def failure_breakdown(run: RunResults) -> dict:
    """Per-kind failure accounting over one run.

    Returns totals plus one row per quarantined app (kind, phase,
    attempt count, message) — the "what did we lose and why" table a
    corpus run ends with.
    """
    rows = []
    for result in run.results:
        error = result.error
        if error is None:
            continue
        rows.append(
            {
                "app": result.app,
                "kind": error.kind.value,
                "phase": error.phase.value,
                "retryable": error.retryable,
                "attempts": error.attempts,
                "message": error.message,
            }
        )
    return {
        "total_apps": len(run.results),
        "failed_apps": len(rows),
        "by_kind": run.error_summary(),
        "rows": rows,
    }


def render_failures(breakdown: dict) -> str:
    total = breakdown["total_apps"]
    failed = breakdown["failed_apps"]
    lines = [
        f"Failures: {failed}/{total} apps quarantined"
        + (
            " ("
            + ", ".join(
                f"{kind}: {count}"
                for kind, count in breakdown["by_kind"].items()
            )
            + ")"
            if breakdown["by_kind"]
            else ""
        )
    ]
    if not breakdown["rows"]:
        return lines[0]
    header = (
        f"{'App':<18}{'Kind':<14}{'Phase':<7}{'Tries':>5}  Message"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in breakdown["rows"]:
        message = row["message"]
        if len(message) > 60:
            message = message[:57] + "..."
        lines.append(
            f"{row['app']:<18}{row['kind']:<14}{row['phase']:<7}"
            f"{row['attempts']:>5}  {message}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Phase breakdown — measured wall time per pipeline phase
# ---------------------------------------------------------------------------

#: Pipeline order for rendering (anything else sorts after these).
_PHASE_ORDER = ("load", "explore", "guards", "detect")


def phase_breakdown(run: RunResults) -> dict:
    """Measured wall seconds per pipeline phase over one run.

    Returns run-wide totals, per-tool totals, and the cache/resume
    accounting that explains how much of the measured work this run
    actually performed (cached and resumed apps contribute their
    *original* timings).
    """
    per_tool: dict[str, dict[str, float]] = {}
    per_pass: dict[str, dict[str, float]] = {}
    for result in run.results:
        for tool, report in result.reports.items():
            metrics = report.metrics
            if metrics is None:
                continue
            totals = per_tool.setdefault(tool, {})
            for phase, seconds in metrics.phase_seconds.items():
                totals[phase] = totals.get(phase, 0.0) + seconds
            # Per-pass terms keep pipeline execution order (the order
            # pass managers recorded them in), not alphabetical.
            passes = per_pass.setdefault(tool, {})
            for name, seconds in metrics.pass_seconds.items():
                passes[name] = passes.get(name, 0.0) + seconds
    return {
        "totals": run.phase_totals(),
        "per_tool": {
            tool: dict(sorted(phases.items()))
            for tool, phases in sorted(per_tool.items())
        },
        "per_pass": {
            tool: dict(passes)
            for tool, passes in sorted(per_pass.items())
        },
        "apps": len(run.results),
        "cached_apps": len(run.cached_indices),
        "resumed_apps": len(run.resumed_indices),
    }


def _phase_sort_key(phase: str) -> tuple[int, str]:
    try:
        return (_PHASE_ORDER.index(phase), phase)
    except ValueError:
        return (len(_PHASE_ORDER), phase)


def render_phases(breakdown: dict) -> str:
    phases = sorted(breakdown["totals"], key=_phase_sort_key)
    analyzed = (
        breakdown["apps"]
        - breakdown["cached_apps"]
        - breakdown["resumed_apps"]
    )
    lines = [
        f"Phase timing: {breakdown['apps']} apps "
        f"({analyzed} analyzed, {breakdown['cached_apps']} cached, "
        f"{breakdown['resumed_apps']} resumed)"
    ]
    if not phases:
        return lines[0]
    header = f"{'Tool':<14}" + "".join(
        f"{phase:>10}" for phase in phases
    ) + f"{'total':>10}"
    lines.append(header)
    lines.append("-" * len(header))
    for tool, totals in breakdown["per_tool"].items():
        cells = "".join(
            f"{totals.get(phase, 0.0):>10.3f}" for phase in phases
        )
        lines.append(
            f"{tool:<14}{cells}{sum(totals.values()):>10.3f}"
        )
    totals = breakdown["totals"]
    cells = "".join(
        f"{totals.get(phase, 0.0):>10.3f}" for phase in phases
    )
    lines.append(
        f"{'all tools':<14}{cells}{sum(totals.values()):>10.3f}"
    )
    # Per-pass terms (pipeline execution order), for runs produced by
    # pass-manager detectors; absent for old journals.
    per_pass = breakdown.get("per_pass") or {}
    if any(passes for passes in per_pass.values()):
        lines.append("")
        lines.append("Per-pass terms:")
        for tool, passes in per_pass.items():
            if not passes:
                continue
            lines.append(f"  {tool}:")
            for name, seconds in passes.items():
                lines.append(f"    {name:<24}{seconds:>10.3f}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# RQ2 — real-world summary
# ---------------------------------------------------------------------------

def rq2_summary(
    results: list[tuple],
    *,
    sample_size: int = 60,
) -> dict:
    """Population statistics over corpus results.

    ``results`` is a list of ``(report, truth, modern_target)`` tuples
    for SAINTDroid runs.  Returns totals, prevalence percentages, and
    sampled precision per kind (the paper samples 60 flagged apps).
    """
    total_apps = len(results)
    api_total = apc_total = 0
    api_apps = apc_apps = 0
    modern_apps = legacy_apps = 0
    request_apps = revocation_apps = 0
    sampled: list[tuple] = []

    for report, truth, modern in results:
        kinds = report.by_kind()
        api_count = kinds.get("API", 0)
        apc_count = kinds.get("APC", 0)
        api_total += api_count
        apc_total += apc_count
        api_apps += 1 if api_count else 0
        apc_apps += 1 if apc_count else 0
        if modern:
            modern_apps += 1
            if kinds.get("PRM-request", 0):
                request_apps += 1
        else:
            legacy_apps += 1
            if kinds.get("PRM-revocation", 0):
                revocation_apps += 1
        if api_count or apc_count or kinds.get("PRM-request") or (
            kinds.get("PRM-revocation")
        ):
            if len(sampled) < sample_size:
                sampled.append((report, truth))

    def _sampled_precision(kinds: tuple[str, ...]) -> float:
        counts = ConfusionCounts()
        for report, truth in sampled:
            counts.add(score_app(report, truth, kinds))
        return counts.precision if counts.reported else 1.0

    def _pct(numerator: int, denominator: int) -> float:
        return 100.0 * numerator / denominator if denominator else 0.0

    return {
        "total_apps": total_apps,
        "api_total": api_total,
        "api_apps_pct": _pct(api_apps, total_apps),
        "apc_total": apc_total,
        "apc_apps_pct": _pct(apc_apps, total_apps),
        "modern_apps": modern_apps,
        "legacy_apps": legacy_apps,
        "request_apps": request_apps,
        "request_pct": _pct(request_apps, modern_apps),
        "revocation_apps": revocation_apps,
        "revocation_pct": _pct(revocation_apps, legacy_apps),
        "permission_apps": request_apps + revocation_apps,
        "sampled_apps": len(sampled),
        "sampled_precision_api": _sampled_precision(("API",)),
        "sampled_precision_apc": _sampled_precision(("APC",)),
        "sampled_precision_prm": _sampled_precision(
            ("PRM-request", "PRM-revocation")
        ),
    }


def render_rq2(summary: dict) -> str:
    return "\n".join(
        [
            "RQ2: real-world applicability (SAINTDroid)",
            f"  apps analyzed:                {summary['total_apps']}",
            f"  API invocation mismatches:    {summary['api_total']} "
            f"({summary['api_apps_pct']:.2f}% of apps with >= 1)",
            f"  API callback mismatches:      {summary['apc_total']} "
            f"({summary['apc_apps_pct']:.2f}% of apps with >= 1)",
            f"  apps targeting >= 23:         {summary['modern_apps']} "
            f"({summary['request_apps']} with request mismatch, "
            f"{summary['request_pct']:.2f}%)",
            f"  apps targeting <= 22:         {summary['legacy_apps']} "
            f"({summary['revocation_apps']} with revocation mismatch, "
            f"{summary['revocation_pct']:.2f}%)",
            f"  apps with any PRM issue:      "
            f"{summary['permission_apps']}",
            f"  sampled precision (n={summary['sampled_apps']}): "
            f"API {summary['sampled_precision_api']:.0%}, "
            f"APC {summary['sampled_precision_apc']:.0%}, "
            f"PRM {summary['sampled_precision_prm']:.0%}",
        ]
    )
