"""Common interface and shared machinery for baseline detectors.

The baselines (CID, CIDER, Lint) are reimplemented *with the
restrictions the paper describes*, on top of the same substrate
SAINTDroid uses.  Their accuracy and performance differences relative
to SAINTDroid therefore emerge from the modeled restrictions — which
classes they look at, whether guards cross method boundaries, whether
they resolve inherited APIs, what they load eagerly — not from
hard-coded outcomes.
"""

from __future__ import annotations

import abc
from typing import Callable

from ..apk.package import Apk
from ..core.apidb import ApiDatabase
from ..core.detector import AnalysisReport
from ..framework.repository import FrameworkRepository
from ..ir.clazz import Clazz
from ..ir.instructions import Invoke
from ..ir.types import ClassName, MethodRef
from ..analysis.clvm import CLASS_OVERHEAD_UNITS
from ..analysis.guards import guard_at_invocations
from ..analysis.intervals import ApiInterval

__all__ = [
    "TIMEOUT_MODELED_SECONDS",
    "CompatibilityDetector",
    "FirstLevelUsage",
    "first_level_usages",
    "eager_app_units",
    "framework_image_units",
]

#: Analysis budget used in the paper's Table III (dashes beyond 600 s).
TIMEOUT_MODELED_SECONDS = 600.0


class CompatibilityDetector(abc.ABC):
    """The interface every tool (SAINTDroid included) satisfies."""

    #: Display name used in tables.
    name: str = "detector"
    #: Which mismatch families the tool can detect (Table IV row).
    #: Pipeline-backed tools derive this from their detect passes'
    #: declared ``kinds``; nothing hand-writes kind sets anymore.
    capabilities: frozenset[str] = frozenset()
    #: True when the tool needs buildable source (Lint).
    requires_source: bool = False

    @abc.abstractmethod
    def analyze(self, apk: Apk) -> AnalysisReport:
        """Analyze one app and report mismatches + metrics.

        The budget enforcement and report packaging that used to live
        here (``_timed``) are now the pass manager's finalize step —
        see ``single_detect_phase`` and ``modeled_budget_s`` on
        :class:`repro.pipeline.configs.PipelineConfig`."""


class FirstLevelUsage:
    """An app→framework call found by scanning app code directly."""

    __slots__ = ("caller", "api", "interval")

    def __init__(
        self, caller: MethodRef, api: MethodRef, interval: ApiInterval
    ) -> None:
        self.caller = caller
        self.api = api
        self.interval = interval


def first_level_usages(
    apk: Apk,
    apidb: ApiDatabase,
    *,
    respect_intra_method_guards: bool,
    resolve_inherited: bool,
    include_secondary_dex: bool,
    class_filter: Callable[[Clazz], bool] | None = None,
) -> list[FirstLevelUsage]:
    """Extract API call sites the way first-level tools do.

    * ``respect_intra_method_guards`` — apply the guard analysis within
      each method in isolation (entry interval = the app's full range);
      no guard information crosses method boundaries.
    * ``resolve_inherited`` — when False, an invoke whose static
      receiver is an *app* class is never treated as an API call, even
      if the method is inherited from a framework ancestor; this is the
      first-level blindness that makes CID/Lint miss inheritance cases.
    * ``class_filter`` — restrict which app classes are scanned (Lint
      only sees the app's own source packages).
    """
    lo, hi = apk.manifest.supported_range
    app_interval = ApiInterval.of(lo, hi)
    usages: list[FirstLevelUsage] = []

    for dex in apk.dex_files:
        if dex.secondary and not include_secondary_dex:
            continue
        for clazz in dex.classes:
            if class_filter is not None and not class_filter(clazz):
                continue
            for method in clazz.methods:
                if method.body is None:
                    continue
                if respect_intra_method_guards:
                    sites = guard_at_invocations(method, app_interval)
                else:
                    sites = (
                        (invoke, app_interval)
                        for invoke in method.invocations
                    )
                for invoke, interval in sites:
                    api = _resolve_api_target(
                        apk, apidb, invoke, resolve_inherited
                    )
                    if api is not None:
                        usages.append(
                            FirstLevelUsage(method.ref, api, interval)
                        )
    return usages


def _resolve_api_target(
    apk: Apk,
    apidb: ApiDatabase,
    invoke: Invoke,
    resolve_inherited: bool,
) -> MethodRef | None:
    callee = invoke.method
    if callee.class_name in apidb:
        return callee
    if not resolve_inherited:
        return None
    # Walk the app-side super chain to the first framework ancestor and
    # resolve the signature there.
    seen: set[ClassName] = set()
    current: ClassName | None = callee.class_name
    while current is not None and current not in seen:
        seen.add(current)
        app_class = apk.lookup(current)
        if app_class is not None:
            current = app_class.super_name
            continue
        if current in apidb:
            resolved = apidb.resolve(current, callee.signature)
            if resolved is not None:
                return resolved.ref
        return None
    return None


# ---------------------------------------------------------------------------
# cost-model helpers (see repro.core.metrics for unit→seconds/MB)
# ---------------------------------------------------------------------------

def eager_app_units(apk: Apk, *, include_secondary: bool = True) -> int:
    """Memory units for loading the whole app up front."""
    total = 0
    classes = 0
    for dex in apk.dex_files:
        if dex.secondary and not include_secondary:
            continue
        total += dex.instruction_count
        classes += len(dex.classes)
    return total + classes * CLASS_OVERHEAD_UNITS


def framework_image_units(
    framework: FrameworkRepository, level: int
) -> int:
    """Memory units for loading a complete framework image."""
    return (
        framework.image_instruction_count(level)
        + framework.image_class_count(level) * CLASS_OVERHEAD_UNITS
    )
