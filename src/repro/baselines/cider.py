"""CIDER baseline (Huang et al., "Understanding and detecting callback
compatibility issues for Android applications").

Modeled faithfully to the paper's description of its restrictions:

* **API callback mismatches only** (Table IV) — no invocation or
  permission analysis.
* **Manually built PI-graph models for exactly four classes** —
  ``Activity``, ``Fragment``, ``Service``, and ``WebView``.  A callback
  declared on any other framework class (``View``,
  ``WebViewClient``, listeners, the procedurally generated platform
  surface, …) is invisible, which is why CIDER misses most of the
  issues SAINTDroid finds.
* **Documentation-driven callback lists** — CIDER's models come from
  the Android docs rather than framework code; it never loads the
  framework, so its per-app footprint is the app plus small models.
"""

from __future__ import annotations

from ..apk.package import Apk
from ..core.apidb import ApiDatabase
from ..core.arm import build_api_database
from ..core.detector import AnalysisReport
from ..core.metrics import AnalysisMetrics
from ..core.mismatch import Mismatch, MismatchKind
from ..framework.repository import FrameworkRepository
from ..ir.types import ClassName, MethodRef, is_anonymous_class
from ..analysis.clvm import LoadStats
from ..analysis.intervals import ApiInterval
from .base import CompatibilityDetector, eager_app_units

__all__ = ["Cider", "MODELED_CLASSES"]

#: The four framework classes CIDER's hand-built PI-graphs cover.
MODELED_CLASSES: frozenset[ClassName] = frozenset(
    {
        "android.app.Activity",
        "android.app.Fragment",
        "android.app.Service",
        "android.webkit.WebView",
    }
)

#: Passes over loaded app code (ICFG + PI-graph matching).
APP_ANALYSIS_PASSES = 2

#: See repro.core.amd.RUNTIME_PERMISSION_CALLBACK_SIGNATURE.
_PERMISSION_HOOK_SIGNATURE = (
    "onRequestPermissionsResult(int,java.lang.String[],int[])void"
)


class Cider(CompatibilityDetector):
    """The CIDER reimplementation."""

    name = "CIDER"
    capabilities = frozenset({"APC"})
    requires_source = False

    def __init__(
        self,
        framework: FrameworkRepository | None = None,
        apidb: ApiDatabase | None = None,
    ) -> None:
        self._framework = framework or FrameworkRepository()
        self._apidb = apidb or build_api_database(self._framework)

    def analyze(self, apk: Apk) -> AnalysisReport:
        return self._timed(apk, lambda: self._run(apk))

    def _run(self, apk: Apk) -> tuple[list[Mismatch], AnalysisMetrics]:
        metrics = AnalysisMetrics(tool=self.name, app=apk.name)
        app_units = eager_app_units(apk, include_secondary=False)
        metrics.extra_memory_units = app_units
        metrics.extra_work_units = app_units * APP_ANALYSIS_PASSES
        metrics.stats = LoadStats()

        lo, hi = apk.manifest.supported_range
        app_interval = ApiInterval.of(lo, hi)

        mismatches: list[Mismatch] = []
        seen: set[tuple] = set()
        for dex in apk.dex_files:
            if dex.secondary:
                continue  # install-time code only
            for clazz in dex.classes:
                if is_anonymous_class(clazz.name):
                    continue
                modeled_root = self._modeled_ancestor(apk, clazz.name)
                if modeled_root is None:
                    continue
                for method in clazz.methods:
                    if method.name == "<init>":
                        continue
                    if method.signature == _PERMISSION_HOOK_SIGNATURE:
                        # Standard runtime-permission protocol; excluded
                        # from CIDER's documentation-derived PI-graphs.
                        continue
                    entry = self._apidb.callback_entry(
                        modeled_root, method.signature
                    )
                    if entry is None:
                        continue
                    if entry.class_name not in MODELED_CLASSES:
                        # The callback resolves to an unmodeled ancestor
                        # (e.g. a View hook inherited by WebView): not
                        # in the PI-graphs.
                        continue
                    missing = self._apidb.missing_levels(
                        modeled_root, method.signature, app_interval
                    )
                    if missing.is_empty:
                        continue
                    mismatch = Mismatch(
                        kind=MismatchKind.API_CALLBACK,
                        app=apk.name,
                        location=method.ref,
                        subject=entry.ref,
                        missing_levels=missing,
                        message=(
                            f"PI-graph mismatch for {entry.signature} "
                            f"on {modeled_root}"
                        ),
                    )
                    if mismatch.key not in seen:
                        seen.add(mismatch.key)
                        mismatches.append(mismatch)
        return mismatches, metrics

    def _modeled_ancestor(
        self, apk: Apk, name: ClassName
    ) -> ClassName | None:
        """First ancestor that is one of the four modeled classes,
        following app super links then database hierarchy."""
        seen: set[ClassName] = set()
        current: ClassName | None = name
        while current is not None and current not in seen:
            seen.add(current)
            if current in MODELED_CLASSES:
                return current
            app_class = apk.lookup(current)
            if app_class is not None:
                current = app_class.super_name
                continue
            entry = self._apidb.clazz(current)
            current = entry.super_name if entry is not None else None
        return None
