"""CIDER baseline (Huang et al., "Understanding and detecting callback
compatibility issues for Android applications").

Modeled faithfully to the paper's description of its restrictions:

* **API callback mismatches only** (Table IV) — no invocation or
  permission analysis.
* **Manually built PI-graph models for exactly four classes** —
  ``Activity``, ``Fragment``, ``Service``, and ``WebView``.  A callback
  declared on any other framework class (``View``,
  ``WebViewClient``, listeners, the procedurally generated platform
  surface, …) is invisible, which is why CIDER misses most of the
  issues SAINTDroid finds.
* **Documentation-driven callback lists** — CIDER's models come from
  the Android docs rather than framework code; it never loads the
  framework, so its per-app footprint is the app plus small models.

The restrictions themselves are the ``cider-*`` passes in
:mod:`repro.baselines.passes`; this module binds the configuration.
"""

from __future__ import annotations

from ..core.apidb import ApiDatabase
from ..framework.repository import FrameworkRepository
from ..pipeline.manager import PipelineDetector
from .base import CompatibilityDetector
from .passes import (
    CIDER_APP_ANALYSIS_PASSES as APP_ANALYSIS_PASSES,
    MODELED_CLASSES,
    cider_pipeline,
)

__all__ = ["Cider", "MODELED_CLASSES", "APP_ANALYSIS_PASSES"]


class Cider(PipelineDetector, CompatibilityDetector):
    """The CIDER reimplementation."""

    name = "CIDER"
    requires_source = False

    def __init__(
        self,
        framework: FrameworkRepository | None = None,
        apidb: ApiDatabase | None = None,
    ) -> None:
        super().__init__(cider_pipeline(), framework, apidb)
