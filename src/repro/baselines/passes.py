"""Baseline detectors as pass configurations.

CID, CIDER, and Lint run on the same :class:`~repro.pipeline` engine
as SAINTDroid — each modeled restriction (whole-world loading, the
multidex crash, the buildable-source gate, the four-class PI-graph) is
one pass, and each tool is a :func:`PipelineConfig
<repro.pipeline.configs.PipelineConfig>` with ``single_detect_phase``
(the baselines are monolithic: their whole run is one ``detect``
phase) and the paper's 600 s modeled analysis budget.

These passes live here rather than in :mod:`repro.pipeline` because
they import baseline scaffolding (:mod:`repro.baselines.base`), which
itself imports the pipeline package.
"""

from __future__ import annotations

from ..analysis.intervals import ApiInterval
from ..core.mismatch import Mismatch, MismatchKind
from ..ir.types import ClassName, is_anonymous_class
from ..pipeline.configs import PipelineConfig
from ..pipeline.context import AnalysisContext
from ..pipeline.passes import Pass, register_pass
from .base import (
    TIMEOUT_MODELED_SECONDS,
    eager_app_units,
    first_level_usages,
    framework_image_units,
)

__all__ = [
    "CidLoadPass",
    "CidScanPass",
    "CidDetectApiPass",
    "CiderLoadPass",
    "CiderDetectApcPass",
    "LintBuildPass",
    "LintSourceScanPass",
    "LintDetectApiPass",
    "cid_pipeline",
    "cider_pipeline",
    "lint_pipeline",
]


# ---------------------------------------------------------------------------
# CID
# ---------------------------------------------------------------------------

#: Analysis passes CID makes over loaded app code (CFG construction,
#: backward guard slicing per API call site, conditional-call-graph
#: assembly, and per-level API resolution).
CID_APP_ANALYSIS_PASSES = 10
#: Fraction of the framework image CID effectively re-scans per app to
#: refresh its API lifecycle model view.
CID_FRAMEWORK_SCAN_PASSES = 0.5
#: Soot's Jimple IR inflates loaded framework bytecode in memory.
SOOT_IR_EXPANSION = 1.15


@register_pass
class CidLoadPass(Pass):
    """Whole-world load: charge app + framework, crash on multidex.

    The cost units land *before* the multidex gate on purpose — CID
    pays for Soot's whole-world load even on the apps that then crash
    it, and those units are part of the report fingerprint.
    """

    name = "cid-load"
    provides = ("resolution_level",)

    def run(self, ctx: AnalysisContext) -> None:
        apk = ctx.apk
        metrics = ctx.metrics
        level = min(apk.manifest.target_sdk, 29)
        ctx.provide("resolution_level", level)

        app_units = eager_app_units(apk, include_secondary=False)
        framework_units = framework_image_units(ctx.framework, level)
        metrics.extra_memory_units = int(
            app_units + framework_units * SOOT_IR_EXPANSION
        )
        metrics.extra_work_units = int(
            app_units * CID_APP_ANALYSIS_PASSES
            + framework_units * CID_FRAMEWORK_SCAN_PASSES
        )

        if apk.secondary_dex_files:
            metrics.failed = True
            metrics.failure_reason = (
                "crashed: multidex/late-bound dex files are not supported"
            )


@register_pass
class CidScanPass(Pass):
    """First-level API call extraction with same-method guards."""

    name = "cid-scan"
    provides = ("first_level_usages",)

    def run(self, ctx: AnalysisContext) -> None:
        ctx.provide(
            "first_level_usages",
            first_level_usages(
                ctx.apk,
                ctx.apidb,
                respect_intra_method_guards=True,
                resolve_inherited=False,
                include_secondary_dex=False,
            ),
        )


@register_pass
class CidDetectApiPass(Pass):
    """Judge first-level usages against the conditional call graph."""

    name = "cid-detect-api"
    requires = ("first_level_usages",)
    provides = ("api_mismatches",)
    kinds = ("API",)

    def run(self, ctx: AnalysisContext) -> None:
        apidb = ctx.apidb
        found: list[Mismatch] = []
        seen: set[tuple] = set()
        for usage in ctx.get("first_level_usages"):
            missing = apidb.missing_levels(
                usage.api.class_name, usage.api.signature, usage.interval
            )
            if missing.is_empty:
                continue
            resolved = apidb.resolve(
                usage.api.class_name, usage.api.signature
            )
            subject = resolved.ref if resolved is not None else usage.api
            mismatch = Mismatch(
                kind=MismatchKind.API_INVOCATION,
                app=ctx.apk.name,
                location=usage.caller,
                subject=subject,
                missing_levels=missing,
                message=(
                    f"{subject} missing on {missing} "
                    f"(conditional call graph, first-level)"
                ),
            )
            if mismatch.key not in seen:
                seen.add(mismatch.key)
                found.append(mismatch)
        ctx.provide("api_mismatches", tuple(found))
        ctx.mismatches.extend(found)


def cid_pipeline() -> PipelineConfig:
    """CID as a pass configuration."""
    return PipelineConfig(
        tool="CID",
        passes=(CidLoadPass(), CidScanPass(), CidDetectApiPass()),
        single_detect_phase=True,
        modeled_budget_s=TIMEOUT_MODELED_SECONDS,
    )


# ---------------------------------------------------------------------------
# CIDER
# ---------------------------------------------------------------------------

#: The four framework classes CIDER's hand-built PI-graphs cover.
MODELED_CLASSES: frozenset[ClassName] = frozenset(
    {
        "android.app.Activity",
        "android.app.Fragment",
        "android.app.Service",
        "android.webkit.WebView",
    }
)

#: Passes over loaded app code (ICFG + PI-graph matching).
CIDER_APP_ANALYSIS_PASSES = 2

#: See repro.core.amd.RUNTIME_PERMISSION_CALLBACK_SIGNATURE.
_PERMISSION_HOOK_SIGNATURE = (
    "onRequestPermissionsResult(int,java.lang.String[],int[])void"
)


def modeled_ancestor(apk, apidb, name: ClassName) -> ClassName | None:
    """First ancestor that is one of the four modeled classes,
    following app super links then database hierarchy."""
    seen: set[ClassName] = set()
    current: ClassName | None = name
    while current is not None and current not in seen:
        seen.add(current)
        if current in MODELED_CLASSES:
            return current
        app_class = apk.lookup(current)
        if app_class is not None:
            current = app_class.super_name
            continue
        entry = apidb.clazz(current)
        current = entry.super_name if entry is not None else None
    return None


@register_pass
class CiderLoadPass(Pass):
    """Charge the app load; CIDER never loads the framework."""

    name = "cider-load"

    def run(self, ctx: AnalysisContext) -> None:
        app_units = eager_app_units(ctx.apk, include_secondary=False)
        ctx.metrics.extra_memory_units = app_units
        ctx.metrics.extra_work_units = (
            app_units * CIDER_APP_ANALYSIS_PASSES
        )


@register_pass
class CiderDetectApcPass(Pass):
    """Match app overrides against the four-class PI-graph models."""

    name = "cider-detect-apc"
    provides = ("apc_mismatches",)
    kinds = ("APC",)

    def run(self, ctx: AnalysisContext) -> None:
        apk = ctx.apk
        apidb = ctx.apidb
        lo, hi = apk.manifest.supported_range
        app_interval = ApiInterval.of(lo, hi)

        found: list[Mismatch] = []
        seen: set[tuple] = set()
        for dex in apk.dex_files:
            if dex.secondary:
                continue  # install-time code only
            for clazz in dex.classes:
                if is_anonymous_class(clazz.name):
                    continue
                modeled_root = modeled_ancestor(apk, apidb, clazz.name)
                if modeled_root is None:
                    continue
                for method in clazz.methods:
                    if method.name == "<init>":
                        continue
                    if method.signature == _PERMISSION_HOOK_SIGNATURE:
                        # Standard runtime-permission protocol; excluded
                        # from CIDER's documentation-derived PI-graphs.
                        continue
                    entry = apidb.callback_entry(
                        modeled_root, method.signature
                    )
                    if entry is None:
                        continue
                    if entry.class_name not in MODELED_CLASSES:
                        # The callback resolves to an unmodeled ancestor
                        # (e.g. a View hook inherited by WebView): not
                        # in the PI-graphs.
                        continue
                    missing = apidb.missing_levels(
                        modeled_root, method.signature, app_interval
                    )
                    if missing.is_empty:
                        continue
                    mismatch = Mismatch(
                        kind=MismatchKind.API_CALLBACK,
                        app=apk.name,
                        location=method.ref,
                        subject=entry.ref,
                        missing_levels=missing,
                        message=(
                            f"PI-graph mismatch for {entry.signature} "
                            f"on {modeled_root}"
                        ),
                    )
                    if mismatch.key not in seen:
                        seen.add(mismatch.key)
                        found.append(mismatch)
        ctx.provide("apc_mismatches", tuple(found))
        ctx.mismatches.extend(found)


def cider_pipeline() -> PipelineConfig:
    """CIDER as a pass configuration."""
    return PipelineConfig(
        tool="CIDER",
        passes=(CiderLoadPass(), CiderDetectApcPass()),
        single_detect_phase=True,
        modeled_budget_s=TIMEOUT_MODELED_SECONDS,
    )


# ---------------------------------------------------------------------------
# Lint
# ---------------------------------------------------------------------------

#: Cost-model units for the Gradle build step: a fixed toolchain
#: startup plus per-instruction compilation effort.
BUILD_BASE_UNITS = 120_000
BUILD_UNITS_PER_INSTRUCTION = 5
#: The lint scan itself is a single cheap pass over the sources.
SCAN_PASSES = 1


@register_pass
class LintBuildPass(Pass):
    """Gradle build gate + build cost; defines the source scope.

    Unbuildable apps fail *before* any cost accrues (their fingerprint
    carries zero work units), matching a build that dies at startup.
    """

    name = "lint-build"
    provides = ("source_scope",)

    def run(self, ctx: AnalysisContext) -> None:
        apk = ctx.apk
        metrics = ctx.metrics

        if not apk.manifest.buildable:
            metrics.failed = True
            metrics.failure_reason = "app does not build (Gradle failure)"
            return

        package_prefix = apk.manifest.package + "."

        def in_source_scope(clazz) -> bool:
            return clazz.name.startswith(package_prefix) or (
                clazz.name == apk.manifest.package
            )

        ctx.provide("source_scope", in_source_scope)

        # Build cost covers the whole app; the scan only the source set.
        app_units = eager_app_units(apk, include_secondary=False)
        source_units = sum(
            clazz.instruction_count
            for dex in apk.dex_files
            if not dex.secondary
            for clazz in dex.classes
            if in_source_scope(clazz)
        )
        metrics.extra_work_units = (
            BUILD_BASE_UNITS
            + app_units * BUILD_UNITS_PER_INSTRUCTION
            + source_units * SCAN_PASSES
        )
        metrics.extra_memory_units = app_units


@register_pass
class LintSourceScanPass(Pass):
    """First-level scan restricted to the app's own source packages."""

    name = "lint-source-scan"
    requires = ("source_scope",)
    provides = ("first_level_usages",)

    def run(self, ctx: AnalysisContext) -> None:
        ctx.provide(
            "first_level_usages",
            first_level_usages(
                ctx.apk,
                ctx.apidb,
                respect_intra_method_guards=True,
                resolve_inherited=False,
                include_secondary_dex=False,
                class_filter=ctx.get("source_scope"),
            ),
        )


@register_pass
class LintDetectApiPass(Pass):
    """The NewApi check over the scanned source set."""

    name = "lint-detect-api"
    requires = ("first_level_usages",)
    provides = ("api_mismatches",)
    kinds = ("API",)

    def run(self, ctx: AnalysisContext) -> None:
        apidb = ctx.apidb
        found: list[Mismatch] = []
        seen: set[tuple] = set()
        for usage in ctx.get("first_level_usages"):
            missing = apidb.missing_levels(
                usage.api.class_name, usage.api.signature, usage.interval
            )
            if missing.is_empty:
                continue
            resolved = apidb.resolve(
                usage.api.class_name, usage.api.signature
            )
            subject = resolved.ref if resolved is not None else usage.api
            mismatch = Mismatch(
                kind=MismatchKind.API_INVOCATION,
                app=ctx.apk.name,
                location=usage.caller,
                subject=subject,
                missing_levels=missing,
                message=f"NewApi: {subject} requires API {missing}",
            )
            if mismatch.key not in seen:
                seen.add(mismatch.key)
                found.append(mismatch)
        ctx.provide("api_mismatches", tuple(found))
        ctx.mismatches.extend(found)


def lint_pipeline() -> PipelineConfig:
    """Lint (NewApi) as a pass configuration."""
    return PipelineConfig(
        tool="Lint",
        passes=(
            LintBuildPass(),
            LintSourceScanPass(),
            LintDetectApiPass(),
        ),
        single_detect_phase=True,
        modeled_budget_s=TIMEOUT_MODELED_SECONDS,
    )
