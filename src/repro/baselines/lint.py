"""Android Lint baseline (the ``NewApi`` check shipped with ADT).

Modeled faithfully to the paper's description of its restrictions:

* **Requires buildable source** — Lint runs as part of the Gradle
  build; apps that do not build produce no results (8 of the 27
  benchmark apps in the paper, section IV-A).
* **Source scope only** — Lint inspects the app module's own source
  set; bundled third-party libraries and generated/late-bound code are
  outside its view.  Modeled as: only classes under the manifest
  package namespace are scanned.
* **Direct API references, same-method guards** — ``NewApi``
  understands an explicit ``SDK_INT`` check in the same method but no
  guard context across calls, and it does not resolve APIs inherited
  through app classes (it checks the referenced type directly).
* **Build cost** — every analysis pays the app build before the cheap
  lint scan, which is why Lint is competitive on tiny apps and slow on
  large ones (Table III).

The restrictions themselves are the ``lint-*`` passes in
:mod:`repro.baselines.passes`; this module binds the configuration.
"""

from __future__ import annotations

from ..core.apidb import ApiDatabase
from ..framework.repository import FrameworkRepository
from ..pipeline.manager import PipelineDetector
from .base import CompatibilityDetector
from .passes import (
    BUILD_BASE_UNITS,
    BUILD_UNITS_PER_INSTRUCTION,
    SCAN_PASSES,
    lint_pipeline,
)

__all__ = ["Lint", "BUILD_BASE_UNITS", "BUILD_UNITS_PER_INSTRUCTION",
           "SCAN_PASSES"]


class Lint(PipelineDetector, CompatibilityDetector):
    """The Lint (NewApi) reimplementation."""

    name = "Lint"
    requires_source = True

    def __init__(
        self,
        framework: FrameworkRepository | None = None,
        apidb: ApiDatabase | None = None,
    ) -> None:
        super().__init__(lint_pipeline(), framework, apidb)
