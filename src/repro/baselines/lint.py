"""Android Lint baseline (the ``NewApi`` check shipped with ADT).

Modeled faithfully to the paper's description of its restrictions:

* **Requires buildable source** — Lint runs as part of the Gradle
  build; apps that do not build produce no results (8 of the 27
  benchmark apps in the paper, section IV-A).
* **Source scope only** — Lint inspects the app module's own source
  set; bundled third-party libraries and generated/late-bound code are
  outside its view.  Modeled as: only classes under the manifest
  package namespace are scanned.
* **Direct API references, same-method guards** — ``NewApi``
  understands an explicit ``SDK_INT`` check in the same method but no
  guard context across calls, and it does not resolve APIs inherited
  through app classes (it checks the referenced type directly).
* **Build cost** — every analysis pays the app build before the cheap
  lint scan, which is why Lint is competitive on tiny apps and slow on
  large ones (Table III).
"""

from __future__ import annotations

from ..apk.package import Apk
from ..core.apidb import ApiDatabase
from ..core.arm import build_api_database
from ..core.detector import AnalysisReport
from ..core.metrics import AnalysisMetrics
from ..core.mismatch import Mismatch, MismatchKind
from ..framework.repository import FrameworkRepository
from ..ir.clazz import Clazz
from ..analysis.clvm import LoadStats
from .base import CompatibilityDetector, eager_app_units, first_level_usages

__all__ = ["Lint"]

#: Cost-model units for the Gradle build step: a fixed toolchain
#: startup plus per-instruction compilation effort.
BUILD_BASE_UNITS = 120_000
BUILD_UNITS_PER_INSTRUCTION = 5
#: The lint scan itself is a single cheap pass over the sources.
SCAN_PASSES = 1


class Lint(CompatibilityDetector):
    """The Lint (NewApi) reimplementation."""

    name = "Lint"
    capabilities = frozenset({"API"})
    requires_source = True

    def __init__(
        self,
        framework: FrameworkRepository | None = None,
        apidb: ApiDatabase | None = None,
    ) -> None:
        self._framework = framework or FrameworkRepository()
        self._apidb = apidb or build_api_database(self._framework)

    def analyze(self, apk: Apk) -> AnalysisReport:
        return self._timed(apk, lambda: self._run(apk))

    def _run(self, apk: Apk) -> tuple[list[Mismatch], AnalysisMetrics]:
        metrics = AnalysisMetrics(tool=self.name, app=apk.name)
        metrics.stats = LoadStats()

        if not apk.manifest.buildable:
            metrics.failed = True
            metrics.failure_reason = "app does not build (Gradle failure)"
            return [], metrics

        package_prefix = apk.manifest.package + "."

        def in_source_scope(clazz: Clazz) -> bool:
            return clazz.name.startswith(package_prefix) or (
                clazz.name == apk.manifest.package
            )

        # Build cost covers the whole app; the scan only the source set.
        app_units = eager_app_units(apk, include_secondary=False)
        source_units = sum(
            clazz.instruction_count
            for dex in apk.dex_files
            if not dex.secondary
            for clazz in dex.classes
            if in_source_scope(clazz)
        )
        metrics.extra_work_units = (
            BUILD_BASE_UNITS
            + app_units * BUILD_UNITS_PER_INSTRUCTION
            + source_units * SCAN_PASSES
        )
        metrics.extra_memory_units = app_units

        usages = first_level_usages(
            apk,
            self._apidb,
            respect_intra_method_guards=True,
            resolve_inherited=False,
            include_secondary_dex=False,
            class_filter=in_source_scope,
        )

        mismatches: list[Mismatch] = []
        seen: set[tuple] = set()
        for usage in usages:
            missing = self._apidb.missing_levels(
                usage.api.class_name, usage.api.signature, usage.interval
            )
            if missing.is_empty:
                continue
            resolved = self._apidb.resolve(
                usage.api.class_name, usage.api.signature
            )
            subject = resolved.ref if resolved is not None else usage.api
            mismatch = Mismatch(
                kind=MismatchKind.API_INVOCATION,
                app=apk.name,
                location=usage.caller,
                subject=subject,
                missing_levels=missing,
                message=f"NewApi: {subject} requires API {missing}",
            )
            if mismatch.key not in seen:
                seen.add(mismatch.key)
                mismatches.append(mismatch)
        return mismatches, metrics
