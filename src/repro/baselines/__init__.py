"""Baseline detector reimplementations: CID, CIDER, and Lint."""

from .base import (
    CompatibilityDetector,
    FirstLevelUsage,
    TIMEOUT_MODELED_SECONDS,
    eager_app_units,
    first_level_usages,
    framework_image_units,
)
from .cid import Cid
from .cider import Cider, MODELED_CLASSES
from .lint import Lint

__all__ = [
    "Cid",
    "Cider",
    "CompatibilityDetector",
    "FirstLevelUsage",
    "Lint",
    "MODELED_CLASSES",
    "TIMEOUT_MODELED_SECONDS",
    "eager_app_units",
    "first_level_usages",
    "framework_image_units",
]
