"""CID baseline (Li et al., "CID: Automating the detection of
API-related compatibility issues in Android apps").

Modeled faithfully to the paper's description of its restrictions:

* **API invocation mismatches only** — no callback or permission
  analysis (Table IV).
* **Conditional call graph with intra-procedural guard extraction** —
  CID performs backward data-flow from each API call *within the
  enclosing method* to find an API-level check; guards in callers do
  not protect calls in callees, producing the false alarms the paper
  attributes to its lack of context sensitivity.
* **First-level API calls only** — CID "only analyzes the initial API
  call and does not analyze subsequent calls within the ADF"; in
  particular it never loads framework code, so an invoke whose static
  receiver is an app class (API inherited from a framework ancestor)
  is not recognized as an API call.
* **Whole-world loading** — CID loads the complete app and extracts
  the complete framework API model before analysis, paying the memory
  and time cost SAINTDroid's CLVM avoids (Figures 3 and 4).
* **No multidex support** — apps shipping secondary dex files crash
  its Soot-based loader (the dashes in Table III).

The restrictions themselves are the ``cid-*`` passes in
:mod:`repro.baselines.passes`; this module binds the configuration.
"""

from __future__ import annotations

from ..core.apidb import ApiDatabase
from ..framework.repository import FrameworkRepository
from ..pipeline.manager import PipelineDetector
from .base import CompatibilityDetector
from .passes import (
    CID_APP_ANALYSIS_PASSES as APP_ANALYSIS_PASSES,
    CID_FRAMEWORK_SCAN_PASSES as FRAMEWORK_SCAN_PASSES,
    SOOT_IR_EXPANSION,
    cid_pipeline,
)

__all__ = ["Cid", "APP_ANALYSIS_PASSES", "FRAMEWORK_SCAN_PASSES",
           "SOOT_IR_EXPANSION"]


class Cid(PipelineDetector, CompatibilityDetector):
    """The CID reimplementation."""

    name = "CID"
    requires_source = False

    def __init__(
        self,
        framework: FrameworkRepository | None = None,
        apidb: ApiDatabase | None = None,
    ) -> None:
        super().__init__(cid_pipeline(), framework, apidb)
