"""CID baseline (Li et al., "CID: Automating the detection of
API-related compatibility issues in Android apps").

Modeled faithfully to the paper's description of its restrictions:

* **API invocation mismatches only** — no callback or permission
  analysis (Table IV).
* **Conditional call graph with intra-procedural guard extraction** —
  CID performs backward data-flow from each API call *within the
  enclosing method* to find an API-level check; guards in callers do
  not protect calls in callees, producing the false alarms the paper
  attributes to its lack of context sensitivity.
* **First-level API calls only** — CID "only analyzes the initial API
  call and does not analyze subsequent calls within the ADF"; in
  particular it never loads framework code, so an invoke whose static
  receiver is an app class (API inherited from a framework ancestor)
  is not recognized as an API call.
* **Whole-world loading** — CID loads the complete app and extracts
  the complete framework API model before analysis, paying the memory
  and time cost SAINTDroid's CLVM avoids (Figures 3 and 4).
* **No multidex support** — apps shipping secondary dex files crash
  its Soot-based loader (the dashes in Table III).
"""

from __future__ import annotations

from ..apk.package import Apk
from ..core.apidb import ApiDatabase
from ..core.arm import build_api_database
from ..core.detector import AnalysisReport
from ..core.metrics import AnalysisMetrics
from ..core.mismatch import Mismatch, MismatchKind
from ..framework.repository import FrameworkRepository
from ..analysis.clvm import LoadStats
from .base import (
    CompatibilityDetector,
    eager_app_units,
    first_level_usages,
    framework_image_units,
)

__all__ = ["Cid"]

#: Analysis passes CID makes over loaded app code (CFG construction,
#: backward guard slicing per API call site, conditional-call-graph
#: assembly, and per-level API resolution).
APP_ANALYSIS_PASSES = 10
#: Fraction of the framework image CID effectively re-scans per app to
#: refresh its API lifecycle model view.
FRAMEWORK_SCAN_PASSES = 0.5
#: Soot's Jimple IR inflates loaded framework bytecode in memory.
SOOT_IR_EXPANSION = 1.15


class Cid(CompatibilityDetector):
    """The CID reimplementation."""

    name = "CID"
    capabilities = frozenset({"API"})
    requires_source = False

    def __init__(
        self,
        framework: FrameworkRepository | None = None,
        apidb: ApiDatabase | None = None,
    ) -> None:
        self._framework = framework or FrameworkRepository()
        self._apidb = apidb or build_api_database(self._framework)

    def analyze(self, apk: Apk) -> AnalysisReport:
        return self._timed(apk, lambda: self._run(apk))

    def _run(self, apk: Apk) -> tuple[list[Mismatch], AnalysisMetrics]:
        level = min(apk.manifest.target_sdk, 29)
        metrics = AnalysisMetrics(tool=self.name, app=apk.name)

        # Whole-world loading cost: the entire (primary) app plus the
        # complete framework model.
        app_units = eager_app_units(apk, include_secondary=False)
        framework_units = framework_image_units(self._framework, level)
        metrics.extra_memory_units = int(
            app_units + framework_units * SOOT_IR_EXPANSION
        )
        metrics.extra_work_units = int(
            app_units * APP_ANALYSIS_PASSES
            + framework_units * FRAMEWORK_SCAN_PASSES
        )
        metrics.stats = LoadStats()  # all cost is in the extras

        if apk.secondary_dex_files:
            metrics.failed = True
            metrics.failure_reason = (
                "crashed: multidex/late-bound dex files are not supported"
            )
            return [], metrics

        usages = first_level_usages(
            apk,
            self._apidb,
            respect_intra_method_guards=True,
            resolve_inherited=False,
            include_secondary_dex=False,
        )

        mismatches: list[Mismatch] = []
        app_interval_keys: set[tuple] = set()
        for usage in usages:
            missing = self._apidb.missing_levels(
                usage.api.class_name, usage.api.signature, usage.interval
            )
            if missing.is_empty:
                continue
            resolved = self._apidb.resolve(
                usage.api.class_name, usage.api.signature
            )
            subject = resolved.ref if resolved is not None else usage.api
            mismatch = Mismatch(
                kind=MismatchKind.API_INVOCATION,
                app=apk.name,
                location=usage.caller,
                subject=subject,
                missing_levels=missing,
                message=(
                    f"{subject} missing on {missing} "
                    f"(conditional call graph, first-level)"
                ),
            )
            if mismatch.key not in app_interval_keys:
                app_interval_keys.add(mismatch.key)
                mismatches.append(mismatch)
        return mismatches, metrics
