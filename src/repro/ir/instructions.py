"""Instruction set of the register-based IR.

The set mirrors the Dalvik instruction *categories* that matter to
SAINTDroid's analyses:

* constants and moves (``const``, ``move``) feed the reaching-definition
  analysis used to resolve reflective class names and guard operands;
* ``sget Build.VERSION.SDK_INT`` is modeled as a first-class
  :class:`SdkIntLoad` so guard extraction does not need to pattern-match
  field access chains;
* conditional branches (``if-cmp``/``if-cmpz``) carry comparison
  operators, which the guard analysis refines into API-level intervals;
* invocations carry a :class:`~repro.ir.types.MethodRef` and argument
  registers, driving call-graph construction and CLVM class loading.

Targets of branches are symbolic labels (strings); a
:class:`~repro.ir.method.MethodBody` resolves them to instruction
indices when sealed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .types import ClassName, FieldRef, MethodRef

__all__ = [
    "CmpOp",
    "InvokeKind",
    "Instruction",
    "ConstInt",
    "ConstString",
    "ConstNull",
    "SdkIntLoad",
    "Move",
    "BinOp",
    "IfCmp",
    "IfCmpZero",
    "Goto",
    "Invoke",
    "MoveResult",
    "NewInstance",
    "FieldGet",
    "FieldPut",
    "ReturnVoid",
    "Return",
    "Throw",
    "Nop",
    "BRANCHING",
    "TERMINATORS",
]


class CmpOp(enum.Enum):
    """Comparison operators available to ``if-*`` instructions."""

    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def negate(self) -> "CmpOp":
        return _NEGATIONS[self]

    def swap(self) -> "CmpOp":
        """Operator obtained when the two operands are exchanged."""
        return _SWAPS[self]

    def evaluate(self, lhs: int, rhs: int) -> bool:
        return _EVALUATORS[self](lhs, rhs)


_NEGATIONS = {
    CmpOp.EQ: CmpOp.NE,
    CmpOp.NE: CmpOp.EQ,
    CmpOp.LT: CmpOp.GE,
    CmpOp.GE: CmpOp.LT,
    CmpOp.GT: CmpOp.LE,
    CmpOp.LE: CmpOp.GT,
}

_SWAPS = {
    CmpOp.EQ: CmpOp.EQ,
    CmpOp.NE: CmpOp.NE,
    CmpOp.LT: CmpOp.GT,
    CmpOp.GT: CmpOp.LT,
    CmpOp.LE: CmpOp.GE,
    CmpOp.GE: CmpOp.LE,
}

_EVALUATORS = {
    CmpOp.EQ: lambda a, b: a == b,
    CmpOp.NE: lambda a, b: a != b,
    CmpOp.LT: lambda a, b: a < b,
    CmpOp.LE: lambda a, b: a <= b,
    CmpOp.GT: lambda a, b: a > b,
    CmpOp.GE: lambda a, b: a >= b,
}


class InvokeKind(enum.Enum):
    """Dalvik invocation kinds; all are treated monomorphically except
    VIRTUAL/INTERFACE, which the call-graph layer resolves against the
    class hierarchy."""

    VIRTUAL = "invoke-virtual"
    DIRECT = "invoke-direct"
    STATIC = "invoke-static"
    SUPER = "invoke-super"
    INTERFACE = "invoke-interface"


@dataclass(frozen=True, slots=True)
class Instruction:
    """Base class for all instructions (purely structural)."""

    @property
    def mnemonic(self) -> str:
        return type(self).__name__.lower()

    @property
    def branch_targets(self) -> tuple[str, ...]:
        return ()

    @property
    def falls_through(self) -> bool:
        """True when control may continue to the next instruction."""
        return True


@dataclass(frozen=True, slots=True)
class ConstInt(Instruction):
    """``const vA, #imm`` — load an integer constant."""

    dest: int
    value: int


@dataclass(frozen=True, slots=True)
class ConstString(Instruction):
    """``const-string vA, "…"`` — load a string constant.

    String constants reaching reflective-load call sites name the
    classes pulled in by late binding (paper section III-A).
    """

    dest: int
    value: str


@dataclass(frozen=True, slots=True)
class ConstNull(Instruction):
    """``const vA, null``."""

    dest: int


@dataclass(frozen=True, slots=True)
class SdkIntLoad(Instruction):
    """``sget vA, Build.VERSION.SDK_INT`` — read the device API level."""

    dest: int


@dataclass(frozen=True, slots=True)
class Move(Instruction):
    """``move vA, vB``."""

    dest: int
    src: int


@dataclass(frozen=True, slots=True)
class BinOp(Instruction):
    """``binop vA, vB, vC`` for arithmetic the analyses treat opaquely."""

    dest: int
    op: str
    lhs: int
    rhs: int


@dataclass(frozen=True, slots=True)
class IfCmp(Instruction):
    """``if-<op> vA, vB, :label`` — branch when ``vA <op> vB``."""

    op: CmpOp
    lhs: int
    rhs: int
    target: str

    @property
    def branch_targets(self) -> tuple[str, ...]:
        return (self.target,)


@dataclass(frozen=True, slots=True)
class IfCmpZero(Instruction):
    """``if-<op>z vA, :label`` — branch when ``vA <op> 0``."""

    op: CmpOp
    lhs: int
    target: str

    @property
    def branch_targets(self) -> tuple[str, ...]:
        return (self.target,)


@dataclass(frozen=True, slots=True)
class Goto(Instruction):
    """``goto :label`` — unconditional branch."""

    target: str

    @property
    def branch_targets(self) -> tuple[str, ...]:
        return (self.target,)

    @property
    def falls_through(self) -> bool:
        return False


@dataclass(frozen=True, slots=True)
class Invoke(Instruction):
    """``invoke-<kind> {vA..}, Class.method(descriptor)``."""

    kind: InvokeKind
    method: MethodRef
    args: tuple[int, ...] = field(default=())


@dataclass(frozen=True, slots=True)
class MoveResult(Instruction):
    """``move-result vA`` — capture the result of the previous invoke."""

    dest: int


@dataclass(frozen=True, slots=True)
class NewInstance(Instruction):
    """``new-instance vA, Class`` — allocation; loads the class."""

    dest: int
    class_name: ClassName


@dataclass(frozen=True, slots=True)
class FieldGet(Instruction):
    """``iget/sget vA, Class.field``."""

    dest: int
    fieldref: FieldRef


@dataclass(frozen=True, slots=True)
class FieldPut(Instruction):
    """``iput/sput vA, Class.field``."""

    src: int
    fieldref: FieldRef


@dataclass(frozen=True, slots=True)
class ReturnVoid(Instruction):
    """``return-void``."""

    @property
    def falls_through(self) -> bool:
        return False


@dataclass(frozen=True, slots=True)
class Return(Instruction):
    """``return vA``."""

    src: int

    @property
    def falls_through(self) -> bool:
        return False


@dataclass(frozen=True, slots=True)
class Throw(Instruction):
    """``throw vA``."""

    src: int

    @property
    def falls_through(self) -> bool:
        return False


@dataclass(frozen=True, slots=True)
class Nop(Instruction):
    """``nop``."""


#: Instruction types that introduce control-flow edges beyond
#: fall-through.
BRANCHING = (IfCmp, IfCmpZero, Goto)

#: Instruction types that terminate a path.
TERMINATORS = (ReturnVoid, Return, Throw)
