"""Class definitions for the IR.

A :class:`Clazz` mirrors a dex ``class_def``: a name, a super class,
implemented interfaces, and methods keyed by signature.  Hierarchy
walks (override detection, virtual dispatch) are provided by resolvers
that can look up classes lazily, so ``Clazz`` itself never needs the
whole world in memory — the property the CLVM depends on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .method import Method
from .types import ClassName, is_anonymous_class, is_framework_class

__all__ = ["Clazz", "JAVA_LANG_OBJECT"]

JAVA_LANG_OBJECT: ClassName = "java.lang.Object"


@dataclass(frozen=True)
class Clazz:
    """A single class: identity, hierarchy links, and methods."""

    name: ClassName
    super_name: ClassName | None = JAVA_LANG_OBJECT
    interfaces: tuple[ClassName, ...] = ()
    methods: tuple[Method, ...] = ()
    is_abstract: bool = False
    #: Free-form provenance tag: "app", "framework", "library", …
    origin: str = "app"

    _by_signature: dict[str, Method] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("class requires a name")
        if self.super_name == self.name:
            raise ValueError(f"{self.name}: class cannot be its own super")
        table: dict[str, Method] = {}
        for method in self.methods:
            if method.class_name != self.name:
                raise ValueError(
                    f"method {method.ref} declared inside class {self.name}"
                )
            if method.signature in table:
                raise ValueError(
                    f"{self.name}: duplicate method {method.signature}"
                )
            table[method.signature] = method
        object.__setattr__(self, "_by_signature", table)

    # -- lookup -----------------------------------------------------

    def method(self, signature: str) -> Method | None:
        """Find a declared method by ``name(descriptor)`` signature."""
        return self._by_signature.get(signature)

    def declares(self, signature: str) -> bool:
        return signature in self._by_signature

    # -- classification ---------------------------------------------

    @property
    def is_framework(self) -> bool:
        return is_framework_class(self.name)

    @property
    def is_anonymous(self) -> bool:
        return is_anonymous_class(self.name)

    @property
    def method_count(self) -> int:
        return len(self.methods)

    @property
    def instruction_count(self) -> int:
        """Total instructions across method bodies (the memory-model
        unit: a loaded class costs its code size).  Computed once —
        load accounting asks per app, per class."""
        cached = self.__dict__.get("_instruction_count")
        if cached is None:
            cached = sum(
                len(m.body) for m in self.methods if m.body is not None
            )
            object.__setattr__(self, "_instruction_count", cached)
        return cached

    @property
    def supertypes(self) -> tuple[ClassName, ...]:
        """Direct supertypes: super class (if any) then interfaces."""
        out: list[ClassName] = []
        if self.super_name is not None:
            out.append(self.super_name)
        out.extend(self.interfaces)
        return tuple(out)

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return self.name
