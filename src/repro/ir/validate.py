"""Structural validation for IR classes and methods.

The workload generators and the APK deserializer both funnel their
output through :func:`validate_class`; any malformed construct fails
fast with a :class:`ValidationError` naming the offending item rather
than surfacing later as a confusing analysis result.
"""

from __future__ import annotations

from .clazz import Clazz
from .instructions import (
    BinOp,
    ConstInt,
    ConstNull,
    ConstString,
    FieldGet,
    FieldPut,
    IfCmp,
    IfCmpZero,
    Invoke,
    Move,
    MoveResult,
    NewInstance,
    Return,
    SdkIntLoad,
    Throw,
)
from .method import Method

__all__ = ["ValidationError", "validate_method", "validate_class"]

#: Upper bound on register numbers; dex uses 16-bit registers, we use a
#: small frame to catch generator bugs early.
MAX_REGISTER = 255


class ValidationError(ValueError):
    """Raised when an IR construct is structurally invalid."""


def _registers_of(instr) -> tuple[int, ...]:
    """All register operands an instruction reads or writes."""
    if isinstance(instr, (ConstInt, ConstString, ConstNull, SdkIntLoad)):
        return (instr.dest,)
    if isinstance(instr, Move):
        return (instr.dest, instr.src)
    if isinstance(instr, BinOp):
        return (instr.dest, instr.lhs, instr.rhs)
    if isinstance(instr, IfCmp):
        return (instr.lhs, instr.rhs)
    if isinstance(instr, IfCmpZero):
        return (instr.lhs,)
    if isinstance(instr, Invoke):
        return instr.args
    if isinstance(instr, (MoveResult, NewInstance, FieldGet)):
        return (instr.dest,)
    if isinstance(instr, (FieldPut,)):
        return (instr.src,)
    if isinstance(instr, (Return, Throw)):
        return (instr.src,)
    return ()


def validate_method(method: Method) -> None:
    """Check a single method; raise :class:`ValidationError` on defects."""
    if method.body is None:
        return
    body = method.body
    if len(body) and not body.terminates:
        raise ValidationError(f"{method.ref}: body falls off the end")
    for index, instr in enumerate(body.instructions):
        for reg in _registers_of(instr):
            if not 0 <= reg <= MAX_REGISTER:
                raise ValidationError(
                    f"{method.ref}@{index}: register v{reg} out of range"
                )
        for target in instr.branch_targets:
            if target not in body.labels:
                raise ValidationError(
                    f"{method.ref}@{index}: dangling label {target!r}"
                )
        if isinstance(instr, Invoke) and len(instr.args) > 16:
            raise ValidationError(
                f"{method.ref}@{index}: too many invoke arguments"
            )
    # Labels must land on instruction boundaries (allowing the
    # one-past-the-end position used by trailing guard labels only when
    # the builder appended the implicit return, i.e. never after seal).
    for label, target in body.labels.items():
        if target > len(body):
            raise ValidationError(
                f"{method.ref}: label {label!r} beyond body end"
            )


def validate_class(clazz: Clazz) -> None:
    """Check a class and all of its methods."""
    if clazz.super_name is not None and not clazz.super_name:
        raise ValidationError(f"{clazz.name}: empty super class name")
    seen: set[str] = set()
    for method in clazz.methods:
        if method.signature in seen:
            raise ValidationError(
                f"{clazz.name}: duplicate method {method.signature}"
            )
        seen.add(method.signature)
        validate_method(method)
