"""Core reference types for the register-based IR.

The IR models the parts of Dalvik bytecode that SAINTDroid's analyses
consume: fully-qualified class names, method references with simple
textual descriptors, and field references.  Names follow Java binary
naming with dots (``android.app.Activity``) rather than the slash/L-form
used by dex files; the serialization layer is free to render either.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import lru_cache

__all__ = [
    "ClassName",
    "MethodRef",
    "FieldRef",
    "is_anonymous_class",
    "outer_class",
    "package_of",
    "simple_name",
    "ANDROID_PACKAGES",
    "is_framework_class",
]

# Package prefixes owned by the Android Development Framework (ADF).
# Anything in these namespaces is resolved against the framework
# repository rather than the application dex files.
ANDROID_PACKAGES: tuple[str, ...] = (
    "android.",
    "java.",
    "javax.",
    "dalvik.",
    "org.apache.http.",
    "org.json.",
    "org.xml.",
    "org.w3c.",
)

# A fully-qualified class name; kept as a plain ``str`` alias so the IR
# stays lightweight, with helpers below for the structure we care about.
ClassName = str

_ANON_RE = re.compile(r"\$\d+$")


@lru_cache(maxsize=65536)
def is_anonymous_class(name: ClassName) -> bool:
    """Return True for names of anonymous inner classes (``Foo$1``).

    SAINTDroid's published limitation (paper section VI) is that
    dynamically-generated classes corresponding to anonymous inner class
    declarations are invisible to its guard collection; the detector uses
    this predicate to model that blind spot.
    """
    return bool(_ANON_RE.search(name))


def outer_class(name: ClassName) -> ClassName:
    """Return the enclosing class of an inner class name, or ``name``."""
    if "$" not in name:
        return name
    return name.split("$", 1)[0]


def package_of(name: ClassName) -> str:
    """Return the package portion of a class name ('' for default)."""
    head, _, _ = name.rpartition(".")
    return head


def simple_name(name: ClassName) -> str:
    """Return the unqualified class name."""
    _, _, tail = name.rpartition(".")
    return tail


@lru_cache(maxsize=65536)
def is_framework_class(name: ClassName) -> bool:
    """Return True when ``name`` belongs to the ADF namespace."""
    return name.startswith(ANDROID_PACKAGES)


@dataclass(frozen=True, slots=True)
class MethodRef:
    """A reference to a method: owning class, name, and descriptor.

    The descriptor is a human-readable signature such as
    ``(android.content.Context)void``; it participates in equality so
    that overloads are distinct, exactly as dex method_ids are.
    """

    class_name: ClassName
    name: str
    descriptor: str = "()void"
    #: Lazily cached hash — refs are hashed millions of times as dict
    #: keys (worklists, callgraphs, dispatch memos), and the generated
    #: dataclass hash re-tuples three strings on every lookup.
    _hash: int | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _str: str | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _is_fw: bool | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __hash__(self) -> int:
        value = self._hash
        if value is None:
            value = hash((self.class_name, self.name, self.descriptor))
            object.__setattr__(self, "_hash", value)
        return value

    def __post_init__(self) -> None:
        if not self.class_name:
            raise ValueError("MethodRef requires a class name")
        if not self.name:
            raise ValueError("MethodRef requires a method name")
        if not self.descriptor.startswith("("):
            raise ValueError(
                f"descriptor must start with '(': {self.descriptor!r}"
            )

    @property
    def signature(self) -> str:
        """Class-independent signature used for override matching."""
        return f"{self.name}{self.descriptor}"

    @property
    def is_framework(self) -> bool:
        value = self._is_fw
        if value is None:
            value = is_framework_class(self.class_name)
            object.__setattr__(self, "_is_fw", value)
        return value

    @property
    def arity(self) -> int:
        """Number of declared parameters (excluding the receiver)."""
        params = self.descriptor[1 : self.descriptor.rindex(")")]
        if not params.strip():
            return 0
        return params.count(",") + 1

    @property
    def return_type(self) -> str:
        return self.descriptor[self.descriptor.rindex(")") + 1 :]

    def __str__(self) -> str:
        # Cached: report ordering sorts usages by the rendered form,
        # once per usage per app, over refs interned across the corpus.
        value = self._str
        if value is None:
            value = f"{self.class_name}.{self.name}{self.descriptor}"
            object.__setattr__(self, "_str", value)
        return value


@dataclass(frozen=True, slots=True)
class FieldRef:
    """A reference to a field: owning class, name, and type."""

    class_name: ClassName
    name: str
    type_name: str = "int"

    def __post_init__(self) -> None:
        if not self.class_name or not self.name:
            raise ValueError("FieldRef requires class and field names")

    @property
    def is_framework(self) -> bool:
        return is_framework_class(self.class_name)

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"{self.class_name}.{self.name}:{self.type_name}"


#: The field read by apps to discover the device API level at runtime.
SDK_INT_FIELD = FieldRef("android.os.Build$VERSION", "SDK_INT", "int")
