"""Methods and method bodies.

A :class:`MethodBody` is a flat instruction list plus a label table
mapping symbolic branch targets to instruction indices.  Bodies are
sealed once constructed; analyses treat them as immutable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

from .instructions import (
    Instruction,
    Invoke,
    TERMINATORS,
)
from .types import ClassName, MethodRef

__all__ = ["MethodFlags", "MethodBody", "Method"]


class MethodFlags(enum.Flag):
    """Access/definition flags relevant to the analyses."""

    NONE = 0
    STATIC = enum.auto()
    ABSTRACT = enum.auto()
    NATIVE = enum.auto()
    CONSTRUCTOR = enum.auto()
    SYNTHETIC = enum.auto()


@dataclass(frozen=True)
class MethodBody:
    """Sealed instruction sequence with resolved labels."""

    instructions: tuple[Instruction, ...]
    labels: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for label, index in self.labels.items():
            if not 0 <= index <= len(self.instructions):
                raise ValueError(
                    f"label {label!r} points outside the body "
                    f"({index} not in [0, {len(self.instructions)}])"
                )

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def resolve(self, label: str) -> int:
        """Return the instruction index a label refers to."""
        try:
            return self.labels[label]
        except KeyError:
            raise KeyError(f"undefined label {label!r}") from None

    def successors(self, index: int) -> tuple[int, ...]:
        """Instruction-level successor indices of ``index``."""
        instr = self.instructions[index]
        out: list[int] = []
        if instr.falls_through and index + 1 < len(self.instructions):
            out.append(index + 1)
        for label in instr.branch_targets:
            out.append(self.resolve(label))
        return tuple(out)

    @property
    def invocations(self) -> tuple[Invoke, ...]:
        """All invoke instructions in program order (computed once —
        the scan is hot in exploration and guard-context hashing)."""
        cached = self.__dict__.get("_invocations")
        if cached is None:
            cached = tuple(
                i for i in self.instructions if isinstance(i, Invoke)
            )
            object.__setattr__(self, "_invocations", cached)
        return cached

    @property
    def terminates(self) -> bool:
        """True when the final instruction cannot fall off the end."""
        if not self.instructions:
            return False
        last = self.instructions[-1]
        return isinstance(last, TERMINATORS) or not last.falls_through


_EMPTY_BODY = MethodBody(instructions=(), labels={})


@dataclass(frozen=True)
class Method:
    """A method definition: reference identity, flags, and a body.

    ``body`` is ``None`` for abstract and native methods.  The
    containing class is carried inside :attr:`ref` so a ``Method`` is
    self-describing when it travels through worklists.
    """

    ref: MethodRef
    flags: MethodFlags = MethodFlags.NONE
    body: MethodBody | None = _EMPTY_BODY

    def __post_init__(self) -> None:
        has_code_forbidden = bool(
            self.flags & (MethodFlags.ABSTRACT | MethodFlags.NATIVE)
        )
        if has_code_forbidden and self.body is not None and len(self.body):
            raise ValueError(
                f"{self.ref}: abstract/native methods cannot carry code"
            )

    @property
    def class_name(self) -> ClassName:
        return self.ref.class_name

    @property
    def name(self) -> str:
        return self.ref.name

    @property
    def descriptor(self) -> str:
        return self.ref.descriptor

    @property
    def signature(self) -> str:
        return self.ref.signature

    @property
    def is_static(self) -> bool:
        return bool(self.flags & MethodFlags.STATIC)

    @property
    def is_abstract(self) -> bool:
        return bool(self.flags & MethodFlags.ABSTRACT)

    @property
    def has_code(self) -> bool:
        return self.body is not None and len(self.body) > 0

    @property
    def invocations(self) -> tuple[Invoke, ...]:
        if self.body is None:
            return ()
        return self.body.invocations

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return str(self.ref)
