"""Fluent builders for IR classes and method bodies.

The workload generators and framework generator assemble thousands of
methods; the builder keeps that assembly readable::

    b = MethodBuilder(MethodRef("com.app.Main", "onCreate",
                                "(android.os.Bundle)void"))
    b.sdk_int(0)
    b.const_int(1, 23)
    b.if_cmp(CmpOp.LT, 0, 1, "skip")
    b.invoke_virtual("android.content.Context", "getColorStateList",
                     "(int)android.content.res.ColorStateList", args=(2,))
    b.label("skip")
    b.return_void()
    method = b.build()

Convenience helpers (:meth:`MethodBuilder.guarded_call`) emit the full
``SDK_INT`` guard idiom in one call, since that is the single most
common shape in compatibility workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .clazz import Clazz, JAVA_LANG_OBJECT
from .instructions import (
    BinOp,
    CmpOp,
    ConstInt,
    ConstNull,
    ConstString,
    FieldGet,
    FieldPut,
    Goto,
    IfCmp,
    IfCmpZero,
    Instruction,
    Invoke,
    InvokeKind,
    Move,
    MoveResult,
    NewInstance,
    Nop,
    Return,
    ReturnVoid,
    SdkIntLoad,
    Throw,
)
from .method import Method, MethodBody, MethodFlags
from .types import ClassName, FieldRef, MethodRef

__all__ = ["MethodBuilder", "ClassBuilder"]


@dataclass
class MethodBuilder:
    """Accumulates instructions and labels, then seals a :class:`Method`."""

    ref: MethodRef
    flags: MethodFlags = MethodFlags.NONE
    _instructions: list[Instruction] = field(default_factory=list)
    _labels: dict[str, int] = field(default_factory=dict)
    _label_counter: int = 0

    # -- label management -------------------------------------------

    def label(self, name: str) -> "MethodBuilder":
        """Bind ``name`` to the next emitted instruction."""
        if name in self._labels:
            raise ValueError(f"label {name!r} already defined")
        self._labels[name] = len(self._instructions)
        return self

    def fresh_label(self, hint: str = "L") -> str:
        """Return a label name not yet used in this body."""
        while True:
            candidate = f"{hint}{self._label_counter}"
            self._label_counter += 1
            if candidate not in self._labels:
                return candidate

    # -- raw emission -----------------------------------------------

    def emit(self, instruction: Instruction) -> "MethodBuilder":
        self._instructions.append(instruction)
        return self

    # -- constants / moves ------------------------------------------

    def const_int(self, dest: int, value: int) -> "MethodBuilder":
        return self.emit(ConstInt(dest, value))

    def const_string(self, dest: int, value: str) -> "MethodBuilder":
        return self.emit(ConstString(dest, value))

    def const_null(self, dest: int) -> "MethodBuilder":
        return self.emit(ConstNull(dest))

    def sdk_int(self, dest: int) -> "MethodBuilder":
        return self.emit(SdkIntLoad(dest))

    def move(self, dest: int, src: int) -> "MethodBuilder":
        return self.emit(Move(dest, src))

    def binop(self, dest: int, op: str, lhs: int, rhs: int) -> "MethodBuilder":
        return self.emit(BinOp(dest, op, lhs, rhs))

    # -- control flow -----------------------------------------------

    def if_cmp(
        self, op: CmpOp, lhs: int, rhs: int, target: str
    ) -> "MethodBuilder":
        return self.emit(IfCmp(op, lhs, rhs, target))

    def if_cmpz(self, op: CmpOp, lhs: int, target: str) -> "MethodBuilder":
        return self.emit(IfCmpZero(op, lhs, target))

    def goto(self, target: str) -> "MethodBuilder":
        return self.emit(Goto(target))

    def nop(self) -> "MethodBuilder":
        return self.emit(Nop())

    # -- calls / allocation -----------------------------------------

    def invoke(
        self,
        kind: InvokeKind,
        class_name: ClassName,
        name: str,
        descriptor: str = "()void",
        args: tuple[int, ...] = (),
    ) -> "MethodBuilder":
        ref = MethodRef(class_name, name, descriptor)
        return self.emit(Invoke(kind, ref, args))

    def invoke_virtual(
        self,
        class_name: ClassName,
        name: str,
        descriptor: str = "()void",
        args: tuple[int, ...] = (),
    ) -> "MethodBuilder":
        return self.invoke(InvokeKind.VIRTUAL, class_name, name, descriptor, args)

    def invoke_static(
        self,
        class_name: ClassName,
        name: str,
        descriptor: str = "()void",
        args: tuple[int, ...] = (),
    ) -> "MethodBuilder":
        return self.invoke(InvokeKind.STATIC, class_name, name, descriptor, args)

    def invoke_direct(
        self,
        class_name: ClassName,
        name: str,
        descriptor: str = "()void",
        args: tuple[int, ...] = (),
    ) -> "MethodBuilder":
        return self.invoke(InvokeKind.DIRECT, class_name, name, descriptor, args)

    def invoke_super(
        self,
        class_name: ClassName,
        name: str,
        descriptor: str = "()void",
        args: tuple[int, ...] = (),
    ) -> "MethodBuilder":
        return self.invoke(InvokeKind.SUPER, class_name, name, descriptor, args)

    def invoke_ref(
        self, kind: InvokeKind, ref: MethodRef, args: tuple[int, ...] = ()
    ) -> "MethodBuilder":
        return self.emit(Invoke(kind, ref, args))

    def move_result(self, dest: int) -> "MethodBuilder":
        return self.emit(MoveResult(dest))

    def new_instance(self, dest: int, class_name: ClassName) -> "MethodBuilder":
        return self.emit(NewInstance(dest, class_name))

    def field_get(self, dest: int, fieldref: FieldRef) -> "MethodBuilder":
        return self.emit(FieldGet(dest, fieldref))

    def field_put(self, src: int, fieldref: FieldRef) -> "MethodBuilder":
        return self.emit(FieldPut(src, fieldref))

    # -- terminators ------------------------------------------------

    def return_void(self) -> "MethodBuilder":
        return self.emit(ReturnVoid())

    def return_value(self, src: int) -> "MethodBuilder":
        return self.emit(Return(src))

    def throw(self, src: int) -> "MethodBuilder":
        return self.emit(Throw(src))

    # -- idioms -----------------------------------------------------

    def guarded_call(
        self,
        min_level: int,
        class_name: ClassName,
        name: str,
        descriptor: str = "()void",
        args: tuple[int, ...] = (),
        sdk_reg: int = 14,
        const_reg: int = 15,
    ) -> "MethodBuilder":
        """Emit ``if (SDK_INT >= min_level) { call(...) }``.

        This is the canonical defensive idiom from the paper's
        Listing 1 (``if (Build.VERSION.SDK_INT >= 23) { … }``).
        """
        skip = self.fresh_label("guard_end_")
        self.sdk_int(sdk_reg)
        self.const_int(const_reg, min_level)
        self.if_cmp(CmpOp.LT, sdk_reg, const_reg, skip)
        self.invoke_virtual(class_name, name, descriptor, args)
        self.label(skip)
        return self

    def guarded_call_max(
        self,
        max_level: int,
        class_name: ClassName,
        name: str,
        descriptor: str = "()void",
        args: tuple[int, ...] = (),
        sdk_reg: int = 14,
        const_reg: int = 15,
    ) -> "MethodBuilder":
        """Emit ``if (SDK_INT <= max_level) { call(...) }`` — the
        defensive idiom against forward-compatibility (removed APIs)."""
        skip = self.fresh_label("guard_end_")
        self.sdk_int(sdk_reg)
        self.const_int(const_reg, max_level)
        self.if_cmp(CmpOp.GT, sdk_reg, const_reg, skip)
        self.invoke_virtual(class_name, name, descriptor, args)
        self.label(skip)
        return self

    # -- sealing ----------------------------------------------------

    def build(self) -> Method:
        """Seal and return the method, ensuring it terminates."""
        instructions = list(self._instructions)
        if not instructions or instructions[-1].falls_through:
            instructions.append(ReturnVoid())
        body = MethodBody(tuple(instructions), dict(self._labels))
        for instr in instructions:
            for target in instr.branch_targets:
                body.resolve(target)  # raises on dangling labels
        return Method(ref=self.ref, flags=self.flags, body=body)


@dataclass
class ClassBuilder:
    """Accumulates methods, then seals a :class:`Clazz`."""

    name: ClassName
    super_name: ClassName | None = JAVA_LANG_OBJECT
    interfaces: tuple[ClassName, ...] = ()
    is_abstract: bool = False
    origin: str = "app"
    _methods: list[Method] = field(default_factory=list)

    def add(self, method: Method) -> "ClassBuilder":
        if method.class_name != self.name:
            raise ValueError(
                f"method {method.ref} does not belong to {self.name}"
            )
        self._methods.append(method)
        return self

    def method(
        self,
        name: str,
        descriptor: str = "()void",
        flags: MethodFlags = MethodFlags.NONE,
    ) -> MethodBuilder:
        """Start building a method owned by this class.

        The returned builder must be finished via :meth:`finish`.
        """
        return MethodBuilder(MethodRef(self.name, name, descriptor), flags)

    def finish(self, builder: MethodBuilder) -> "ClassBuilder":
        return self.add(builder.build())

    def empty_method(
        self,
        name: str,
        descriptor: str = "()void",
        flags: MethodFlags = MethodFlags.NONE,
    ) -> "ClassBuilder":
        """Add a method whose body is a bare ``return-void``."""
        return self.finish(self.method(name, descriptor, flags))

    def build(self) -> Clazz:
        return Clazz(
            name=self.name,
            super_name=self.super_name,
            interfaces=self.interfaces,
            methods=tuple(self._methods),
            is_abstract=self.is_abstract,
            origin=self.origin,
        )
