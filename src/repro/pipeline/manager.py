"""The pass manager: one execution engine for every tool.

:class:`PassManager` runs a :class:`~repro.pipeline.configs.PipelineConfig`
over one APK — validating slot dataflow, tagging error phases, firing
hooks, timing passes, and finalizing the
:class:`~repro.core.analysis_report.AnalysisReport`.
:class:`PipelineDetector` wraps a manager behind the duck-typed
detector interface (``analyze`` / ``name`` / ``capabilities`` /
``requires_source``) that the evaluation layer consumes; ``SaintDroid``
and the baselines are thin subclasses binding a configuration.
"""

from __future__ import annotations

import time

from ..apk.package import Apk
from ..core.analysis_report import AnalysisReport
from ..core.apidb import ApiDatabase
from ..core.arm import build_api_database
from ..core.errors import tag_phase
from ..core.metrics import AnalysisMetrics
from ..framework.repository import FrameworkRepository
from .configs import PipelineConfig
from .context import AnalysisContext
from .hooks import PassTimingHook, PipelineHook
from .passes import Pass

__all__ = ["PipelineError", "PassManager", "PipelineDetector"]


class PipelineError(RuntimeError):
    """A pipeline was misconfigured (unknown pass name, or a selection
    that breaks the declared dataflow)."""


class PassManager:
    """Executes one pipeline configuration; shared by every scheduler.

    The serial runner and the process-pool engine both call
    :meth:`run` — they differ only in *where* the call happens, never
    in what a run does.
    """

    def __init__(
        self,
        config: PipelineConfig,
        framework: FrameworkRepository,
        apidb: ApiDatabase,
        *,
        hooks: tuple[PipelineHook, ...] = (),
    ) -> None:
        self._config = config
        self._framework = framework
        self._apidb = apidb
        self._hooks = tuple(hooks)

    @property
    def config(self) -> PipelineConfig:
        return self._config

    @property
    def passes(self) -> tuple[Pass, ...]:
        return self._config.passes

    def select(
        self,
        skip_passes: tuple[str, ...] = (),
        only_passes: tuple[str, ...] = (),
    ) -> tuple[Pass, ...]:
        """Resolve ``--skip-pass`` / ``--only-pass`` selections against
        this configuration, rejecting names it does not contain."""
        known = set(self._config.pass_names)
        for name in (*skip_passes, *only_passes):
            if name not in known:
                raise PipelineError(
                    f"pipeline {self._config.tool!r} has no pass "
                    f"{name!r}; available: "
                    + ", ".join(self._config.pass_names)
                )
        selected = self._config.passes
        if only_passes:
            keep = set(only_passes)
            selected = tuple(p for p in selected if p.name in keep)
        if skip_passes:
            drop = set(skip_passes)
            selected = tuple(p for p in selected if p.name not in drop)
        return selected

    def run(
        self,
        apk: Apk,
        device_levels=None,
        *,
        hooks: tuple[PipelineHook, ...] = (),
        skip_passes: tuple[str, ...] = (),
        only_passes: tuple[str, ...] = (),
    ) -> AnalysisReport:
        """Run the configured passes over one app.

        ``hooks`` are per-run observers appended after the manager's
        own; ``skip_passes`` / ``only_passes`` narrow the pass
        selection for debugging (a selection that starves a later pass
        of a required slot fails with a :class:`PipelineError` naming
        the missing provider).
        """
        selected = self.select(skip_passes, only_passes)
        config = self._config
        metrics = AnalysisMetrics(tool=config.tool, app=apk.name)
        for phase_key in config.phase_keys:
            metrics.phase_seconds.setdefault(phase_key, 0.0)
        ctx = AnalysisContext(
            apk=apk,
            framework=self._framework,
            apidb=self._apidb,
            tool=config.tool,
            device_levels=device_levels,
            metrics=metrics,
        )
        all_hooks: tuple[PipelineHook, ...] = (
            PassTimingHook(), *self._hooks, *hooks
        )

        started = time.perf_counter()
        for pass_ in selected:
            missing = [s for s in pass_.requires if not ctx.has(s)]
            if missing:
                providers = sorted(
                    {
                        config.provider_of(slot) or "<unprovided>"
                        for slot in missing
                    }
                )
                raise PipelineError(
                    f"pass {pass_.name!r} requires "
                    f"{', '.join(repr(s) for s in missing)} but the "
                    f"providing pass(es) did not run: "
                    + ", ".join(providers)
                )
            for hook in all_hooks:
                hook.on_pass_start(ctx, pass_)
            pass_started = time.perf_counter()
            try:
                with tag_phase(pass_.error_phase):
                    pass_.run(ctx)
            except BaseException as exc:
                for hook in all_hooks:
                    hook.on_pass_error(ctx, pass_, exc)
                raise
            seconds = time.perf_counter() - pass_started
            for hook in all_hooks:
                hook.on_pass_end(ctx, pass_, seconds)
            if metrics.failed:
                # A pass declared the app unanalyzable for this tool
                # (e.g. CID's multidex gate); later passes are moot.
                break

        metrics.wall_time_s = time.perf_counter() - started
        if ctx.model is not None:
            metrics.stats = ctx.model.stats
        if config.single_detect_phase:
            # Baselines model monolithic tools: the whole run is one
            # ``detect`` phase, equal to the wall time by definition.
            metrics.phase_seconds.setdefault(
                "detect", metrics.wall_time_s
            )
        if (
            config.modeled_budget_s is not None
            and not metrics.failed
            and metrics.modeled_seconds > config.modeled_budget_s
        ):
            metrics.failed = True
            metrics.failure_reason = (
                f"exceeded {config.modeled_budget_s:.0f}s analysis "
                f"budget"
            )
        mismatches = (
            []
            if metrics.failed
            else sorted(ctx.mismatches, key=lambda m: m.sort_key)
        )
        return AnalysisReport(
            app=apk.name,
            tool=config.tool,
            mismatches=mismatches,
            metrics=metrics,
            model=ctx.model,
        )


class PipelineDetector:
    """A detector that is nothing but a pipeline configuration.

    Subclasses (``SaintDroid``, ``Cid``, ``Cider``, ``Lint``) choose
    the configuration; everything else — execution, timing, hooks,
    report finalization — is the shared :class:`PassManager`.
    """

    #: Schedulers check this to route per-attempt hooks (e.g. fault
    #: injection) through ``analyze(hooks=...)``.
    supports_pipeline_hooks = True

    def __init__(
        self,
        config: PipelineConfig,
        framework: FrameworkRepository | None = None,
        apidb: ApiDatabase | None = None,
        *,
        hooks: tuple[PipelineHook, ...] = (),
    ) -> None:
        self._framework = framework or FrameworkRepository()
        # ARM: the database is built once and reused for every app.
        self._apidb = apidb or build_api_database(self._framework)
        self._manager = PassManager(
            config, self._framework, self._apidb, hooks=hooks
        )

    @property
    def framework(self) -> FrameworkRepository:
        return self._framework

    @property
    def apidb(self) -> ApiDatabase:
        return self._apidb

    @property
    def pipeline(self) -> PipelineConfig:
        return self._manager.config

    @property
    def passes(self) -> tuple[str, ...]:
        return self._manager.config.pass_names

    @property
    def capabilities(self) -> frozenset[str]:
        """Kind families this tool detects, derived from its passes."""
        return self._manager.config.capabilities

    def analyze(
        self,
        apk: Apk,
        device_levels=None,
        *,
        hooks: tuple[PipelineHook, ...] = (),
        skip_passes: tuple[str, ...] = (),
        only_passes: tuple[str, ...] = (),
    ) -> AnalysisReport:
        return self._manager.run(
            apk,
            device_levels,
            hooks=hooks,
            skip_passes=skip_passes,
            only_passes=only_passes,
        )
