"""Pass-manager hooks: cross-cutting concerns as pipeline observers.

PRs 1–3 threaded timing, caching, and fault injection through every
call site; the pipeline instead exposes three interception points —
``on_pass_start`` / ``on_pass_end`` / ``on_pass_error`` — and each
concern becomes one :class:`PipelineHook`.  The manager installs
:class:`PassTimingHook` itself (phase metrics are part of the report
contract); schedulers attach :class:`FaultInjectionHook` per attempt.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover — typing only
    from ..eval.faults import InjectedFault
    from .context import AnalysisContext
    from .passes import Pass

__all__ = ["PipelineHook", "PassTimingHook", "FaultInjectionHook"]


class PipelineHook:
    """Observer over a single pipeline run.  All methods optional."""

    def on_pass_start(self, ctx: "AnalysisContext", pass_: "Pass") -> None:
        """Called before ``pass_.run`` (and before its error-phase tag
        is pushed, so exceptions raised here keep their own phase)."""

    def on_pass_end(
        self, ctx: "AnalysisContext", pass_: "Pass", seconds: float
    ) -> None:
        """Called after ``pass_.run`` returns normally."""

    def on_pass_error(
        self, ctx: "AnalysisContext", pass_: "Pass", error: BaseException
    ) -> None:
        """Called when ``pass_.run`` raises; the error still
        propagates to the scheduler afterwards."""


class PassTimingHook(PipelineHook):
    """Charge each pass's wall time to per-pass and per-phase buckets.

    ``pass_seconds`` records every pass by name; ``phase_seconds``
    aggregates only passes that declare a paper phase, preserving the
    PR 3 load/explore/guards/detect breakdown.
    """

    def on_pass_end(
        self, ctx: "AnalysisContext", pass_: "Pass", seconds: float
    ) -> None:
        metrics = ctx.metrics
        if metrics is None:  # pragma: no cover — manager always sets it
            return
        metrics.pass_seconds[pass_.name] = (
            metrics.pass_seconds.get(pass_.name, 0.0) + seconds
        )
        if pass_.phase is not None:
            metrics.phase_seconds[pass_.phase] = (
                metrics.phase_seconds.get(pass_.phase, 0.0) + seconds
            )


class FaultInjectionHook(PipelineHook):
    """Fire a scheduled :class:`InjectedFault` before the first pass.

    The trigger runs in ``on_pass_start`` — outside any pass's
    error-phase tag — so injected failures classify by the fault's own
    declared phase, exactly as the pre-pipeline harness behaved.
    ``trigger_now`` lets schedulers fire the same fault for detectors
    that bypass the pipeline (third-party tools without passes).
    """

    def __init__(
        self,
        fault: "InjectedFault",
        attempt: int,
        *,
        allow_process_death: bool = False,
    ) -> None:
        self._fault = fault
        self._attempt = attempt
        self._allow_process_death = allow_process_death
        self._fired = False

    def trigger_now(self) -> None:
        """Fire the fault once; later calls are no-ops."""
        if self._fired:
            return
        self._fired = True
        self._fault.trigger(
            self._attempt, allow_process_death=self._allow_process_death
        )

    def on_pass_start(self, ctx: "AnalysisContext", pass_: "Pass") -> None:
        self.trigger_now()
