"""Pipeline configurations: tools as ordered tuples of passes.

A :class:`PipelineConfig` is the declarative description of one
detector — its pass sequence plus a handful of report-shaping knobs.
``SaintDroid`` and both ablations are built here; the baselines'
configurations live in :mod:`repro.baselines.passes` (their passes
import baseline scaffolding that in turn imports this package).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.kinds import family_of
from .passes import (
    ClassDedupPass,
    ClassStoreCommitPass,
    ClvmLoadPass,
    DetectApcPass,
    DetectApiPass,
    DetectPrmPass,
    DetectSemPass,
    EagerLoadPass,
    FrameworkSummariesPass,
    GuardPropagationPass,
    IcfgExplorePass,
    ManifestIngestPass,
    OverrideCollectionPass,
    Pass,
    PermissionAnnotationPass,
)

__all__ = [
    "PipelineConfig",
    "SAINTDROID_PHASES",
    "saintdroid_pipeline",
    "saintdroid_variants",
]

#: The paper's phase breakdown, seeded to 0.0 on every SAINTDroid
#: report so a lazy run still exports ``load: 0.0``.
SAINTDROID_PHASES = ("load", "explore", "guards", "detect")


@dataclass(frozen=True)
class PipelineConfig:
    """One tool expressed as a pass sequence.

    ``phase_keys`` are pre-seeded at 0.0 in ``phase_seconds`` so the
    report always carries the tool's full phase vocabulary.  With
    ``single_detect_phase`` the manager charges the whole wall time to
    a single ``detect`` phase at finalize (the baselines model
    monolithic tools with no internal phases).  ``modeled_budget_s``
    applies the baseline analysis-time budget: reports whose modeled
    cost exceeds it are marked failed with their findings dropped.
    """

    tool: str
    passes: tuple[Pass, ...]
    phase_keys: tuple[str, ...] = ()
    single_detect_phase: bool = False
    modeled_budget_s: float | None = None
    _providers: dict[str, str] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        self._validate()

    @property
    def pass_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.passes)

    @property
    def capabilities(self) -> frozenset[str]:
        """Kind families this configuration detects — derived from the
        registered detector passes, never hand-written."""
        return frozenset(
            family_of(value) for p in self.passes for value in p.kinds
        )

    def provider_of(self, slot: str) -> str | None:
        """Name of the pass that provides ``slot``, if any."""
        return self._providers.get(slot)

    def _validate(self) -> None:
        """Check the dataflow: every require has an earlier provider."""
        provided: dict[str, str] = self._providers
        seen: set[str] = set()
        for p in self.passes:
            if p.name in seen:
                raise ValueError(
                    f"pipeline {self.tool!r} lists pass {p.name!r} twice"
                )
            seen.add(p.name)
            for slot in p.requires:
                if slot not in provided:
                    raise ValueError(
                        f"pipeline {self.tool!r}: pass {p.name!r} "
                        f"requires slot {slot!r} but no earlier pass "
                        f"provides it"
                    )
            for slot in p.provides:
                provided.setdefault(slot, p.name)


def saintdroid_pipeline(
    *,
    lazy_loading: bool = True,
    propagate_guards_into_anonymous: bool = False,
    analyze_secondary_dex: bool = True,
    framework_summaries: bool = False,
    summaries_dir: str | None = None,
    dedup: bool = False,
    dedup_dir: str | None = None,
) -> PipelineConfig:
    """SAINTDroid as a pass configuration.

    The ablation knobs of the evaluation are expressed structurally:
    eager loading inserts ``eager-load`` (the only pass charged to the
    ``load`` phase), the anonymous-class blind spot is a constructor
    argument of ``guard-propagation``, and ``framework_summaries``
    inserts the whole-framework pre-analysis pass so the CLVM stops at
    the framework boundary with a table lookup (same findings as lazy,
    enforced by the parity test; ``summaries_dir`` persists the table
    on disk).  ``dedup`` brackets the run with the corpus-wide
    class-artifact store passes — delta analysis at the class boundary
    (same findings as lazy, enforced by the parity suite;
    ``dedup_dir`` persists artifacts across processes).  Dedup mode
    implies the pre-summary pass: delta analysis re-answers the app's
    own classes from the artifact store, and the framework half of the
    walk is exactly what the summary table already answers — both
    shortcuts preserve findings, so they compose.
    """
    use_summaries = framework_summaries or dedup
    passes: list[Pass] = [
        ManifestIngestPass(),
    ]
    if dedup:
        passes.append(ClassDedupPass(store_dir=dedup_dir))
    if use_summaries:
        passes.append(FrameworkSummariesPass(store_dir=summaries_dir))
    passes += [
        ClvmLoadPass(
            include_secondary_dex=analyze_secondary_dex,
            use_summaries=use_summaries,
            dedup=dedup,
        ),
        IcfgExplorePass(),
        GuardPropagationPass(
            into_anonymous=propagate_guards_into_anonymous
        ),
        OverrideCollectionPass(),
        PermissionAnnotationPass(),
    ]
    if not lazy_loading:
        passes.append(EagerLoadPass())
    passes += [
        DetectApiPass(),
        DetectApcPass(),
        DetectPrmPass(),
        DetectSemPass(),
    ]
    if dedup:
        passes.append(ClassStoreCommitPass())
    return PipelineConfig(
        tool="SAINTDroid",
        passes=tuple(passes),
        phase_keys=SAINTDROID_PHASES,
    )


def saintdroid_variants() -> dict:
    """The SAINTDroid configurations by *catalog name* — the plain
    tool plus its two named ablations, each a zero-argument pipeline
    factory.

    This is the declared side of the capability cross-check: an
    agreement campaign derives each configuration's families from
    these pipelines' ``Pass.kinds`` (exactly what ``saintdroid
    passes`` prints) and fails when the observed behaviour disagrees.
    """
    return {
        "SAINTDroid": lambda: saintdroid_pipeline(),
        "SAINTDroid-eager": lambda: saintdroid_pipeline(
            lazy_loading=False
        ),
        "SAINTDroid-anon": lambda: saintdroid_pipeline(
            propagate_guards_into_anonymous=True
        ),
    }
