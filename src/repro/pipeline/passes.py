"""Pass base class, the pass registry, and the SAINTDroid passes.

Each analysis stage of the paper's Figure 2 pipeline is one registered
:class:`Pass` with declared inputs (``requires``), outputs
(``provides``), a wall-clock ``phase`` bucket, and an error-taxonomy
``error_phase``.  Tools are *configurations* — ordered tuples of pass
instances (see :mod:`repro.pipeline.configs`) — executed by one
:class:`~repro.pipeline.manager.PassManager` whichever scheduler
(serial loop or process pool) drives the corpus.

The SAINTDroid decomposition:

=====================  =======  ==================================
pass                   phase    stage
=====================  =======  ==================================
manifest-ingest        —        manifest → app interval + scope
clvm-load              —        construct the lazy CLVM
icfg-explore           explore  worklist exploration + helpers
eager-load             load     whole-world ablation (eager only)
guard-propagation      guards   inter-procedural SDK_INT guards
override-collection    guards   framework-override records
permission-annotation  guards   dangerous-permission annotation
detect-api             detect   Algorithm 2 (invocation)
detect-apc             detect   Algorithm 3 (callback)
detect-prm             detect   Algorithm 4 (permission)
=====================  =======  ==================================

``clvm-load`` carries no phase bucket on purpose: under lazy loading
the CLVM interleaves class loads with exploration, so ``explore``
covers both and the lazy ``load`` bucket stays 0.0; only the eager
ablation's whole-world load is charged to ``load``.
"""

from __future__ import annotations

from ..analysis.clvm import ClassLoaderVM
from ..core.amd import AndroidMismatchDetector
from ..core.aum import (
    AumModel,
    annotate_permissions,
    collect_overrides,
    explore,
    propagate_guards,
)
from ..core.errors import AnalysisPhase
from ..core.sem import semantic_mismatches
from .context import AnalysisContext

__all__ = [
    "Pass",
    "register_pass",
    "registered_passes",
    "ManifestIngestPass",
    "FrameworkSummariesPass",
    "ClassDedupPass",
    "ClassStoreCommitPass",
    "ClvmLoadPass",
    "IcfgExplorePass",
    "EagerLoadPass",
    "GuardPropagationPass",
    "OverrideCollectionPass",
    "PermissionAnnotationPass",
    "DetectApiPass",
    "DetectApcPass",
    "DetectPrmPass",
    "DetectSemPass",
]


class Pass:
    """One declarative analysis stage.

    Subclasses set the class attributes and implement :meth:`run`;
    per-configuration knobs (e.g. the anonymous-class ablation) are
    constructor arguments, so a tool is a tuple of configured pass
    *instances*, not a subclass forest.
    """

    #: Registry / CLI name (``saintdroid passes``, ``--skip-pass``).
    name: str = ""
    #: Wall-clock bucket this pass is charged to (``load`` /
    #: ``explore`` / ``guards`` / ``detect``), or ``None`` for
    #: bookkeeping passes excluded from the paper's phase breakdown.
    phase: str | None = None
    #: Error-taxonomy phase tagged onto exceptions escaping this pass.
    error_phase: AnalysisPhase = AnalysisPhase.TOOL
    #: Slots this pass reads; checked before the pass runs.
    requires: tuple[str, ...] = ()
    #: Slots this pass publishes.
    provides: tuple[str, ...] = ()
    #: Mismatch-kind *values* this pass detects.  Tool capability
    #: tables are derived from these (union of families over a
    #: configuration's passes), never hand-written.
    kinds: tuple[str, ...] = ()

    def run(self, ctx: AnalysisContext) -> None:
        raise NotImplementedError

    def describe(self) -> str:
        """First docstring line — the CLI listing's summary column."""
        doc = (self.__doc__ or "").strip()
        return doc.splitlines()[0] if doc else self.name


_REGISTRY: dict[str, type[Pass]] = {}


def register_pass(cls: type[Pass]) -> type[Pass]:
    """Class decorator adding a pass to the global registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} has no pass name")
    existing = _REGISTRY.get(cls.name)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"pass name {cls.name!r} already registered by "
            f"{existing.__name__}"
        )
    _REGISTRY[cls.name] = cls
    return cls


def registered_passes() -> dict[str, type[Pass]]:
    """All registered passes, sorted by name."""
    return dict(sorted(_REGISTRY.items()))


# ---------------------------------------------------------------------------
# SAINTDroid passes
# ---------------------------------------------------------------------------

@register_pass
class ManifestIngestPass(Pass):
    """Read the manifest: app interval, resolution level, scope."""

    name = "manifest-ingest"
    error_phase = AnalysisPhase.APK
    provides = ("model", "resolution_level", "scope")

    def run(self, ctx: AnalysisContext) -> None:
        model = AumModel(apk=ctx.apk)
        ctx.provide("model", model)
        # Resolve against the newest framework level the app can run
        # on: dispatch through app subclasses must see APIs introduced
        # after the target level too (the database, not the loaded
        # image, decides per-level existence).
        ctx.provide(
            "resolution_level", ctx.apk.manifest.effective_max_sdk
        )
        # The paper's interface takes "an app APK along with a set of
        # Android framework versions"; ``device_levels`` is that set.
        scope = model.app_interval
        if ctx.device_levels is not None:
            scope = scope.meet(ctx.device_levels)
        ctx.provide("scope", scope)


@register_pass
class FrameworkSummariesPass(Pass):
    """Whole-framework pre-summaries for the app's resolution level.

    The table is a pure function of the framework spec, built once per
    process (and shared with forked pool workers), so for every app
    after the first this pass is a dictionary lookup.  The first
    build is charged to the ``load`` phase — it is load work the
    summarized CLVM will not repay per app.
    """

    name = "framework-summaries"
    phase = "load"
    error_phase = AnalysisPhase.ARM
    requires = ("resolution_level",)
    provides = ("fw_summaries",)

    def __init__(self, *, store_dir: str | None = None) -> None:
        self._store_dir = store_dir

    def run(self, ctx: AnalysisContext) -> None:
        from ..analysis.fwsummaries import summary_table

        table = summary_table(
            ctx.framework, ctx.apidb, store_dir=self._store_dir
        )
        # Force the level's summaries now so the build lands in this
        # pass's ``load`` timing, not inside ``explore``.
        table.level_summaries(ctx.get("resolution_level"))
        ctx.provide("fw_summaries", table)


@register_pass
class ClassDedupPass(Pass):
    """Open the corpus-wide class-artifact store; begin app staging.

    The store is process-shared (one instance per directory and
    fingerprint pair), so every app in a run — or every job through a
    daemon worker — amortizes against the same table.  ``begin_app``
    discards staging left by an aborted pipeline: a faulted app never
    publishes artifacts.
    """

    name = "class-dedup"
    error_phase = AnalysisPhase.TOOL
    provides = ("class_store",)

    def __init__(self, *, store_dir: str | None = None) -> None:
        self._store_dir = store_dir

    def run(self, ctx: AnalysisContext) -> None:
        from ..cache.classes import CLASS_ARTIFACT_VERSION, class_store
        from ..cache.fingerprint import (
            fingerprint_config,
            fingerprint_spec,
        )

        # The config digest pins only what artifacts depend on — the
        # artifact semantics version.  Detector knobs (ablations,
        # summaries) deliberately do not partition the store: artifacts
        # hold static per-class facts valid under every configuration.
        store = class_store(
            self._store_dir,
            framework_fingerprint=fingerprint_spec(ctx.framework.spec),
            config_fingerprint=fingerprint_config(
                ("SAINTDroid",), {"classes": CLASS_ARTIFACT_VERSION}
            ),
        )
        store.begin_app()
        ctx.provide("class_store", store)


@register_pass
class ClassStoreCommitPass(Pass):
    """Publish this app's staged class artifacts (final pass).

    Requiring the last detect output pins this pass to the end of the
    pipeline: any earlier failure, fault, or timeout aborts before the
    commit, leaving the store untouched (the chaos discipline the
    result cache enforces with ``result.ok``).
    """

    name = "class-store-commit"
    error_phase = AnalysisPhase.TOOL
    requires = ("class_store", "sem_mismatches")

    def run(self, ctx: AnalysisContext) -> None:
        if not ctx.metrics.failed:
            ctx.get("class_store").commit_app()


@register_pass
class ClvmLoadPass(Pass):
    """Construct the class-loader VM (lazy, or summary-bounded)."""

    name = "clvm-load"
    error_phase = AnalysisPhase.AUM
    requires = ("model", "resolution_level")
    provides = ("vm",)

    def __init__(
        self,
        *,
        include_secondary_dex: bool = True,
        use_summaries: bool = False,
        dedup: bool = False,
    ) -> None:
        self._secondary = include_secondary_dex
        self._use_summaries = use_summaries
        self._dedup = dedup
        if use_summaries:
            self.requires = (*self.requires, "fw_summaries")
        if dedup:
            self.requires = (*self.requires, "class_store")

    def run(self, ctx: AnalysisContext) -> None:
        summaries = (
            ctx.get("fw_summaries") if self._use_summaries else None
        )
        ctx.provide(
            "vm",
            ClassLoaderVM(
                ctx.apk,
                ctx.framework,
                ctx.get("resolution_level"),
                follow_framework=True,
                include_secondary_dex=self._secondary,
                summaries=summaries,
                class_store=(
                    ctx.get("class_store") if self._dedup else None
                ),
            ),
        )


@register_pass
class IcfgExplorePass(Pass):
    """Worklist exploration: call graph, load stats, version helpers."""

    name = "icfg-explore"
    phase = "explore"
    error_phase = AnalysisPhase.AUM
    requires = ("model", "vm")
    provides = ("callgraph", "version_helpers")

    def run(self, ctx: AnalysisContext) -> None:
        model = ctx.get("model")
        explore(model, ctx.get("vm"))
        ctx.provide("callgraph", model.callgraph)
        ctx.provide("version_helpers", model.version_helpers)


@register_pass
class GuardPropagationPass(Pass):
    """Inter-procedural SDK_INT guard propagation → API usages."""

    name = "guard-propagation"
    phase = "guards"
    error_phase = AnalysisPhase.AUM
    requires = ("model", "callgraph", "version_helpers")
    provides = ("usages",)

    def __init__(self, *, into_anonymous: bool = False) -> None:
        self._into_anonymous = into_anonymous

    def run(self, ctx: AnalysisContext) -> None:
        model = ctx.get("model")
        propagate_guards(model, into_anonymous=self._into_anonymous)
        ctx.provide("usages", model.usages)


@register_pass
class OverrideCollectionPass(Pass):
    """Collect app overrides of framework-declared signatures."""

    name = "override-collection"
    phase = "guards"
    error_phase = AnalysisPhase.AUM
    requires = ("model",)
    provides = ("overrides",)

    def run(self, ctx: AnalysisContext) -> None:
        model = ctx.get("model")
        collect_overrides(model, ctx.apidb)
        ctx.provide("overrides", model.overrides)


@register_pass
class PermissionAnnotationPass(Pass):
    """Annotate API usages with transitive dangerous permissions."""

    name = "permission-annotation"
    phase = "guards"
    error_phase = AnalysisPhase.AUM
    requires = ("model", "usages")
    provides = ("permission_uses",)

    def run(self, ctx: AnalysisContext) -> None:
        model = ctx.get("model")
        annotate_permissions(model, ctx.apidb)
        ctx.provide("permission_uses", model.permission_uses)


@register_pass
class EagerLoadPass(Pass):
    """Eager ablation: load the entire world, closed-world style.

    Placed after the modeling passes (mirroring the pre-pipeline
    facade): the findings are identical to the lazy run's, only the
    load accounting — and therefore the modeled memory — changes.
    """

    name = "eager-load"
    phase = "load"
    error_phase = AnalysisPhase.AUM
    requires = ("model", "resolution_level", "usages", "overrides",
                "permission_uses")
    provides = ("eager_stats",)

    def run(self, ctx: AnalysisContext) -> None:
        model = ctx.get("model")
        vm = ClassLoaderVM(
            ctx.apk, ctx.framework, ctx.get("resolution_level")
        )
        vm.load_everything()
        model.stats.adopt_load_accounting(vm.stats)
        ctx.provide("eager_stats", vm.stats)


@register_pass
class DetectApiPass(Pass):
    """Algorithm 2: API invocation mismatches."""

    name = "detect-api"
    phase = "detect"
    error_phase = AnalysisPhase.AMD
    requires = ("model", "usages", "scope")
    provides = ("api_mismatches",)
    kinds = ("API",)

    def run(self, ctx: AnalysisContext) -> None:
        scope = ctx.get("scope")
        found = []
        if not scope.is_empty:
            found = AndroidMismatchDetector(
                ctx.apidb
            ).invocation_mismatches(ctx.get("model"), scope)
        ctx.provide("api_mismatches", tuple(found))
        ctx.mismatches.extend(found)


@register_pass
class DetectApcPass(Pass):
    """Algorithm 3: API callback mismatches."""

    name = "detect-apc"
    phase = "detect"
    error_phase = AnalysisPhase.AMD
    requires = ("model", "overrides", "scope")
    provides = ("apc_mismatches",)
    kinds = ("APC",)

    def run(self, ctx: AnalysisContext) -> None:
        scope = ctx.get("scope")
        found = []
        if not scope.is_empty:
            found = AndroidMismatchDetector(
                ctx.apidb
            ).callback_mismatches(ctx.get("model"), scope)
        ctx.provide("apc_mismatches", tuple(found))
        ctx.mismatches.extend(found)


@register_pass
class DetectPrmPass(Pass):
    """Algorithm 4: permission request/revocation mismatches."""

    name = "detect-prm"
    phase = "detect"
    error_phase = AnalysisPhase.AMD
    requires = ("model", "permission_uses", "overrides", "scope")
    provides = ("prm_mismatches",)
    kinds = ("PRM-request", "PRM-revocation")

    def run(self, ctx: AnalysisContext) -> None:
        scope = ctx.get("scope")
        found = []
        if not scope.is_empty:
            found = AndroidMismatchDetector(
                ctx.apidb
            ).permission_mismatches(ctx.get("model"), scope)
        ctx.provide("prm_mismatches", tuple(found))
        ctx.mismatches.extend(found)


@register_pass
class DetectSemPass(Pass):
    """Semantic (behavior-only) API mismatches."""

    name = "detect-sem"
    phase = "detect"
    error_phase = AnalysisPhase.AMD
    requires = ("model", "usages", "prm_mismatches", "scope")
    provides = ("sem_mismatches",)
    kinds = ("SEM",)

    def run(self, ctx: AnalysisContext) -> None:
        scope = ctx.get("scope")
        found = []
        if not scope.is_empty:
            found = semantic_mismatches(
                ctx.apidb, ctx.get("model"), scope
            )
        ctx.provide("sem_mismatches", tuple(found))
        ctx.mismatches.extend(found)
