"""Declarative pass pipeline shared by every scheduler.

The paper's AUM → ARM → AMD decomposition (Figure 2), made
first-class: each analysis stage is a registered :class:`Pass` with
declared inputs/outputs over a shared :class:`AnalysisContext`; a tool
is a :class:`PipelineConfig` (an ordered tuple of configured passes);
one :class:`PassManager` executes any configuration identically under
the serial runner and the process-pool engine.  Cross-cutting concerns
— phase timing, fault injection — attach as :class:`PipelineHook`
observers instead of being threaded through call sites.

See ``docs/architecture.md`` for the pass graph and a walkthrough of
writing a custom detector pass.
"""

from .configs import (
    SAINTDROID_PHASES,
    PipelineConfig,
    saintdroid_pipeline,
    saintdroid_variants,
)
from .context import AnalysisContext, SlotError
from .hooks import FaultInjectionHook, PassTimingHook, PipelineHook
from .manager import PassManager, PipelineDetector, PipelineError
from .passes import (
    ClvmLoadPass,
    DetectApcPass,
    DetectApiPass,
    DetectPrmPass,
    EagerLoadPass,
    GuardPropagationPass,
    IcfgExplorePass,
    ManifestIngestPass,
    OverrideCollectionPass,
    Pass,
    PermissionAnnotationPass,
    register_pass,
    registered_passes,
)

__all__ = [
    "AnalysisContext",
    "SlotError",
    "Pass",
    "register_pass",
    "registered_passes",
    "PipelineConfig",
    "SAINTDROID_PHASES",
    "saintdroid_pipeline",
    "saintdroid_variants",
    "PipelineHook",
    "PassTimingHook",
    "FaultInjectionHook",
    "PassManager",
    "PipelineDetector",
    "PipelineError",
    "ManifestIngestPass",
    "ClvmLoadPass",
    "IcfgExplorePass",
    "EagerLoadPass",
    "GuardPropagationPass",
    "OverrideCollectionPass",
    "PermissionAnnotationPass",
    "DetectApiPass",
    "DetectApcPass",
    "DetectPrmPass",
]
