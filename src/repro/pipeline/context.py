"""The shared state a pass pipeline threads through its passes.

Every pass reads and writes one :class:`AnalysisContext`.  Inputs and
outputs flow through named *slots* (``ctx.provide`` / ``ctx.get``);
the pass manager checks each pass's declared ``requires`` against the
slots actually provided before running it, so a misconfigured pipeline
fails with "slot X missing, produced by pass Y" instead of an
``AttributeError`` three passes later.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..apk.package import Apk
from ..core.apidb import ApiDatabase
from ..core.metrics import AnalysisMetrics
from ..core.mismatch import Mismatch
from ..framework.repository import FrameworkRepository

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from ..analysis.intervals import ApiInterval
    from ..core.aum import AumModel

__all__ = ["AnalysisContext", "SlotError"]


class SlotError(KeyError):
    """A pass asked for a slot no earlier pass provided."""


@dataclass
class AnalysisContext:
    """Everything one pipeline run knows about one app.

    The immutable substrate (``apk``, ``framework``, ``apidb``,
    ``device_levels``) is set by the manager before the first pass;
    passes communicate through ``slots`` and accumulate findings in
    ``mismatches``.  ``metrics`` is the report-bound record the
    manager finalizes after the last pass.
    """

    apk: Apk
    framework: FrameworkRepository
    apidb: ApiDatabase
    tool: str
    device_levels: "ApiInterval | None" = None
    metrics: AnalysisMetrics | None = None
    mismatches: list[Mismatch] = field(default_factory=list)
    slots: dict[str, object] = field(default_factory=dict)

    def provide(self, name: str, value) -> None:
        """Publish one declared output of the running pass."""
        self.slots[name] = value

    def get(self, name: str):
        """Read a slot a pass declared in its ``requires``."""
        try:
            return self.slots[name]
        except KeyError:
            raise SlotError(
                f"slot {name!r} has not been provided by any pass"
            ) from None

    def has(self, name: str) -> bool:
        return name in self.slots

    @property
    def model(self) -> "AumModel | None":
        """The AUM model, when a modeling pass has provided it
        (baseline pipelines never do)."""
        return self.slots.get("model")
