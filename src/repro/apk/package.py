"""Application package (APK analogue).

An :class:`Apk` bundles a manifest with one or more dex files and is
the unit of analysis for every detector in this repository.  Class
lookup spans all dex files, mirroring a multidex application.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..ir.clazz import Clazz
from ..ir.types import ClassName
from .dexfile import DexFile
from .diagnostics import DiagnosticCode, IngestDiagnostic
from .manifest import Manifest

__all__ = ["Apk"]

#: Rough ratio converting IR instructions to "lines of Dex code" so
#: that reported app sizes land in the paper's 10.4-294.4 KLOC band.
INSTRUCTIONS_PER_LINE = 1.0


@dataclass(frozen=True)
class Apk:
    """A complete application package."""

    manifest: Manifest
    dex_files: tuple[DexFile, ...]
    #: Display name (benchmark apps carry the paper's app names).
    label: str = ""
    #: ``strict=False`` repairs structural defects (no dex files, a
    #: secondary dex in primary position, cross-dex duplicate classes)
    #: instead of raising; every repair lands in :attr:`diagnostics`
    #: along with the child dex files' and manifest's own diagnostics.
    strict: bool = field(default=True, compare=False, repr=False)
    diagnostics: tuple[IngestDiagnostic, ...] = field(
        default=(), init=False, compare=False, repr=False
    )

    _by_name: dict[ClassName, Clazz] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        found: list[IngestDiagnostic] = list(self.manifest.diagnostics)
        for dex in self.dex_files:
            found.extend(dex.diagnostics)
        if not self.dex_files:
            if self.strict:
                raise ValueError("an APK requires at least one dex file")
            found.append(
                IngestDiagnostic(
                    DiagnosticCode.NO_DEX_FILES,
                    "package carried no dex files; synthesized an "
                    "empty primary dex",
                )
            )
            object.__setattr__(
                self, "dex_files", (DexFile("classes.dex"),)
            )
        if self.dex_files[0].secondary:
            if self.strict:
                raise ValueError(
                    "the first dex file must be the primary dex"
                )
            found.append(
                IngestDiagnostic(
                    DiagnosticCode.PRIMARY_MARKED_SECONDARY,
                    f"{self.dex_files[0].name} was marked secondary; "
                    f"promoted to primary",
                )
            )
            promoted = dataclasses.replace(
                self.dex_files[0], secondary=False
            )
            object.__setattr__(
                self, "dex_files", (promoted,) + self.dex_files[1:]
            )
        table: dict[ClassName, Clazz] = {}
        rebuilt: list[DexFile] = []
        rebuild_needed = False
        for dex in self.dex_files:
            kept: list[Clazz] = []
            for clazz in dex.classes:
                if clazz.name in table:
                    if self.strict:
                        raise ValueError(
                            f"{self.name}: class {clazz.name} defined "
                            f"in multiple dex files"
                        )
                    found.append(
                        IngestDiagnostic(
                            DiagnosticCode.CROSS_DEX_DUPLICATE,
                            f"{dex.name}: class {clazz.name} already "
                            f"defined in an earlier dex file "
                            f"(kept first definition)",
                        )
                    )
                    rebuild_needed = True
                    continue
                table[clazz.name] = clazz
                kept.append(clazz)
            rebuilt.append(
                dataclasses.replace(dex, classes=tuple(kept))
                if len(kept) != len(dex.classes)
                else dex
            )
        if rebuild_needed:
            object.__setattr__(self, "dex_files", tuple(rebuilt))
        if found:
            object.__setattr__(self, "diagnostics", tuple(found))
        object.__setattr__(self, "_by_name", table)

    # -- identity ----------------------------------------------------

    @property
    def name(self) -> str:
        return self.label or self.manifest.package

    # -- class access -------------------------------------------------

    def lookup(self, class_name: ClassName) -> Clazz | None:
        """Find a class in any dex file (primary or secondary)."""
        return self._by_name.get(class_name)

    def lookup_primary(self, class_name: ClassName) -> Clazz | None:
        """Find a class reachable at install time only."""
        for dex in self.dex_files:
            if not dex.secondary:
                found = dex.lookup(class_name)
                if found is not None:
                    return found
        return None

    def __contains__(self, class_name: ClassName) -> bool:
        return class_name in self._by_name

    @property
    def primary_dex(self) -> DexFile:
        return self.dex_files[0]

    @property
    def secondary_dex_files(self) -> tuple[DexFile, ...]:
        return tuple(d for d in self.dex_files if d.secondary)

    @property
    def all_classes(self) -> tuple[Clazz, ...]:
        return tuple(
            clazz for dex in self.dex_files for clazz in dex.classes
        )

    @property
    def class_names(self) -> tuple[ClassName, ...]:
        return tuple(self._by_name)

    # -- size metrics --------------------------------------------------

    @property
    def method_count(self) -> int:
        return sum(dex.method_count for dex in self.dex_files)

    @property
    def instruction_count(self) -> int:
        return sum(dex.instruction_count for dex in self.dex_files)

    @property
    def dex_kloc(self) -> float:
        """App size in thousands of lines of Dex code (Figure 3 x-axis)."""
        return self.instruction_count * INSTRUCTIONS_PER_LINE / 1000.0

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        lo, hi = self.manifest.supported_range
        return (
            f"Apk({self.name}, sdk {lo}..{hi} target "
            f"{self.manifest.target_sdk}, {len(self._by_name)} classes)"
        )
