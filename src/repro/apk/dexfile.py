"""Dex file model: a named collection of classes.

An APK carries a primary ``classes.dex`` loaded at install time plus
optional secondary dex files that are only bound at run time (late
binding, paper section III-A).  SAINTDroid conservatively analyzes
both; tools that only consider install-time code miss the secondary
files.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.clazz import Clazz
from ..ir.types import ClassName
from ..ir.validate import validate_class

__all__ = ["DexFile"]


@dataclass(frozen=True)
class DexFile:
    """A single dex file: a name and its class definitions."""

    name: str
    classes: tuple[Clazz, ...] = ()
    #: True for dex files loaded only through DexClassLoader at runtime.
    secondary: bool = False

    _by_name: dict[ClassName, Clazz] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("dex file requires a name")
        table: dict[ClassName, Clazz] = {}
        for clazz in self.classes:
            if clazz.name in table:
                raise ValueError(
                    f"{self.name}: duplicate class {clazz.name}"
                )
            validate_class(clazz)
            table[clazz.name] = clazz
        object.__setattr__(self, "_by_name", table)

    def __len__(self) -> int:
        return len(self.classes)

    def __contains__(self, class_name: ClassName) -> bool:
        return class_name in self._by_name

    def lookup(self, class_name: ClassName) -> Clazz | None:
        return self._by_name.get(class_name)

    @property
    def class_names(self) -> tuple[ClassName, ...]:
        return tuple(c.name for c in self.classes)

    @property
    def method_count(self) -> int:
        return sum(c.method_count for c in self.classes)

    @property
    def instruction_count(self) -> int:
        return sum(c.instruction_count for c in self.classes)
