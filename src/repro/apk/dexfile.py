"""Dex file model: a named collection of classes.

An APK carries a primary ``classes.dex`` loaded at install time plus
optional secondary dex files that are only bound at run time (late
binding, paper section III-A).  SAINTDroid conservatively analyzes
both; tools that only consider install-time code miss the secondary
files.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.clazz import Clazz
from ..ir.types import ClassName
from ..ir.validate import ValidationError, validate_class
from .diagnostics import DiagnosticCode, IngestDiagnostic

__all__ = ["DexFile"]


@dataclass(frozen=True)
class DexFile:
    """A single dex file: a name and its class definitions."""

    name: str
    classes: tuple[Clazz, ...] = ()
    #: True for dex files loaded only through DexClassLoader at runtime.
    secondary: bool = False
    #: ``strict=False`` drops malformed/duplicate classes instead of
    #: raising, recording each drop in :attr:`diagnostics`.
    strict: bool = field(default=True, compare=False, repr=False)
    diagnostics: tuple[IngestDiagnostic, ...] = field(
        default=(), init=False, compare=False, repr=False
    )

    _by_name: dict[ClassName, Clazz] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        found: list[IngestDiagnostic] = []
        if not self.name:
            if self.strict:
                raise ValueError("dex file requires a name")
            found.append(
                IngestDiagnostic(
                    DiagnosticCode.UNNAMED_DEX, "dex file had no name"
                )
            )
            object.__setattr__(self, "name", "classes.dex")
        table: dict[ClassName, Clazz] = {}
        kept: list[Clazz] = []
        for clazz in self.classes:
            if clazz.name in table:
                if self.strict:
                    raise ValueError(
                        f"{self.name}: duplicate class {clazz.name}"
                    )
                found.append(
                    IngestDiagnostic(
                        DiagnosticCode.DUPLICATE_CLASS,
                        f"{self.name}: duplicate class {clazz.name} "
                        f"(kept first definition)",
                    )
                )
                continue
            try:
                validate_class(clazz)
            except ValidationError as exc:
                if self.strict:
                    raise
                found.append(
                    IngestDiagnostic(
                        DiagnosticCode.INVALID_CLASS,
                        f"{self.name}: dropped {clazz.name}: {exc}",
                    )
                )
                continue
            table[clazz.name] = clazz
            kept.append(clazz)
        if found:
            object.__setattr__(self, "classes", tuple(kept))
            object.__setattr__(self, "diagnostics", tuple(found))
        object.__setattr__(self, "_by_name", table)

    def __len__(self) -> int:
        return len(self.classes)

    def __contains__(self, class_name: ClassName) -> bool:
        return class_name in self._by_name

    def lookup(self, class_name: ClassName) -> Clazz | None:
        return self._by_name.get(class_name)

    @property
    def class_names(self) -> tuple[ClassName, ...]:
        return tuple(c.name for c in self.classes)

    @property
    def method_count(self) -> int:
        return sum(c.method_count for c in self.classes)

    @property
    def instruction_count(self) -> int:
        return sum(c.instruction_count for c in self.classes)
