"""Ingestion diagnostics: what was wrong with a package we accepted.

Real corpus vetting meets malformed APKs constantly — duplicate
classes across dex files, absent manifest attributes, inverted SDK
ranges.  The strict ingestion path (the default) rejects them with a
``ValueError``; the lenient path (``strict=False`` on
:class:`~repro.apk.package.Apk` and friends) repairs what it can,
records *what* it repaired as :class:`IngestDiagnostic` values, and
hands the analysis a partial-but-valid model.  The eval layer folds
these diagnostics into the structured error taxonomy
(:mod:`repro.core.errors`).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DiagnosticCode", "IngestDiagnostic"]


class DiagnosticCode:
    """Stable codes for every lenient-mode repair."""

    # -- manifest ----------------------------------------------------
    MISSING_PACKAGE = "manifest-missing-package"
    BAD_MIN_SDK = "manifest-bad-min-sdk"
    TARGET_BELOW_MIN = "manifest-target-below-min"
    MAX_BELOW_TARGET = "manifest-max-below-target"
    # -- dex ---------------------------------------------------------
    UNNAMED_DEX = "dex-unnamed"
    DUPLICATE_CLASS = "dex-duplicate-class"
    INVALID_CLASS = "dex-invalid-class"
    # -- package -----------------------------------------------------
    NO_DEX_FILES = "apk-no-dex-files"
    PRIMARY_MARKED_SECONDARY = "apk-primary-marked-secondary"
    CROSS_DEX_DUPLICATE = "apk-cross-dex-duplicate"

    ALL = (
        MISSING_PACKAGE,
        BAD_MIN_SDK,
        TARGET_BELOW_MIN,
        MAX_BELOW_TARGET,
        UNNAMED_DEX,
        DUPLICATE_CLASS,
        INVALID_CLASS,
        NO_DEX_FILES,
        PRIMARY_MARKED_SECONDARY,
        CROSS_DEX_DUPLICATE,
    )


@dataclass(frozen=True)
class IngestDiagnostic:
    """One repaired defect: a stable code plus human detail."""

    code: str
    detail: str = ""

    def __str__(self) -> str:
        return f"{self.code}: {self.detail}" if self.detail else self.code
