"""JSON (de)serialization of application packages.

``.sapk`` ("synthetic APK") files are the interchange format of this
reproduction, standing in for real APKs.  The format is a stable,
human-inspectable JSON document; every construct round-trips exactly
(property-tested in ``tests/apk/test_serialization.py``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..ir.clazz import Clazz
from ..ir.instructions import (
    BinOp,
    CmpOp,
    ConstInt,
    ConstNull,
    ConstString,
    FieldGet,
    FieldPut,
    Goto,
    IfCmp,
    IfCmpZero,
    Instruction,
    Invoke,
    InvokeKind,
    Move,
    MoveResult,
    NewInstance,
    Nop,
    Return,
    ReturnVoid,
    SdkIntLoad,
    Throw,
)
from ..ir.method import Method, MethodBody, MethodFlags
from ..ir.types import FieldRef, MethodRef
from .dexfile import DexFile
from .manifest import Component, ComponentKind, Manifest
from .package import Apk

__all__ = [
    "FORMAT_VERSION",
    "SerializationError",
    "apk_to_dict",
    "apk_from_dict",
    "dumps",
    "loads",
    "save_apk",
    "load_apk",
]

FORMAT_VERSION = 1


class SerializationError(ValueError):
    """Raised when a document cannot be decoded into an APK."""


# ---------------------------------------------------------------------------
# instruction codec
# ---------------------------------------------------------------------------

def _method_ref_to_list(ref: MethodRef) -> list[str]:
    return [ref.class_name, ref.name, ref.descriptor]


def _method_ref_from_list(data: list[str]) -> MethodRef:
    return MethodRef(data[0], data[1], data[2])


def _field_ref_to_list(ref: FieldRef) -> list[str]:
    return [ref.class_name, ref.name, ref.type_name]


def _field_ref_from_list(data: list[str]) -> FieldRef:
    return FieldRef(data[0], data[1], data[2])


def _instr_to_list(instr: Instruction) -> list[Any]:
    """Encode one instruction as ``[opcode, operands…]``."""
    if isinstance(instr, ConstInt):
        return ["ci", instr.dest, instr.value]
    if isinstance(instr, ConstString):
        return ["cs", instr.dest, instr.value]
    if isinstance(instr, ConstNull):
        return ["cn", instr.dest]
    if isinstance(instr, SdkIntLoad):
        return ["sdk", instr.dest]
    if isinstance(instr, Move):
        return ["mv", instr.dest, instr.src]
    if isinstance(instr, BinOp):
        return ["bin", instr.dest, instr.op, instr.lhs, instr.rhs]
    if isinstance(instr, IfCmp):
        return ["if", instr.op.value, instr.lhs, instr.rhs, instr.target]
    if isinstance(instr, IfCmpZero):
        return ["ifz", instr.op.value, instr.lhs, instr.target]
    if isinstance(instr, Goto):
        return ["go", instr.target]
    if isinstance(instr, Invoke):
        return [
            "inv",
            instr.kind.value,
            _method_ref_to_list(instr.method),
            list(instr.args),
        ]
    if isinstance(instr, MoveResult):
        return ["mr", instr.dest]
    if isinstance(instr, NewInstance):
        return ["new", instr.dest, instr.class_name]
    if isinstance(instr, FieldGet):
        return ["fg", instr.dest, _field_ref_to_list(instr.fieldref)]
    if isinstance(instr, FieldPut):
        return ["fp", instr.src, _field_ref_to_list(instr.fieldref)]
    if isinstance(instr, ReturnVoid):
        return ["rv"]
    if isinstance(instr, Return):
        return ["ret", instr.src]
    if isinstance(instr, Throw):
        return ["thr", instr.src]
    if isinstance(instr, Nop):
        return ["nop"]
    raise SerializationError(f"unknown instruction type {type(instr)!r}")


def _instr_from_list(data: list[Any]) -> Instruction:
    try:
        op = data[0]
        if op == "ci":
            return ConstInt(data[1], data[2])
        if op == "cs":
            return ConstString(data[1], data[2])
        if op == "cn":
            return ConstNull(data[1])
        if op == "sdk":
            return SdkIntLoad(data[1])
        if op == "mv":
            return Move(data[1], data[2])
        if op == "bin":
            return BinOp(data[1], data[2], data[3], data[4])
        if op == "if":
            return IfCmp(CmpOp(data[1]), data[2], data[3], data[4])
        if op == "ifz":
            return IfCmpZero(CmpOp(data[1]), data[2], data[3])
        if op == "go":
            return Goto(data[1])
        if op == "inv":
            return Invoke(
                InvokeKind(data[1]),
                _method_ref_from_list(data[2]),
                tuple(data[3]),
            )
        if op == "mr":
            return MoveResult(data[1])
        if op == "new":
            return NewInstance(data[1], data[2])
        if op == "fg":
            return FieldGet(data[1], _field_ref_from_list(data[2]))
        if op == "fp":
            return FieldPut(data[1], _field_ref_from_list(data[2]))
        if op == "rv":
            return ReturnVoid()
        if op == "ret":
            return Return(data[1])
        if op == "thr":
            return Throw(data[1])
        if op == "nop":
            return Nop()
    except (IndexError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed instruction {data!r}") from exc
    raise SerializationError(f"unknown opcode {op!r}")


# ---------------------------------------------------------------------------
# method / class codec
# ---------------------------------------------------------------------------

def _method_to_dict(method: Method) -> dict[str, Any]:
    doc: dict[str, Any] = {
        "name": method.name,
        "descriptor": method.descriptor,
    }
    if method.flags is not MethodFlags.NONE:
        doc["flags"] = method.flags.value
    if method.body is None:
        doc["body"] = None
    else:
        doc["code"] = [_instr_to_list(i) for i in method.body.instructions]
        if method.body.labels:
            doc["labels"] = dict(method.body.labels)
    return doc


def _method_from_dict(class_name: str, doc: dict[str, Any]) -> Method:
    ref = MethodRef(class_name, doc["name"], doc["descriptor"])
    flags = MethodFlags(doc.get("flags", 0))
    if doc.get("body", "present") is None:
        return Method(ref=ref, flags=flags, body=None)
    code = tuple(_instr_from_list(i) for i in doc.get("code", []))
    labels = dict(doc.get("labels", {}))
    return Method(ref=ref, flags=flags, body=MethodBody(code, labels))


def _class_to_dict(clazz: Clazz) -> dict[str, Any]:
    doc: dict[str, Any] = {
        "name": clazz.name,
        "super": clazz.super_name,
        "methods": [_method_to_dict(m) for m in clazz.methods],
    }
    if clazz.interfaces:
        doc["interfaces"] = list(clazz.interfaces)
    if clazz.is_abstract:
        doc["abstract"] = True
    if clazz.origin != "app":
        doc["origin"] = clazz.origin
    return doc


def _class_from_dict(doc: dict[str, Any]) -> Clazz:
    return Clazz(
        name=doc["name"],
        super_name=doc.get("super"),
        interfaces=tuple(doc.get("interfaces", ())),
        methods=tuple(
            _method_from_dict(doc["name"], m) for m in doc["methods"]
        ),
        is_abstract=bool(doc.get("abstract", False)),
        origin=doc.get("origin", "app"),
    )


# ---------------------------------------------------------------------------
# manifest / package codec
# ---------------------------------------------------------------------------

def _manifest_to_dict(manifest: Manifest) -> dict[str, Any]:
    doc: dict[str, Any] = {
        "package": manifest.package,
        "minSdkVersion": manifest.min_sdk,
        "targetSdkVersion": manifest.target_sdk,
        "versionCode": manifest.version_code,
        "buildable": manifest.buildable,
        "permissions": list(manifest.permissions),
        "components": [
            {
                "class": c.class_name,
                "kind": c.kind.value,
                "exported": c.exported,
                "actions": list(c.intent_actions),
            }
            for c in manifest.components
        ],
    }
    if manifest.max_sdk is not None:
        doc["maxSdkVersion"] = manifest.max_sdk
    return doc


def _manifest_from_dict(
    doc: dict[str, Any], *, strict: bool = True
) -> Manifest:
    return Manifest(
        package=doc.get("package", "") if not strict else doc["package"],
        min_sdk=doc["minSdkVersion"],
        target_sdk=doc["targetSdkVersion"],
        max_sdk=doc.get("maxSdkVersion"),
        permissions=tuple(doc.get("permissions", ())),
        components=tuple(
            Component(
                class_name=c["class"],
                kind=ComponentKind(c["kind"]),
                exported=bool(c.get("exported", False)),
                intent_actions=tuple(c.get("actions", ())),
            )
            for c in doc.get("components", ())
        ),
        version_code=doc.get("versionCode", 1),
        buildable=bool(doc.get("buildable", True)),
        strict=strict,
    )


def apk_to_dict(apk: Apk) -> dict[str, Any]:
    """Encode a package as a JSON-compatible dictionary."""
    return {
        "format": FORMAT_VERSION,
        "label": apk.label,
        "manifest": _manifest_to_dict(apk.manifest),
        "dexFiles": [
            {
                "name": dex.name,
                "secondary": dex.secondary,
                "classes": [_class_to_dict(c) for c in dex.classes],
            }
            for dex in apk.dex_files
        ],
    }


def apk_from_dict(doc: dict[str, Any], *, strict: bool = True) -> Apk:
    """Decode a dictionary produced by :func:`apk_to_dict`.

    ``strict=False`` routes every model constructor through the
    lenient ingestion path: malformed attributes, duplicate classes,
    and structural defects are repaired and recorded on the returned
    package's ``diagnostics`` instead of raising.
    """
    version = doc.get("format")
    if version != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported .sapk format version {version!r}"
        )
    try:
        manifest = _manifest_from_dict(doc["manifest"], strict=strict)
        dex_files = tuple(
            DexFile(
                name=d.get("name", "") if not strict else d["name"],
                classes=tuple(_class_from_dict(c) for c in d["classes"]),
                secondary=bool(d.get("secondary", False)),
                strict=strict,
            )
            for d in doc["dexFiles"]
        )
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed .sapk document: {exc}") from exc
    except ValueError as exc:
        raise SerializationError(f"invalid package content: {exc}") from exc
    return Apk(
        manifest=manifest,
        dex_files=dex_files,
        label=doc.get("label", ""),
        strict=strict,
    )


# ---------------------------------------------------------------------------
# string / file entry points
# ---------------------------------------------------------------------------

def dumps(apk: Apk, *, indent: int | None = None) -> str:
    return json.dumps(apk_to_dict(apk), indent=indent, sort_keys=False)


def loads(text: str, *, strict: bool = True) -> Apk:
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    return apk_from_dict(doc, strict=strict)


def save_apk(apk: Apk, path: str | Path, *, indent: int | None = None) -> None:
    Path(path).write_text(dumps(apk, indent=indent))


def load_apk(path: str | Path, *, strict: bool = True) -> Apk:
    return loads(Path(path).read_text(), strict=strict)
