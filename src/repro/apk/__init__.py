"""Application package substrate (APK analogue)."""

from .manifest import (
    Component,
    ComponentKind,
    Manifest,
    MAX_API_LEVEL,
    MIN_API_LEVEL,
    RUNTIME_PERMISSIONS_LEVEL,
)
from .dexfile import DexFile
from .diagnostics import DiagnosticCode, IngestDiagnostic
from .package import Apk
from .serialization import (
    SerializationError,
    apk_from_dict,
    apk_to_dict,
    dumps,
    load_apk,
    loads,
    save_apk,
)

__all__ = [
    "Apk",
    "Component",
    "ComponentKind",
    "DexFile",
    "DiagnosticCode",
    "IngestDiagnostic",
    "MAX_API_LEVEL",
    "MIN_API_LEVEL",
    "Manifest",
    "RUNTIME_PERMISSIONS_LEVEL",
    "SerializationError",
    "apk_from_dict",
    "apk_to_dict",
    "dumps",
    "load_apk",
    "loads",
    "save_apk",
]
