"""Android manifest model.

Carries exactly the attributes SAINTDroid's detectors read: the SDK
version triple (``minSdkVersion`` / ``targetSdkVersion`` /
``maxSdkVersion``), requested permissions, and declared components
(the analysis entry points).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..ir.types import ClassName
from .diagnostics import DiagnosticCode, IngestDiagnostic

__all__ = ["ComponentKind", "Component", "Manifest"]

#: Package name substituted when a lenient ingest meets a manifest
#: with no package attribute.
FALLBACK_PACKAGE = "unknown.package"

#: Lowest API level modeled by the framework repository (paper: "API
#: levels 2 through 28/29").
MIN_API_LEVEL = 2
#: Highest API level modeled (paper section VII: SAINTDroid supports up
#: to API level 29).
MAX_API_LEVEL = 29

#: API level that introduced the runtime permission system.
RUNTIME_PERMISSIONS_LEVEL = 23


class ComponentKind(enum.Enum):
    """The four Android component kinds plus application subclasses."""

    ACTIVITY = "activity"
    SERVICE = "service"
    RECEIVER = "receiver"
    PROVIDER = "provider"
    APPLICATION = "application"


@dataclass(frozen=True, slots=True)
class Component:
    """A declared component: the class implementing it and its kind.

    ``exported`` components are reachable through inter-process
    communication (intents); each one is a separate analysis entry
    point, per paper section III-A.
    """

    class_name: ClassName
    kind: ComponentKind
    exported: bool = False
    intent_actions: tuple[str, ...] = ()


@dataclass(frozen=True)
class Manifest:
    """The subset of AndroidManifest.xml the analyses consume."""

    package: str
    min_sdk: int
    target_sdk: int
    max_sdk: int | None = None
    permissions: tuple[str, ...] = ()
    components: tuple[Component, ...] = ()
    version_code: int = 1
    #: Whether the app's source tree builds with current toolchains;
    #: Lint requires a successful build (paper section IV-A excludes 8
    #: of 27 benchmark apps on this ground).
    buildable: bool = True
    #: ``strict=False`` repairs malformed attributes instead of
    #: raising, recording each repair in :attr:`diagnostics`.
    strict: bool = field(default=True, compare=False, repr=False)
    diagnostics: tuple[IngestDiagnostic, ...] = field(
        default=(), init=False, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        found: list[IngestDiagnostic] = []

        def _reject(code: str, detail: str) -> None:
            if self.strict:
                raise ValueError(detail)
            found.append(IngestDiagnostic(code, detail))

        if not self.package:
            _reject(
                DiagnosticCode.MISSING_PACKAGE,
                "manifest requires a package name",
            )
            object.__setattr__(self, "package", FALLBACK_PACKAGE)
        if not MIN_API_LEVEL <= self.min_sdk <= MAX_API_LEVEL:
            _reject(
                DiagnosticCode.BAD_MIN_SDK,
                f"minSdkVersion {self.min_sdk} outside "
                f"[{MIN_API_LEVEL}, {MAX_API_LEVEL}]",
            )
            object.__setattr__(
                self,
                "min_sdk",
                min(max(self.min_sdk, MIN_API_LEVEL), MAX_API_LEVEL),
            )
        if self.target_sdk < self.min_sdk:
            _reject(
                DiagnosticCode.TARGET_BELOW_MIN,
                f"targetSdkVersion {self.target_sdk} below "
                f"minSdkVersion {self.min_sdk}",
            )
            object.__setattr__(self, "target_sdk", self.min_sdk)
        if self.max_sdk is not None and self.max_sdk < self.target_sdk:
            _reject(
                DiagnosticCode.MAX_BELOW_TARGET,
                f"maxSdkVersion {self.max_sdk} below "
                f"targetSdkVersion {self.target_sdk}",
            )
            object.__setattr__(self, "max_sdk", None)
        if found:
            object.__setattr__(self, "diagnostics", tuple(found))

    @property
    def effective_max_sdk(self) -> int:
        """The highest device level the app claims to support.

        When ``maxSdkVersion`` is absent (the common case) the app is
        presumed installable on every released level, so the supported
        range extends to the newest modeled level.
        """
        return self.max_sdk if self.max_sdk is not None else MAX_API_LEVEL

    @property
    def supported_range(self) -> tuple[int, int]:
        """``[minSdk, effective maxSdk]`` — the device levels Algorithm
        2 iterates over."""
        return (self.min_sdk, self.effective_max_sdk)

    @property
    def uses_runtime_permissions_model(self) -> bool:
        """True when the app targets the post-23 permission system."""
        return self.target_sdk >= RUNTIME_PERMISSIONS_LEVEL

    def requests(self, permission: str) -> bool:
        return permission in self.permissions

    def entry_components(self) -> tuple[Component, ...]:
        """Components in declaration order; analysis entry points."""
        return self.components
