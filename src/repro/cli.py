"""Command-line interface: ``saintdroid`` / ``python -m repro``.

Subcommands
===========

``analyze``    run a detector on a ``.sapk`` package
``passes``     list the analysis passes each tool configuration runs
``gen-bench``  materialize the benchmark replicas as ``.sapk`` files
``table``      regenerate a paper table (1, 2, 3, or 4)
``rq2``        regenerate the RQ2 real-world summary
``figure``     regenerate a paper figure (1, 3, or 4)
``sweep``      measure SAINTDroid vs CID across framework sizes
``apidb``      query the API lifecycle database

Corpus-scale commands (``table``, ``rq2``, ``figure``, ``sweep``)
accept ``--jobs N`` to fan analysis out over a process pool; results
are identical to a serial run.  ``table``, ``rq2``, and ``figure``
also take the fault-tolerance flags ``--timeout``, ``--max-retries``,
``--retry-backoff``, and ``--checkpoint`` (kill/resume journal); runs
that lose apps end with a per-kind failure breakdown.  All corpus
commands (and ``sweep``) accept ``--cache-dir DIR`` (default:
``$REPRO_CACHE_DIR``) to persist framework snapshots and per-app
results across runs, and ``--no-cache`` to force cold analysis.
``serve``      run the resident analysis daemon: substrate loaded
               once, jobs over HTTP, write-ahead journal, supervised
               worker pool, graceful SIGTERM drain
``submit``     send ``.sapk`` packages to a running daemon and wait
``verify``     dynamically verify static findings (paper §VI)
``repair``     synthesize a repaired package (paper §VIII)
``update-impact``  what breaks when the device framework is updated
``difftest``   property-based differential fuzzing of the detector
               against the dynamic-interpreter oracle, with shrinking
               and detector mutation testing (exit 1 on any
               disagreement or surviving mutant)
``compare``    corpus-scale cross-detector agreement study: every
               tool/ablation configuration over one seeded corpus —
               per-kind accuracy, pairwise agreement/confusion, a
               capability cross-check against the declared table
               (mismatch ⇒ exit 1), and a machine-readable
               blind-spot report that seeds new generator scenarios

``analyze`` exit codes: 0 = clean analysis, 1 = unreadable input,
2 = the tool gave up on the app (budget, unbuildable source, bad
``--skip-pass``/``--only-pass`` selection), 3 = the analysis itself
crashed (the classified error record goes to stderr).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from .apk.serialization import SerializationError, load_apk, save_apk
from .baselines import Cid, Cider, Lint
from .core import SaintDroid, build_api_database, render_report
from .eval import (
    ALL_TOOL_CONFIGS,
    ToolSet,
    ascii_scatter,
    failure_breakdown,
    figure1_regions,
    figure3_series,
    figure4_series,
    render_failures,
    render_rq2,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    rq2_summary,
    run_tools,
    table2_accuracy,
    table3_times,
    table4_capabilities,
)
from .framework.repository import FrameworkRepository
from .pipeline import PipelineError
from .workload import (
    CIDER_BENCH,
    CorpusConfig,
    build_benchmark_suite,
    generate_corpus,
)

__all__ = ["main", "build_parser"]

_TOOL_NAMES = ("SAINTDroid", "CID", "CIDER", "Lint")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="saintdroid",
        description=(
            "SAINTDroid reproduction: scalable, automated "
            "incompatibility detection for Android (DSN 2022)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="analyze a .sapk package")
    analyze.add_argument("apk", type=Path, help="path to a .sapk file")
    analyze.add_argument(
        "--tool", choices=_TOOL_NAMES, default="SAINTDroid"
    )
    analyze.add_argument("--verbose", action="store_true")
    analyze.add_argument(
        "--eager",
        action="store_true",
        help="disable lazy (CLVM) loading (SAINTDroid only)",
    )
    analyze.add_argument(
        "--fix-anonymous",
        action="store_true",
        help="propagate guards into anonymous inner classes "
        "(SAINTDroid only; removes the paper's documented blind spot)",
    )
    analyze.add_argument(
        "--json", action="store_true", help="emit JSON instead of text"
    )
    analyze.add_argument(
        "--lenient",
        action="store_true",
        help="ingest malformed packages with best-effort repairs "
             "instead of rejecting them (diagnostics are reported)",
    )
    analyze.add_argument(
        "--devices",
        nargs=2,
        type=int,
        metavar=("FROM", "TO"),
        help="restrict detection to this device API-level range "
             "(SAINTDroid only; the paper's framework-version-set input)",
    )
    analyze.add_argument(
        "--skip-pass",
        action="append",
        default=None,
        metavar="NAME",
        help="drop one pipeline pass from the run (repeatable; see "
             "'saintdroid passes' for names)",
    )
    analyze.add_argument(
        "--only-pass",
        action="append",
        default=None,
        metavar="NAME",
        help="run only the named pipeline passes (repeatable)",
    )

    passes = sub.add_parser(
        "passes",
        help="list the analysis passes each tool configuration runs",
    )
    passes.add_argument(
        "--tool", choices=_TOOL_NAMES, default=None,
        help="limit the listing to one tool (default: all)",
    )
    passes.add_argument(
        "--eager",
        action="store_true",
        help="show the eager-loading SAINTDroid configuration",
    )
    passes.add_argument(
        "--fix-anonymous",
        action="store_true",
        help="show the anonymous-class-guard SAINTDroid configuration",
    )
    passes.add_argument(
        "--skip-pass",
        action="append",
        default=None,
        metavar="NAME",
        help="preview the configurations without the named pass "
             "(repeatable; the name must be a registered pass)",
    )
    passes.add_argument(
        "--only-pass",
        action="append",
        default=None,
        metavar="NAME",
        help="preview only the named passes (repeatable)",
    )

    gen = sub.add_parser(
        "gen-bench",
        help="write the benchmark replicas as .sapk + ground-truth JSON",
    )
    gen.add_argument("outdir", type=Path)
    gen.add_argument("--scale", type=float, default=1.0)

    jobs_help = (
        "worker processes for corpus analysis (1 = serial; each "
        "worker builds the shared framework + API database once)"
    )

    def _add_corpus_flags(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--jobs", type=int, default=1, help=jobs_help
        )
        command.add_argument(
            "--timeout", type=float, default=None, metavar="S",
            help="per-app wall-clock budget in seconds",
        )
        command.add_argument(
            "--max-retries", type=int, default=0, metavar="N",
            help="re-attempts for retryable failures (timeout, lost "
                 "worker) before an app is quarantined",
        )
        command.add_argument(
            "--retry-backoff", type=float, default=0.0, metavar="S",
            help="base of the bounded exponential backoff between "
                 "retries",
        )
        command.add_argument(
            "--checkpoint", type=Path, default=None, metavar="PATH",
            help="JSONL journal of completed results; a re-run "
                 "pointed at the same file resumes where it was "
                 "killed",
        )
        command.add_argument(
            "--cache-dir", type=Path, default=None, metavar="DIR",
            help="persistent cache: framework snapshots + per-app "
                 "results keyed by content fingerprints (defaults to "
                 "$REPRO_CACHE_DIR when set; warm runs skip unchanged "
                 "analyses with identical results)",
        )
        command.add_argument(
            "--no-cache", action="store_true",
            help="disable the persistent cache even when "
                 "$REPRO_CACHE_DIR is set",
        )
        command.add_argument(
            "--summaries", action=argparse.BooleanOptionalAction,
            default=False,
            help="bound SAINTDroid's class-loader VM at the framework "
                 "boundary with whole-framework pre-summaries (same "
                 "findings as lazy exploration — parity-tested — at a "
                 "fraction of the explore cost; the summary table is "
                 "built once per framework and cached under "
                 "--cache-dir when set)",
        )
        command.add_argument(
            "--dedup", action=argparse.BooleanOptionalAction,
            default=False,
            help="delta analysis against the corpus-wide class-"
                 "artifact store: classes shared across apps are "
                 "fingerprinted once and their explore effects, "
                 "version-helper summaries, and guard rows replayed "
                 "on every later encounter (same findings as lazy "
                 "analysis — parity-tested; the store persists under "
                 "--cache-dir when set)",
        )

    table = sub.add_parser("table", help="regenerate a paper table")
    table.add_argument("number", type=int, choices=(1, 2, 3, 4))
    table.add_argument("--scale", type=float, default=1.0)
    _add_corpus_flags(table)

    rq2 = sub.add_parser("rq2", help="regenerate the RQ2 summary")
    rq2.add_argument("--count", type=int, default=300)
    rq2.add_argument("--seed", type=int, default=1234567)
    _add_corpus_flags(rq2)

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("number", type=int, choices=(1, 3, 4))
    figure.add_argument("--count", type=int, default=150)
    figure.add_argument(
        "--app-level", type=int, default=23,
        help="app target level for figure 1",
    )
    _add_corpus_flags(figure)

    sweep = sub.add_parser(
        "sweep",
        help="measure SAINTDroid vs CID across framework sizes",
    )
    sweep.add_argument(
        "--bulk-sizes", type=int, nargs="+",
        default=(500, 1000, 2000, 4000),
    )
    sweep.add_argument("--probes", type=int, default=3)
    sweep.add_argument("--seed", type=int, default=11)
    sweep.add_argument(
        "--jobs", type=int, default=1,
        help="run sweep points concurrently (they are independent)",
    )
    sweep.add_argument(
        "--cache-dir", type=Path, default=None, metavar="DIR",
        help="snapshot each point's framework substrate so a "
             "repeated sweep re-mines nothing (defaults to "
             "$REPRO_CACHE_DIR when set)",
    )
    sweep.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent cache even when "
             "$REPRO_CACHE_DIR is set",
    )
    sweep.add_argument(
        "--summaries", action=argparse.BooleanOptionalAction,
        default=False,
        help="run SAINTDroid's probes with framework pre-summaries "
             "(same findings, summarized explore phase)",
    )

    difftest = sub.add_parser(
        "difftest",
        help="fuzz the detector against the dynamic-interpreter "
             "oracle (shrinking + mutation testing)",
    )
    difftest.add_argument(
        "--seed", type=int, default=2026,
        help="campaign seed; a fixed seed reproduces the report "
             "byte for byte",
    )
    difftest.add_argument(
        "--n-apps", type=int, default=50,
        help="apps to generate (a coverage prefix exercises every "
             "scenario kind once)",
    )
    difftest.add_argument(
        "--budget-s", type=float, default=None, metavar="S",
        help="wall-clock budget for the oracle phase; truncation is "
             "recorded in the report",
    )
    difftest.add_argument(
        "--no-shrink", action="store_true",
        help="keep disagreements at full size instead of shrinking "
             "them to minimal repros",
    )
    difftest.add_argument(
        "--no-mutation", action="store_true",
        help="skip the detector mutation-testing pass",
    )
    difftest.add_argument(
        "--report", type=Path, default=None, metavar="PATH",
        help="write the JSON disagreement report here (default: "
             "stdout)",
    )
    difftest.add_argument(
        "--mutation-report", type=Path, default=None, metavar="PATH",
        help="write the mutation kill-score JSON here",
    )
    difftest.add_argument(
        "--corpus-dir", type=Path, default=None, metavar="DIR",
        help="write shrunk repros as pytest regression files here "
             "(e.g. tests/difftest/corpus)",
    )
    _add_corpus_flags(difftest)

    compare = sub.add_parser(
        "compare",
        help="cross-detector agreement study: all tool/ablation "
             "configurations over one seeded corpus, with a "
             "capability cross-check and a blind-spot report "
             "(exit 1 when derived capabilities disagree with the "
             "declared table)",
    )
    compare.add_argument(
        "--seed", type=int, default=2026,
        help="campaign seed; a fixed seed reproduces every matrix "
             "byte for byte across --jobs and --via-serve",
    )
    compare.add_argument(
        "--apps", type=int, default=200,
        help="apps to generate (a coverage prefix exercises every "
             "scenario kind once)",
    )
    compare.add_argument(
        "--configs", nargs="+", choices=ALL_TOOL_CONFIGS,
        default=list(ALL_TOOL_CONFIGS), metavar="NAME",
        help="configurations to run (default: all "
             f"{len(ALL_TOOL_CONFIGS)}: "
             + ", ".join(ALL_TOOL_CONFIGS) + ")",
    )
    compare.add_argument(
        "--via-serve", action="store_true",
        help="route every analysis through an in-process serve "
             "daemon (batch submission path) instead of the corpus "
             "schedulers — results are byte-identical",
    )
    compare.add_argument(
        "--report", type=Path, default=None, metavar="PATH",
        help="write the canonical campaign JSON here (default: "
             "print the human-readable summary only)",
    )
    compare.add_argument(
        "--blind-spots", type=Path, default=None, metavar="PATH",
        help="write the machine-readable blind-spot artifact here "
             "(the flywheel input for new workload/appgen.py "
             "scenarios)",
    )
    compare.add_argument(
        "--checkpoint-dir", type=Path, default=None, metavar="DIR",
        help="directory of per-configuration JSONL journals "
             "(compare-<name>.jsonl); a killed campaign pointed at "
             "the same directory resumes mid-configuration",
    )
    _add_corpus_flags(compare)

    apidb = sub.add_parser("apidb", help="query the API database")
    apidb.add_argument("class_name")
    apidb.add_argument("signature", nargs="?")

    verify = sub.add_parser(
        "verify",
        help="run SAINTDroid, then dynamically verify each finding",
    )
    verify.add_argument("apk", type=Path)

    repair = sub.add_parser(
        "repair", help="synthesize a repaired package"
    )
    repair.add_argument("apk", type=Path)
    repair.add_argument("output", type=Path)
    repair.add_argument(
        "--check", action="store_true",
        help="re-analyze the repaired package and report residuals",
    )

    serve = sub.add_parser(
        "serve",
        help="run the resident analysis daemon (HTTP job API; "
             "substrate loaded once, crash-safe journal, supervised "
             "worker pool, SIGTERM-graceful drain)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8321,
        help="listen port (0 picks a free one; the bound address is "
             "printed on the readiness line)",
    )
    serve.add_argument(
        "--workers", type=int, default=2,
        help="supervised worker processes",
    )
    serve.add_argument(
        "--tools", nargs="+", choices=ALL_TOOL_CONFIGS,
        default=["SAINTDroid"], metavar="TOOL",
        help="tool configurations each worker runs — any catalog "
             "name, including the SAINTDroid ablations "
             "(default: SAINTDroid)",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=64,
        help="admission-queue capacity; full ⇒ HTTP 429 + Retry-After",
    )
    serve.add_argument(
        "--max-apk-kb", type=int, default=None, metavar="KB",
        help="load-shed serialized packages above this size (413)",
    )
    serve.add_argument(
        "--timeout", type=float, default=20.0, metavar="S",
        help="per-app wall-clock budget inside workers",
    )
    serve.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="retry budget before a failing job is quarantined",
    )
    serve.add_argument(
        "--retry-backoff", type=float, default=0.05, metavar="S",
        help="full-jitter backoff base between retries",
    )
    serve.add_argument(
        "--journal", type=Path, default=None, metavar="PATH",
        help="write-ahead job journal; a killed daemon restarted on "
             "the same path replays acknowledged unfinished jobs",
    )
    serve.add_argument(
        "--cache-dir", type=Path, default=None, metavar="DIR",
        help="persistent cache (framework snapshot + cross-restart "
             "result dedup); defaults to $REPRO_CACHE_DIR when set",
    )
    serve.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent cache even when "
             "$REPRO_CACHE_DIR is set",
    )
    serve.add_argument(
        "--summaries", action=argparse.BooleanOptionalAction,
        default=False,
        help="run workers with whole-framework pre-summaries",
    )
    serve.add_argument(
        "--dedup", action=argparse.BooleanOptionalAction,
        default=False,
        help="delta analysis against the corpus-wide class-artifact "
             "store; a resident daemon's hit rate climbs as its "
             "corpus streams in (cumulative counters on /statsz)",
    )

    submit = sub.add_parser(
        "submit",
        help="submit .sapk packages to a running serve daemon and "
             "wait for the results",
    )
    submit.add_argument("apks", type=Path, nargs="+")
    submit.add_argument(
        "--url", default="http://127.0.0.1:8321",
        help="daemon endpoint",
    )
    submit.add_argument(
        "--wait", type=float, default=120.0, metavar="S",
        help="per-job wait budget (0 = submit without waiting)",
    )
    submit.add_argument(
        "--json", action="store_true",
        help="emit the terminal job documents as JSON lines",
    )

    impact = sub.add_parser(
        "update-impact",
        help="classify what changes for an app when the device "
             "framework is updated ('death on update', paper §I)",
    )
    impact.add_argument("apk", type=Path)
    impact.add_argument("--from", dest="old_level", type=int, required=True)
    impact.add_argument("--to", dest="new_level", type=int, required=True)

    return parser


def _make_tool(args: argparse.Namespace):
    framework = FrameworkRepository()
    apidb = build_api_database(framework)
    if args.tool == "SAINTDroid":
        return SaintDroid(
            framework,
            apidb,
            lazy_loading=not args.eager,
            propagate_guards_into_anonymous=args.fix_anonymous,
        )
    if args.tool == "CID":
        return Cid(framework, apidb)
    if args.tool == "CIDER":
        return Cider(framework, apidb)
    return Lint(framework, apidb)


def _cache_dir(args: argparse.Namespace) -> Path | None:
    """Resolve the cache directory: the flag wins, then the
    ``REPRO_CACHE_DIR`` environment default; ``--no-cache`` beats
    both."""
    if getattr(args, "no_cache", False):
        return None
    explicit = getattr(args, "cache_dir", None)
    if explicit is not None:
        return explicit
    env = os.environ.get("REPRO_CACHE_DIR")
    return Path(env) if env else None


def _run_kwargs(args: argparse.Namespace) -> dict:
    """run_tools() fault-tolerance kwargs from corpus-command flags."""
    return {
        "jobs": args.jobs,
        "timeout_s": args.timeout,
        "max_retries": args.max_retries,
        "retry_backoff_s": args.retry_backoff,
        "checkpoint": args.checkpoint,
        "cache_dir": _cache_dir(args),
    }


def _toolset_kwargs(args: argparse.Namespace) -> dict:
    """ToolSet.default() kwargs from the --summaries/--dedup flags
    (the summary table and the class-artifact store persist under the
    cache directory when one is configured)."""
    cache_dir = _cache_dir(args)
    cache_str = str(cache_dir) if cache_dir is not None else None
    return {
        "summaries": getattr(args, "summaries", False),
        "summaries_dir": cache_str,
        "dedup": getattr(args, "dedup", False),
        "dedup_dir": cache_str,
    }


def _print_failures(run) -> None:
    """After a corpus run: per-kind breakdown of quarantined apps."""
    if run.failed_apps:
        print()
        print(render_failures(failure_breakdown(run)))
    if run.resumed_indices:
        print(
            f"(resumed: {len(run.resumed_indices)} apps restored "
            f"from checkpoint)"
        )
    stats = run.cache_stats.get("results", {})
    if run.cached_indices or stats.get("stores"):
        print(
            f"(cache: {len(run.cached_indices)} apps served from "
            f"the persistent cache, {stats.get('stores', 0)} stored)"
        )


def _cmd_analyze(args: argparse.Namespace) -> int:
    apk = load_apk(args.apk, strict=not args.lenient)
    if args.lenient and apk.diagnostics:
        print(f"lenient ingestion: {len(apk.diagnostics)} repair(s)")
        for diagnostic in apk.diagnostics:
            print(f"  {diagnostic}")
    tool = _make_tool(args)
    device_levels = None
    if args.devices and args.tool == "SAINTDroid":
        from .analysis.intervals import ApiInterval
        device_levels = ApiInterval.of(args.devices[0], args.devices[1])
    select = {
        "skip_passes": tuple(args.skip_pass or ()),
        "only_passes": tuple(args.only_pass or ()),
    }
    try:
        report = tool.analyze(apk, device_levels, **select)
    except PipelineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:  # noqa: BLE001 — report, don't crash
        from .core.errors import classify_exception

        error = classify_exception(exc)
        print(f"error: analysis crashed — {error}", file=sys.stderr)
        for frame in error.traceback_tail:
            print(f"  {frame}", file=sys.stderr)
        return 3
    if args.json:
        payload = {
            "app": report.app,
            "tool": report.tool,
            "failed": bool(report.metrics and report.metrics.failed),
            "failureReason": (
                report.metrics.failure_reason if report.metrics else ""
            ),
            "mismatches": [
                {
                    "kind": m.kind.value,
                    "location": str(m.location) if m.location else None,
                    "subject": str(m.subject) if m.subject else None,
                    "permission": m.permission,
                    "missingLevels": [
                        m.missing_levels.lo, m.missing_levels.hi
                    ],
                    "message": m.message,
                }
                for m in report.mismatches
            ],
        }
        print(json.dumps(payload, indent=2))
    else:
        print(render_report(report, verbose=args.verbose))
    if report.metrics is not None and report.metrics.failed:
        # The tool gave up on the app (budget exhausted, unbuildable
        # source, multidex restriction …): nonzero so scripts notice.
        return 2
    return 0


def _cmd_passes(args: argparse.Namespace) -> int:
    from .baselines.passes import (
        cid_pipeline,
        cider_pipeline,
        lint_pipeline,
    )
    from .core.kinds import family_of, kind_families
    from .pipeline import saintdroid_pipeline
    from .pipeline.passes import registered_passes

    skip = tuple(args.skip_pass or ())
    only = tuple(args.only_pass or ())
    known = registered_passes()
    unknown = [name for name in (*skip, *only) if name not in known]
    if unknown:
        print(
            "error: no registered pass named "
            + ", ".join(repr(name) for name in unknown)
            + "; available: "
            + ", ".join(known),
            file=sys.stderr,
        )
        return 2

    configs = {
        "SAINTDroid": lambda: saintdroid_pipeline(
            lazy_loading=not args.eager,
            propagate_guards_into_anonymous=args.fix_anonymous,
        ),
        "CID": cid_pipeline,
        "CIDER": cider_pipeline,
        "Lint": lint_pipeline,
    }
    selected = (
        [args.tool] if args.tool is not None else list(configs)
    )
    matrix_rows = []
    for position, tool in enumerate(selected):
        config = configs[tool]()
        shown = tuple(
            p
            for p in config.passes
            if p.name not in skip and (not only or p.name in only)
        )
        if position:
            print()
        buckets = ", ".join(config.phase_keys) or "single detect bucket"
        print(f"{tool} — {len(shown)} passes "
              f"(timing buckets: {buckets})")
        for number, pass_ in enumerate(shown, 1):
            phase = pass_.phase or "-"
            detects = ", ".join(pass_.kinds) or "-"
            print(f"  {number:>2}. {pass_.name:<22} [{phase:<7}] "
                  f"{pass_.describe()}")
            needs = ", ".join(pass_.requires) or "-"
            gives = ", ".join(pass_.provides) or "-"
            print(f"      needs: {needs}  |  provides: {gives}"
                  f"  |  detects: {detects}")
        capabilities = frozenset(
            family_of(value) for p in shown for value in p.kinds
        )
        matrix_rows.append(
            {
                "tool": tool,
                **{
                    family: family in capabilities
                    for family in kind_families()
                },
            }
        )
    print()
    print(render_table4(matrix_rows))
    return 0


def _cmd_gen_bench(args: argparse.Namespace) -> int:
    args.outdir.mkdir(parents=True, exist_ok=True)
    apidb = build_api_database()
    for forged in build_benchmark_suite(apidb, scale=args.scale):
        stem = forged.apk.name.replace(" ", "_").replace("+", "plus")
        save_apk(forged.apk, args.outdir / f"{stem}.sapk")
        (args.outdir / f"{stem}.truth.json").write_text(
            json.dumps(forged.truth.to_dict(), indent=2)
        )
        print(f"wrote {stem}.sapk ({forged.apk.instruction_count} instr)")
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    if args.number == 1:
        print(render_table1())
        return 0
    toolset = ToolSet.default(**_toolset_kwargs(args))
    if args.number == 4:
        print(render_table4(table4_capabilities(toolset.tools)))
        return 0
    apps = build_benchmark_suite(toolset.apidb, scale=args.scale)
    run = run_tools(apps, toolset, **_run_kwargs(args))
    if args.number == 2:
        print(render_table2(table2_accuracy(run)))
    else:
        labels = tuple(spec.label for spec in CIDER_BENCH)
        print(render_table3(table3_times(run, apps=labels)))
    _print_failures(run)
    return 0


def _cmd_rq2(args: argparse.Namespace) -> int:
    toolset = ToolSet.default(
        include=("SAINTDroid",), **_toolset_kwargs(args)
    )
    config = CorpusConfig(count=args.count, seed=args.seed)
    corpus = list(generate_corpus(config, toolset.apidb))
    run = run_tools(
        [entry.forged for entry in corpus], toolset, **_run_kwargs(args)
    )
    modern = {entry.forged.apk.name: entry.modern_target for entry in corpus}
    results = [
        (result.reports["SAINTDroid"], result.truth, modern[result.app])
        for result in run.results
        if "SAINTDroid" in result.reports
    ]
    print(render_rq2(rq2_summary(results)))
    _print_failures(run)
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    if args.number == 1:
        regions = figure1_regions(args.app_level)
        print(f"Figure 1: mismatch regions for app level {args.app_level}")
        for device, region in regions.items():
            print(f"  device API {device:>2}: {region}")
        return 0
    toolset = ToolSet.default(
        include=("SAINTDroid", "CID", "Lint"), **_toolset_kwargs(args)
    )
    config = CorpusConfig(count=args.count)
    corpus = [e.forged for e in generate_corpus(config, toolset.apidb)]
    run = run_tools(corpus, toolset, **_run_kwargs(args))
    if args.number == 3:
        data = figure3_series(run)
        print("Figure 3: SAINTDroid analysis time vs app size")
        print(ascii_scatter(data["scatter"]))
        for summary in data["summaries"]:
            print(
                f"  {summary.tool}: avg {summary.average:.1f}s "
                f"range {summary.minimum:.1f}-{summary.maximum:.1f} "
                f"({summary.failed} failed)"
            )
    else:
        data = figure4_series(run)
        print("Figure 4: peak analysis memory (modeled MB)")
        for tool, summary in data["summary"].items():
            print(
                f"  {tool}: avg {summary['average_mb']:.0f} MB "
                f"range {summary['min_mb']:.0f}-{summary['max_mb']:.0f}"
            )
    _print_failures(run)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .eval.sweep import sweep_framework_scale

    cache_dir = _cache_dir(args)
    points = sweep_framework_scale(
        tuple(args.bulk_sizes),
        probes_per_point=args.probes,
        seed=args.seed,
        jobs=args.jobs,
        cache_dir=str(cache_dir) if cache_dir is not None else None,
        summaries=args.summaries,
    )
    header = (
        f"{'bulk':>6}{'classes@26':>12}{'SAINT s':>10}{'SAINT MB':>10}"
        f"{'CID s':>10}{'CID MB':>10}{'mem ratio':>11}"
    )
    print("Framework-scale sweep (SAINTDroid vs CID)")
    print(header)
    print("-" * len(header))
    for point in points:
        print(
            f"{point.bulk_classes:>6}{point.framework_classes_at_26:>12}"
            f"{point.saintdroid_seconds:>10.1f}"
            f"{point.saintdroid_memory_mb:>10.0f}"
            f"{point.cid_seconds:>10.1f}{point.cid_memory_mb:>10.0f}"
            f"{point.memory_ratio:>11.1f}"
        )
    return 0


def _cmd_difftest(args: argparse.Namespace) -> int:
    from .difftest import CampaignConfig, run_campaign
    from .difftest.campaign import write_mutation_report, write_report

    cache_dir = _cache_dir(args)
    config = CampaignConfig(
        seed=args.seed,
        n_apps=args.n_apps,
        budget_s=args.budget_s,
        shrink=not args.no_shrink,
        mutation=not args.no_mutation,
        corpus_dir=(
            str(args.corpus_dir) if args.corpus_dir is not None else None
        ),
        jobs=args.jobs,
        timeout_s=args.timeout,
        max_retries=args.max_retries,
        retry_backoff_s=args.retry_backoff,
        checkpoint=args.checkpoint,
        cache_dir=str(cache_dir) if cache_dir is not None else None,
        summaries=args.summaries,
        dedup=args.dedup,
    )
    result = run_campaign(config)
    if args.report is not None:
        write_report(result, args.report)
        print(f"wrote {args.report}")
    else:
        print(result.render_report(), end="")
    if args.mutation_report is not None:
        written = write_mutation_report(result, args.mutation_report)
        if written is not None:
            print(f"wrote {written}")
    survivors = result.mutation.survivors if result.mutation else ()
    print(
        f"difftest: {result.apps_examined} app(s) examined, "
        f"{len(result.disagreements)} disagreement(s)"
        + (" [truncated]" if result.truncated else ""),
        file=sys.stderr,
    )
    if result.mutation is not None:
        print(
            f"mutation: {result.mutation.score} mutants killed",
            file=sys.stderr,
        )
        for name in survivors:
            print(f"  SURVIVED {name}", file=sys.stderr)
    return 0 if result.ok else 1


def _cmd_compare(args: argparse.Namespace) -> int:
    from .eval.compare import (
        CompareConfig,
        CompareError,
        run_compare,
        write_blind_spot_report,
    )

    if args.checkpoint is not None:
        print(
            "error: compare journals per configuration — use "
            "--checkpoint-dir DIR instead of --checkpoint",
            file=sys.stderr,
        )
        return 2
    cache_dir = _cache_dir(args)
    config = CompareConfig(
        seed=args.seed,
        n_apps=args.apps,
        configs=tuple(args.configs),
        jobs=args.jobs,
        via_serve=args.via_serve,
        timeout_s=args.timeout,
        max_retries=args.max_retries,
        retry_backoff_s=args.retry_backoff,
        checkpoint_dir=(
            str(args.checkpoint_dir)
            if args.checkpoint_dir is not None
            else None
        ),
        cache_dir=str(cache_dir) if cache_dir is not None else None,
        summaries=args.summaries,
        dedup=args.dedup,
    )
    try:
        result = run_compare(config)
    except CompareError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(result.render())
    if args.report is not None:
        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text(result.report_json())
        print(f"wrote {args.report}")
    if args.blind_spots is not None:
        write_blind_spot_report(result.report, args.blind_spots)
        print(f"wrote {args.blind_spots}")
    for name, run in result.runs.items():
        if run.failed_apps:
            print(
                f"[{name}] {len(run.failed_apps)} app(s) failed",
                file=sys.stderr,
            )
    if not result.ok:
        print(
            "compare: capability cross-check FAILED — observed "
            "behaviour disagrees with the Pass.kinds-declared table "
            "(see mismatches above)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_apidb(args: argparse.Namespace) -> int:
    apidb = build_api_database()
    entry = apidb.clazz(args.class_name)
    if entry is None:
        print(f"unknown framework class: {args.class_name}")
        return 1
    if args.signature is None:
        lo, hi = min(entry.levels), max(entry.levels)
        print(f"{entry.name}: levels {lo}..{hi}, "
              f"{len(entry.methods)} methods, super {entry.super_name}")
        for method in sorted(entry.methods.values(),
                             key=lambda m: m.signature):
            intro, last = method.lifetime
            marker = " [callback]" if method.callback else ""
            print(f"  {method.signature}: {intro}..{last}{marker}")
        return 0
    resolved = apidb.resolve(args.class_name, args.signature)
    if resolved is None:
        print(f"no declaration of {args.signature} on "
              f"{args.class_name} or its ancestors")
        return 1
    intro, last = resolved.lifetime
    permissions = apidb.permissions_for(resolved.ref)
    print(f"{resolved.ref}")
    print(f"  levels:      {intro}..{last}")
    print(f"  callback:    {resolved.callback}")
    print(f"  permissions: {', '.join(sorted(permissions)) or '(none)'}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from .dynamic import DynamicVerifier

    apk = load_apk(args.apk)
    framework = FrameworkRepository()
    apidb = build_api_database(framework)
    detector = SaintDroid(framework, apidb)
    report = detector.analyze(apk)
    verifier = DynamicVerifier(apk, apidb)
    result = verifier.verify_all(report)
    print(f"{apk.name}: {len(report.mismatches)} static finding(s)")
    for item in result.verified:
        print(f"  [{item.verdict.value:<11}] "
              f"{item.mismatch.describe()}")
        if item.evidence is not None:
            print(f"                evidence: {item.evidence}")
    print(
        f"confirmed {len(result.confirmed)}, "
        f"refuted {len(result.refuted)}, "
        f"static-only {len(result.static_only)}"
    )
    return 0


def _cmd_repair(args: argparse.Namespace) -> int:
    from .repair import RepairEngine

    apk = load_apk(args.apk)
    framework = FrameworkRepository()
    apidb = build_api_database(framework)
    detector = SaintDroid(framework, apidb)
    report = detector.analyze(apk)
    engine = RepairEngine(apidb)
    result = engine.repair(apk, report.mismatches)
    save_apk(result.repaired, args.output, indent=2)
    print(f"{apk.name}: {len(report.mismatches)} finding(s), "
          f"{len(result.code_changes)} repaired, "
          f"{len(result.advisories)} advisory")
    for action in result.actions:
        print(f"  [{action.kind.value}] {action.description}")
    print(f"wrote {args.output}")
    if args.check:
        residual = detector.analyze(result.repaired).mismatches
        print(f"re-analysis: {len(residual)} residual finding(s)")
        for mismatch in residual:
            print(f"  {mismatch.describe()}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .framework import default_spec
    from .serve import (
        AnalysisService,
        ServeConfig,
        install_signal_handlers,
        start_server,
    )

    cache_dir = _cache_dir(args)
    config = ServeConfig(
        workers=args.workers,
        include=tuple(args.tools),
        summaries=args.summaries,
        dedup=args.dedup,
        cache_dir=str(cache_dir) if cache_dir is not None else None,
        journal=str(args.journal) if args.journal is not None else None,
        queue_limit=args.queue_limit,
        max_apk_bytes=(
            args.max_apk_kb * 1024 if args.max_apk_kb is not None else None
        ),
        timeout_s=args.timeout,
        max_retries=args.max_retries,
        retry_backoff_s=args.retry_backoff,
    )
    service = AnalysisService(config, default_spec()).start()
    server = start_server(service, args.host, args.port)
    install_signal_handlers(service, server)
    host, port = server.server_address
    recovery = service.health()["recovery"]
    if recovery.get("terminal") or recovery.get("pending"):
        print(
            f"journal replay: {recovery.get('terminal', 0)} terminal "
            f"adopted, {recovery.get('pending', 0)} jobs re-enqueued, "
            f"{recovery.get('corrupt', 0)} torn record(s) skipped",
            flush=True,
        )
    # The readiness line scripts wait for before submitting.
    print(f"serving on http://{host}:{port}", flush=True)
    service.drained.wait()
    server.shutdown()
    print("drained; bye", flush=True)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .serve import ServeClient, ServeClientError

    client = ServeClient(args.url)
    failures = 0
    for path in args.apks:
        apk = load_apk(path)
        try:
            doc = client.submit_retry(apk)
        except ServeClientError as exc:
            print(f"{path}: rejected — {exc}", file=sys.stderr)
            failures += 1
            continue
        if args.wait > 0 and doc["state"] not in (
            "completed", "quarantined",
        ):
            try:
                doc = client.wait(doc["id"], timeout_s=args.wait)
            except TimeoutError as exc:
                print(f"{path}: {exc}", file=sys.stderr)
                failures += 1
                continue
        if args.json:
            print(json.dumps(doc))
        else:
            dedup = " (dedup)" if doc.get("dedup") else ""
            if doc["state"] == "completed":
                result = ServeClient.result_of(doc)
                findings = (
                    sum(
                        len(r.mismatches)
                        for r in result.reports.values()
                    )
                    if result is not None
                    else "?"
                )
                print(
                    f"{doc['app']}: completed{dedup}, "
                    f"{findings} finding(s) "
                    f"[{doc['id']}]"
                )
            elif doc["state"] == "quarantined":
                error = doc.get("error") or {}
                print(
                    f"{doc['app']}: QUARANTINED after "
                    f"{doc.get('attempts', '?')} attempt(s) — "
                    f"{error.get('kind', '?')}: "
                    f"{error.get('message', '')} [{doc['id']}]"
                )
                failures += 1
            else:
                print(f"{doc['app']}: {doc['state']} [{doc['id']}]")
    return 1 if failures else 0


def _cmd_update_impact(args: argparse.Namespace) -> int:
    from .core import update_impact
    from .core.aum import ApiUsageModeler

    apk = load_apk(args.apk)
    framework = FrameworkRepository()
    apidb = build_api_database(framework)
    modeler = ApiUsageModeler(framework, apidb)
    model = modeler.build(apk)
    impact = update_impact(model, apidb, args.old_level, args.new_level)
    print(impact.describe())
    return 0 if impact.is_stable else 2


_COMMANDS = {
    "analyze": _cmd_analyze,
    "passes": _cmd_passes,
    "gen-bench": _cmd_gen_bench,
    "table": _cmd_table,
    "rq2": _cmd_rq2,
    "figure": _cmd_figure,
    "sweep": _cmd_sweep,
    "difftest": _cmd_difftest,
    "compare": _cmd_compare,
    "apidb": _cmd_apidb,
    "verify": _cmd_verify,
    "repair": _cmd_repair,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "update-impact": _cmd_update_impact,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except FileNotFoundError as exc:
        print(f"error: no such file: {exc.filename}", file=sys.stderr)
        return 1
    except SerializationError as exc:
        print(f"error: not a valid .sapk package: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
