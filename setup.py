"""Setup shim for environments without the ``wheel`` package.

All project metadata lives in ``pyproject.toml``; this file exists so
``pip install -e . --no-use-pep517`` works offline (no build isolation,
no bdist_wheel).
"""

from setuptools import setup

setup()
